//! Exhaustive cross-decoder equivalence over every dataset family in
//! Table 4 (scaled), all backends, scalar/pool execution, and both the
//! Recoil and Conventional containers — one bitstream, every decoder.

use recoil::data::{Dataset, ALL_DATASETS};
use recoil::prelude::*;
use std::sync::Arc;

const SCALE_BYTES: usize = 300_000;

fn check_byte_dataset(d: &Dataset, n: u32) {
    let data = d.generate_bytes(SCALE_BYTES);
    let codec = Codec::builder()
        .max_segments(64)
        .quant_bits(n)
        .build()
        .unwrap();
    let encoded = codec.encode(&data).unwrap();
    let pool = ThreadPool::new(7);

    let reference: Vec<u8> = decode_interleaved(&encoded.container.stream, &encoded.model).unwrap();
    assert_eq!(reference, data, "{} serial", d.name);

    // Recoil: every available backend must agree bit for bit.
    let backends: Vec<Box<dyn DecodeBackend>> = vec![
        Box::new(ScalarBackend),
        Box::new(PooledBackend::new(8)),
        Box::new(Avx2Backend::with_threads(8)),
        Box::new(Avx512Backend::with_threads(8)),
        Box::new(AutoBackend::with_threads(8)),
    ];
    for backend in backends.iter().filter(|b| b.is_available()) {
        let got: Vec<u8> = codec.decode_with(backend.as_ref(), &encoded).unwrap();
        assert_eq!(got, data, "{} recoil {}", d.name, backend.name());
    }

    // Conventional: scalar and SIMD.
    let conv = encode_conventional(&data, &encoded.model, 32, 64);
    let got: Vec<u8> = decode_conventional(&conv, &encoded.model, Some(&pool)).unwrap();
    assert_eq!(got, data, "{} conventional", d.name);
    for kernel in Kernel::all_available() {
        let mut out = vec![0u8; data.len()];
        decode_conventional_simd(kernel, &conv, &encoded.model, Some(&pool), &mut out).unwrap();
        assert_eq!(out, data, "{} conventional {:?}", d.name, kernel);
    }

    // tANS / multians.
    let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, n));
    let tstream = encode_tans(&data, &table);
    let (tpar, _) = decode_multians::<u8>(&tstream, &table, 64, Some(&pool)).unwrap();
    assert_eq!(tpar, data, "{} multians", d.name);
}

#[test]
fn all_byte_datasets_n11() {
    for d in ALL_DATASETS.iter().filter(|d| !d.is_latent()) {
        check_byte_dataset(d, 11);
    }
}

#[test]
fn all_byte_datasets_n16() {
    for d in ALL_DATASETS.iter().filter(|d| !d.is_latent()) {
        check_byte_dataset(d, 16);
    }
}

#[test]
fn latent_datasets_adaptive_paths() {
    // Smaller bank than production (build time) but the same structure.
    let bank = Arc::new(GaussianScaleBank::build(14, 2048, 32, 0.4, 64.0));
    let pool = ThreadPool::new(7);
    let codec = Codec::builder()
        .max_segments(48)
        .quant_bits(14)
        .backend(AutoBackend::with_threads(8))
        .build()
        .unwrap();
    for d in ALL_DATASETS.iter().filter(|d| d.is_latent()) {
        let ds = d.generate_latents(Arc::clone(&bank), SCALE_BYTES);
        let container = codec
            .encode_with_provider(&ds.symbols, &ds.provider)
            .unwrap();
        let serial: Vec<u16> = decode_interleaved(&container.stream, &ds.provider).unwrap();
        assert_eq!(serial, ds.symbols, "{} serial", d.name);
        let par = codec
            .decode_adaptive(&container.stream, &container.metadata, &ds.provider)
            .unwrap();
        assert_eq!(par, ds.symbols, "{} recoil", d.name);

        let conv = encode_conventional(&ds.symbols, &ds.provider, 32, 16);
        let got: Vec<u16> = decode_conventional(&conv, &ds.provider, Some(&pool)).unwrap();
        assert_eq!(got, ds.symbols, "{} conventional", d.name);
    }
}
