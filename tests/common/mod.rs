//! Shared helpers for the workspace-level integration tests.
//!
//! (`crates/bitio` keeps its own minimal copy of the generator: its tests
//! belong to a different crate that must not depend on the facade.)

/// Deterministic xorshift64* generator for case synthesis — the offline
/// replacement for proptest's case generation. Every test derives its
/// cases from seeds and carries the seed in assertion messages for replay.
pub struct Cases(u64);

#[allow(dead_code)] // each test file uses a different subset of helpers
impl Cases {
    pub fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..n` (modulo bias is irrelevant for case
    /// synthesis).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Value in `lo..hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// One of the given options.
    pub fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }

    /// Uniformly random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }

    /// Structured data with a randomly chosen spread (coarser shifts →
    /// smaller alphabets → more compressible).
    pub fn data(&mut self, len: usize) -> Vec<u8> {
        let shift = self.range(21, 29) as u32;
        let seed = self.next_u64() as u32;
        (0..len as u32)
            .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> shift) as u8)
            .collect()
    }
}
