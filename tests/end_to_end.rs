//! Cross-crate integration tests: realistic datasets through the full
//! encode → plan → serialize → combine → parallel-decode pipeline, all via
//! the `Codec` facade.

use recoil::core::codec::decode_pooled;
use recoil::data::{exponential_bytes, text_like_bytes};
use recoil::prelude::*;
use recoil::server::{Client, ContentServer};

fn codec(max_segments: u64, quant_bits: u32) -> Codec {
    Codec::builder()
        .max_segments(max_segments)
        .quant_bits(quant_bits)
        .build()
        .unwrap()
}

#[test]
fn text_dataset_full_pipeline() {
    let data = text_like_bytes(1_000_000, 5.1, 1);
    let codec = codec(128, 11);
    let encoded = codec.encode(&data).unwrap();

    // Wire round-trip of the metadata.
    let bytes = metadata_to_bytes(&encoded.container.metadata);
    let meta = metadata_from_bytes(&bytes).unwrap();
    assert_eq!(meta, encoded.container.metadata);

    // Decode at several parallelism levels; all must be identical.
    let pooled = PooledBackend::new(8);
    for segments in [1u64, 2, 16, 128] {
        let m = combine_splits(&meta, segments);
        let mut got = vec![0u8; data.len()];
        decode_pooled(
            &encoded.container.stream,
            &m,
            &encoded.model,
            Some(pooled.pool()),
            &mut got,
        )
        .unwrap();
        assert_eq!(got, data, "segments={segments}");
    }
}

#[test]
fn compressed_size_is_near_entropy_plus_metadata() {
    let data = exponential_bytes(2_000_000, 100.0, 2);
    let encoded = codec(64, 11).encode(&data).unwrap();
    let entropy_bytes = Histogram::of_bytes(&data).entropy_bits() * data.len() as f64 / 8.0;
    let payload = encoded.stream_bytes() as f64;
    assert!(
        payload < entropy_bytes * 1.08,
        "payload {payload} vs entropy {entropy_bytes}"
    );
    assert!(payload > entropy_bytes * 0.95);
    // Metadata is a rounding error next to the payload at 64 segments.
    assert!((encoded.metadata_bytes() as f64) < payload * 0.01);
}

#[test]
fn recoil_never_loses_to_conventional_at_equal_parallelism() {
    // §5.2: Recoil's overhead undercuts Conventional at every split count.
    let data = exponential_bytes(1_000_000, 200.0, 3);
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
    for parallelism in [16usize, 256] {
        let encoded = codec(parallelism as u64, 11).encode(&data).unwrap();
        let conv = encode_conventional(&data, &model, 32, parallelism);
        let recoil_total = encoded.total_bytes();
        let conv_total = conv.payload_bytes();
        assert!(
            recoil_total < conv_total,
            "parallelism {parallelism}: recoil {recoil_total} vs conventional {conv_total}"
        );
    }
}

#[test]
fn conventional_and_recoil_decode_identically() {
    let data = text_like_bytes(500_000, 4.6, 4);
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 12));
    let pool = ThreadPool::new(7);

    let conv = encode_conventional(&data, &model, 32, 64);
    let a: Vec<u8> = decode_conventional(&conv, &model, Some(&pool)).unwrap();

    let codec = Codec::builder()
        .max_segments(64)
        .quant_bits(12)
        .backend(PooledBackend::new(8))
        .build()
        .unwrap();
    let encoded = codec.encode(&data).unwrap();
    let b: Vec<u8> = codec.decode(&encoded).unwrap();
    assert_eq!(a, data);
    assert_eq!(b, data);
}

#[test]
fn tans_multians_agrees_with_rans_content() {
    let data = text_like_bytes(400_000, 5.0, 5);
    let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, 11));
    let stream = encode_tans(&data, &table);
    let pool = ThreadPool::new(7);
    let (got, stats) = decode_multians::<u8>(&stream, &table, 128, Some(&pool)).unwrap();
    assert_eq!(got, data);
    // Self-sync must mostly work at n=11 (multians' premise).
    assert!(stats.chunks_rerun < 16, "{stats:?}");
}

#[test]
fn server_scales_per_client_and_all_clients_agree() {
    let data = exponential_bytes(1_500_000, 50.0, 6);
    let server = ContentServer::new();
    let config = EncoderConfig {
        max_segments: 512,
        ..EncoderConfig::default()
    };
    server.publish("item", &data, &config).unwrap();

    let mut sizes = Vec::new();
    for threads in [1usize, 2, 8, 24] {
        let client = Client::new(threads);
        // One atomic lookup: the transmission and the content it decodes
        // against come from the same store resolution.
        let (t, item) = server.fetch("item", client.parallel_segments).unwrap();
        let decoded = client.decode(&item.stream, &t, &item.model).unwrap();
        assert_eq!(decoded, data, "threads={threads}");
        sizes.push(t.total_bytes());
    }
    // Transfer size is monotone in requested parallelism.
    assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");

    // The same capacities again: every tier is now cached, and batched
    // resolution agrees with the serial responses.
    let batch: Vec<(String, u64)> = [1u64, 2, 8, 24]
        .iter()
        .map(|&c| ("item".to_string(), c))
        .collect();
    let results = server.request_batch(&batch);
    for (r, expect) in results.iter().zip(&sizes) {
        let t = r.as_ref().unwrap();
        assert!(t.cache_hit);
        assert_eq!(t.total_bytes(), *expect);
    }
    let stats = server.stats();
    assert_eq!(stats.cache_hits, 4);
    assert_eq!(stats.cache_misses, 4);
}

#[test]
fn simd_and_scalar_recoil_decoders_agree_on_all_variations() {
    let data = text_like_bytes(600_000, 5.2, 7);
    for n in [11u32, 16] {
        let codec = codec(64, n);
        let encoded = codec.encode(&data).unwrap();
        let scalar: Vec<u8> = codec.decode_with(&ScalarBackend, &encoded).unwrap();
        for backend in [
            &Avx2Backend::new() as &dyn DecodeBackend,
            &Avx512Backend::new(),
            &AutoBackend::new(),
        ] {
            if !backend.is_available() {
                continue;
            }
            let got: Vec<u8> = codec.decode_with(backend, &encoded).unwrap();
            assert_eq!(got, scalar, "backend {} n={n}", backend.name());
        }
    }
}

#[test]
fn mutual_compatibility_one_bitstream_every_decoder() {
    // §4.4: "All four implementations are mutually compatible; generated
    // bitstreams by the encoder can be decoded by any of them."
    let data = exponential_bytes(800_000, 100.0, 8);
    let codec = codec(96, 11);
    let encoded = codec.encode(&data).unwrap();

    let serial: Vec<u8> = decode_interleaved(&encoded.container.stream, &encoded.model).unwrap();
    let recoil_scalar: Vec<u8> = codec.decode_with(&PooledBackend::new(8), &encoded).unwrap();
    assert_eq!(serial, recoil_scalar);
    let m = SimdModel::from_provider(&encoded.model);
    for kernel in Kernel::all_available() {
        let mut out = vec![0u8; data.len()];
        decode_interleaved_simd(kernel, &encoded.container.stream, &m, &mut out).unwrap();
        assert_eq!(out, serial, "single-thread {kernel:?}");
    }
    for backend in [
        &Avx2Backend::with_threads(8) as &dyn DecodeBackend,
        &Avx512Backend::with_threads(8),
        &AutoBackend::with_threads(8),
    ] {
        if !backend.is_available() {
            continue;
        }
        let out: Vec<u8> = codec.decode_with(backend, &encoded).unwrap();
        assert_eq!(out, serial, "recoil backend {}", backend.name());
    }
}
