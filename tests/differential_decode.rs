//! Cross-backend differential decode harness.
//!
//! Drives every available [`DecodeBackend`] (Scalar, Pooled, Auto, plus the
//! explicit AVX2/AVX-512 backends on hosts that have them) and both the
//! buffered and streaming decode paths over one seeded corpus — varied
//! alphabet sizes, segment counts including 1 and clamp-edge values, empty
//! and one-symbol inputs — asserting **byte-identity everywhere**. The
//! paper's whole premise is that one bitstream serves every decoder
//! capability; this harness is the executable form of that claim.

use recoil::prelude::*;
use recoil_core::{plan_chunks, IncrementalDecoder};

/// SplitMix-style deterministic generator — the corpus is fully seeded.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One corpus entry: `len` symbols drawn from `alphabet` distinct values,
/// with a skewed distribution so streams stay compressible.
fn corpus_entry(len: usize, alphabet: u16, seed: u64) -> Vec<u8> {
    let mut rng = seed;
    (0..len)
        .map(|_| {
            let r = next_u64(&mut rng);
            // Square the draw to skew mass toward small symbols.
            let frac = (r % 1000) as f64 / 1000.0;
            ((frac * frac * alphabet as f64) as u16).min(alphabet - 1) as u8
        })
        .collect()
}

/// Every backend this host can run, with its name for failure messages.
fn backends() -> Vec<(&'static str, Box<dyn DecodeBackend>)> {
    let mut b: Vec<(&'static str, Box<dyn DecodeBackend>)> = vec![
        ("scalar", Box::new(ScalarBackend)),
        ("pooled", Box::new(PooledBackend::new(4))),
        ("auto", Box::new(AutoBackend::with_threads(2))),
    ];
    let avx2 = Avx2Backend::new();
    if avx2.is_available() {
        b.push(("avx2", Box::new(avx2)));
    }
    let avx512 = Avx512Backend::new();
    if avx512.is_available() {
        b.push(("avx512", Box::new(avx512)));
    }
    b
}

/// The streaming byte-granularities a transfer is replayed at.
const GRANULARITIES: [usize; 3] = [1, 1023, 64 * 1024];

/// Streams `enc` through an [`IncrementalDecoder`] against `meta`, pushing
/// `piece`-byte slices, and returns the decoded bytes.
fn stream_decode(
    enc: &Encoded,
    meta: &RecoilMetadata,
    backend: &dyn DecodeBackend,
    piece: usize,
) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(enc.container.stream.words.len() * 2);
    for w in &enc.container.stream.words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let mut incr = IncrementalDecoder::new(
        meta.clone(),
        enc.container.stream.final_states.clone(),
        enc.model.clone(),
    )
    .unwrap();
    let mut out = vec![0u8; enc.container.stream.num_symbols as usize];
    let mut covered = 0usize;
    for chunk in bytes.chunks(piece.max(1)) {
        incr.push_bytes(chunk).unwrap();
        let r = incr.decode_ready_segments(backend, &mut out).unwrap();
        assert_eq!(r.start, covered, "decoded ranges must be contiguous");
        covered = r.end;
    }
    if !incr.is_finished() {
        // Zero-word streams have no bytes to push; one explicit drain.
        incr.decode_ready_segments(backend, &mut out).unwrap();
    }
    assert!(incr.is_complete() && incr.is_finished());
    out
}

#[test]
fn every_backend_and_path_is_byte_identical() {
    // (len, alphabet, quant_bits): empty, 1-symbol, sub-lane-width, odd
    // sizes, and a bulk entry; alphabets from binary up to full byte range.
    let shapes: [(usize, u16, u32); 8] = [
        (0, 2, 11),
        (1, 2, 8),
        (31, 7, 9),
        (100, 2, 11),
        (4_097, 251, 11),
        (20_000, 16, 10),
        (60_000, 256, 11),
        (120_000, 256, 12),
    ];
    // Segment targets: 1 (no splits), tiny, typical, and clamp-edge values
    // far beyond what the planner can place.
    let tiers: [u64; 5] = [1, 2, 7, 64, u64::MAX];
    let backends = backends();
    let mut seed = 0xD1FF_5EED_u64;

    for &(len, alphabet, quant_bits) in &shapes {
        let data = corpus_entry(len, alphabet, next_u64(&mut seed));
        let codec = Codec::builder()
            .max_segments(64)
            .quant_bits(quant_bits)
            .build()
            .unwrap();
        let enc = codec.encode(&data).unwrap();

        for &tier in &tiers {
            let meta = try_combine_splits(&enc.container.metadata, tier).unwrap();
            let ctx = format!(
                "len={len} alphabet={alphabet} n={quant_bits} tier={tier} \
                 segments={}",
                meta.num_segments()
            );
            let shrunk = Encoded {
                container: RecoilContainer {
                    stream: enc.container.stream.clone(),
                    metadata: meta.clone(),
                },
                model: enc.model.clone(),
                symbol_bits: 8,
            };

            // Buffered: every backend against the reference input.
            for (name, backend) in &backends {
                let got: Vec<u8> = codec.decode_with(backend.as_ref(), &shrunk).unwrap();
                assert_eq!(got, data, "buffered {name}: {ctx}");
            }

            // Streaming: every backend at several byte granularities.
            for (name, backend) in &backends {
                for piece in GRANULARITIES {
                    let got = stream_decode(&enc, &meta, backend.as_ref(), piece);
                    assert_eq!(got, data, "streaming {name} piece={piece}: {ctx}");
                }
            }

            // Streaming at the server's split-aligned chunk plan exactly.
            let plan = plan_chunks(&meta, 8 * 1024);
            plan.validate_against(&meta).unwrap();
            for (name, backend) in &backends {
                let mut bytes = Vec::new();
                for w in &enc.container.stream.words {
                    bytes.extend_from_slice(&w.to_le_bytes());
                }
                let mut incr = IncrementalDecoder::with_plan(
                    meta.clone(),
                    enc.container.stream.final_states.clone(),
                    enc.model.clone(),
                    &plan,
                )
                .unwrap();
                let mut out = vec![0u8; data.len()];
                for c in &plan.chunks {
                    incr.push_bytes(&bytes[c.words.start as usize * 2..c.words.end as usize * 2])
                        .unwrap();
                    incr.decode_ready_segments(backend.as_ref(), &mut out)
                        .unwrap();
                    // The plan's promise: after chunk k, exactly its
                    // cumulative segment count is decoded.
                    assert_eq!(
                        incr.decoded_segments(),
                        c.segments.end,
                        "plan-aligned {name}: {ctx}"
                    );
                }
                assert!(incr.is_finished(), "plan-aligned {name}: {ctx}");
                assert_eq!(out, data, "plan-aligned {name}: {ctx}");
            }
        }
    }
}

/// Shapes targeting the fast-loop/careful-tail seam of
/// `recoil_rans::fast::decode_span`: streams whose word count exhausts
/// exactly at a group boundary, one word short of a group (the budget
/// check fails with `GROUP - 1` words still unread), one word past it, and
/// symbol counts that end mid-group on the final lane. Each shape is
/// checked three ways: fast engine vs the retained careful reference
/// (symbols, lane states, and final cursor), every backend buffered, and
/// the streaming path at a fine granularity.
#[test]
fn fast_tail_seam_word_exhaustion_shapes() {
    use recoil::rans::fast::{decode_span, decode_span_careful, GROUP};

    // Scan seeded corpus lengths until every target (word-count residue,
    // symbol-count residue) pair is represented; the encoder is fast
    // enough that a few hundred small encodes are negligible.
    let word_residues = [0usize, 1, GROUP - 1];
    let sym_residues = [0usize, 13];
    let mut wanted: Vec<(usize, usize)> = word_residues
        .iter()
        .flat_map(|&w| sym_residues.iter().map(move |&s| (w, s)))
        .collect();
    let mut cases = Vec::new();
    let mut seed = 0x5EA4_5EED_u64;
    let codec = Codec::builder().max_segments(7).build().unwrap();
    for len in 2048..6144usize {
        if wanted.is_empty() {
            break;
        }
        let data = corpus_entry(len, 256, next_u64(&mut seed));
        let enc = codec.encode(&data).unwrap();
        let key = (enc.container.stream.words.len() % GROUP, len % GROUP);
        if let Some(at) = wanted.iter().position(|&w| w == key) {
            wanted.remove(at);
            cases.push((data, enc));
        }
    }
    assert!(
        wanted.is_empty(),
        "scan did not produce shapes for residues {wanted:?}"
    );

    let backends = backends();
    for (data, enc) in &cases {
        let stream = &enc.container.stream;
        let meta = &enc.container.metadata;
        let ctx = format!(
            "len={} words={} (w%G={}, n%G={})",
            data.len(),
            stream.words.len(),
            stream.words.len() % GROUP,
            data.len() % GROUP
        );
        let next = stream.end_cursor();

        // Fast engine vs careful reference: identical output, identical
        // final lane states, identical leftover cursor.
        let mut fast_states = stream.final_states.clone();
        let mut fast_out = vec![0u8; data.len()];
        let fast_cursor = decode_span(
            &enc.model,
            &stream.words,
            next,
            &mut fast_states,
            0,
            &mut fast_out,
        )
        .unwrap();
        let mut ref_states = stream.final_states.clone();
        let mut ref_out = vec![0u8; data.len()];
        let ref_cursor = decode_span_careful(
            &enc.model,
            &stream.words,
            next,
            &mut ref_states,
            0,
            &mut ref_out,
        )
        .unwrap();
        assert_eq!(fast_out, *data, "fast engine: {ctx}");
        assert_eq!(ref_out, *data, "careful reference: {ctx}");
        assert_eq!(fast_states, ref_states, "lane states: {ctx}");
        assert_eq!(fast_cursor, ref_cursor, "cursor: {ctx}");

        // All backends, buffered and streaming.
        for (name, backend) in &backends {
            let got: Vec<u8> = codec.decode_with(backend.as_ref(), enc).unwrap();
            assert_eq!(got, *data, "buffered {name}: {ctx}");
            let got = stream_decode(enc, meta, backend.as_ref(), 64);
            assert_eq!(got, *data, "streaming {name}: {ctx}");
        }
    }
}

#[test]
fn sixteen_bit_streams_are_differentially_identical() {
    let mut seed = 0x16B1_7555_u64;
    let raw = corpus_entry(40_000, 256, next_u64(&mut seed));
    let data: Vec<u16> = raw.iter().map(|&b| (b as u16) << 2).collect();
    let codec = Codec::builder()
        .quant_bits(12)
        .max_segments(16)
        .build()
        .unwrap();
    let enc = codec.encode_u16(&data).unwrap();
    for (name, backend) in &backends() {
        let got: Vec<u16> = codec.decode_with(backend.as_ref(), &enc).unwrap();
        assert_eq!(got, data, "buffered u16 {name}");
    }
}

#[test]
fn pooled_and_scalar_segment_ranges_agree_mid_stream() {
    // The segment-range entry point itself, against a word *prefix*: decode
    // the first half of the segments before the rest of the stream exists.
    let mut seed = 77u64;
    let data = corpus_entry(80_000, 256, next_u64(&mut seed));
    let codec = Codec::builder().max_segments(16).build().unwrap();
    let enc = codec.encode(&data).unwrap();
    let meta = &enc.container.metadata;
    let nseg = meta.num_segments();
    assert!(nseg >= 4);
    let half = nseg / 2;
    let need = meta.splits[half as usize - 1].offset as usize + 1;

    let mut prefix_stream = enc.container.stream.clone();
    prefix_stream.words.truncate(need);
    let req = DecodeRequest {
        stream: &prefix_stream,
        metadata: meta,
        model: &enc.model,
    };
    let bounds = meta.segment_bounds();
    let cut = bounds[half as usize] as usize;
    for (name, backend) in &backends() {
        let mut out = vec![0u8; data.len()];
        backend
            .decode_u8_segments(&req, 0..half, &mut out)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&out[..cut], &data[..cut], "prefix decode {name}");
        assert!(
            out[cut..].iter().all(|&b| b == 0),
            "{name} wrote past range"
        );

        // Asking for the final segment against a prefix must error, not
        // misdecode.
        assert!(
            backend.decode_u8_segments(&req, 0..nseg, &mut out).is_err(),
            "{name} must reject a final-segment decode on a prefix"
        );
    }
}
