//! Wire-format round-trips for edge-case metadata: one segment, the
//! maximum planned segments, and an empty payload — plus corruption cases
//! that must surface as `RecoilError::Wire`, never as a panic.

use recoil::prelude::*;

fn codec(max_segments: u64) -> Codec {
    Codec::builder().max_segments(max_segments).build().unwrap()
}

fn roundtrip(meta: &RecoilMetadata) -> RecoilMetadata {
    let bytes = metadata_to_bytes(meta);
    metadata_from_bytes(&bytes).unwrap()
}

#[test]
fn one_segment_metadata_round_trips() {
    let data: Vec<u8> = (0..50_000u32).map(|i| (i % 97) as u8).collect();
    let encoded = codec(1).encode(&data).unwrap();
    let meta = &encoded.container.metadata;
    assert_eq!(meta.num_segments(), 1);
    assert!(meta.splits.is_empty());
    assert_eq!(&roundtrip(meta), meta);
}

#[test]
fn max_segments_metadata_round_trips() {
    let data = recoil::data::exponential_bytes(400_000, 50.0, 9);
    let encoded = codec(512).encode(&data).unwrap();
    let meta = &encoded.container.metadata;
    assert!(
        meta.num_segments() > 256,
        "planner placed {}",
        meta.num_segments()
    );
    assert_eq!(&roundtrip(meta), meta);
}

#[test]
fn empty_payload_metadata_round_trips() {
    let encoded = codec(8).encode(&[]).unwrap();
    let meta = &encoded.container.metadata;
    assert_eq!(meta.num_symbols, 0);
    assert_eq!(meta.num_segments(), 1);
    assert_eq!(&roundtrip(meta), meta);
}

#[test]
fn corrupted_bytes_return_wire_error_not_panic() {
    let data = recoil::data::text_like_bytes(100_000, 5.0, 10);
    let encoded = codec(16).encode(&data).unwrap();
    let bytes = metadata_to_bytes(&encoded.container.metadata);

    // Bad magic.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        metadata_from_bytes(&bad_magic),
        Err(RecoilError::Wire { .. })
    ));

    // Every single-byte corruption either parses to valid metadata or is a
    // Wire error — never a panic, never a decode-layer error.
    for at in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[at] ^= 0x55;
        match metadata_from_bytes(&mutated) {
            Ok(meta) => meta.validate().unwrap(),
            Err(RecoilError::Wire { .. }) => {}
            Err(other) => panic!("byte {at}: unexpected error variant {other:?}"),
        }
    }

    // Every truncation is a Wire error.
    for cut in 0..bytes.len() {
        assert!(
            matches!(
                metadata_from_bytes(&bytes[..cut]),
                Err(RecoilError::Wire { .. })
            ),
            "cut {cut}"
        );
    }
}

#[test]
fn container_file_corruption_is_wire_error() {
    use recoil::core::{container_from_bytes, container_to_bytes};
    let data = recoil::data::exponential_bytes(50_000, 200.0, 11);
    let encoded = codec(8).encode(&data).unwrap();
    let bytes = container_to_bytes(&encoded.container, encoded.model.table());
    assert!(container_from_bytes(&bytes).is_ok());
    for cut in [0, 3, 9, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            matches!(
                container_from_bytes(&bytes[..cut]),
                Err(RecoilError::Wire { .. })
            ),
            "cut {cut}"
        );
    }
}
