//! Cross-engine differential encode harness — the encode-side sibling of
//! `differential_decode.rs`.
//!
//! Three encoders must produce **byte-identical containers** for every
//! input: the retained per-symbol careful encoder
//! (`InterleavedEncoder::encode_all`), the branchless fast engine behind
//! `Codec::encode*` (`recoil_rans::fast_encode`), and the segment-parallel
//! pooled encode (`Codec::encode_*_pooled`). One seeded corpus covers
//! empty and one-symbol inputs, heavily skewed streams, alphabets from
//! binary to the full byte range, lane counts 1 and 32, and planner
//! segment budgets 1/2/7/64 — and every container must round-trip through
//! every decode backend this host can run.

use recoil::prelude::*;
use recoil::rans::InterleavedEncoder;

/// SplitMix-style deterministic generator — the corpus is fully seeded.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One corpus entry: `len` symbols drawn from `alphabet` distinct values,
/// with a skewed distribution so streams stay compressible.
fn corpus_entry(len: usize, alphabet: u16, seed: u64) -> Vec<u8> {
    let mut rng = seed;
    (0..len)
        .map(|_| {
            let r = next_u64(&mut rng);
            // Square the draw to skew mass toward small symbols.
            let frac = (r % 1000) as f64 / 1000.0;
            ((frac * frac * alphabet as f64) as u16).min(alphabet - 1) as u8
        })
        .collect()
}

/// The reference encode: the careful per-symbol encoder driving the split
/// planner, exactly as the codec did before the fast engine existed.
fn careful_container(
    data: &[u8],
    model: &StaticModelProvider,
    ways: u32,
    planner_config: PlannerConfig,
) -> RecoilContainer {
    let mut planner = SplitPlanner::new(ways, data.len() as u64, planner_config);
    let mut enc = InterleavedEncoder::new(model, ways);
    enc.encode_all(data, &mut planner);
    let stream = enc.finish();
    let metadata = planner.finish(stream.words.len() as u64, model.quant_bits());
    RecoilContainer { stream, metadata }
}

/// Every decode backend that can read a `ways`-lane stream on this host
/// (the SIMD kernels are hardwired to the 32-way interleave).
fn backends(ways: u32) -> Vec<(&'static str, Box<dyn DecodeBackend>)> {
    let mut b: Vec<(&'static str, Box<dyn DecodeBackend>)> = vec![
        ("scalar", Box::new(ScalarBackend)),
        ("pooled", Box::new(PooledBackend::new(4))),
    ];
    if ways == 32 {
        b.push(("auto", Box::new(AutoBackend::with_threads(2))));
        let avx2 = Avx2Backend::new();
        if avx2.is_available() {
            b.push(("avx2", Box::new(avx2)));
        }
        let avx512 = Avx512Backend::new();
        if avx512.is_available() {
            b.push(("avx512", Box::new(avx512)));
        }
    }
    b
}

#[test]
fn fast_and_pooled_encodes_match_careful_serial_everywhere() {
    // (len, alphabet, quant_bits): empty, 1-symbol, sub-lane-width, a
    // binary (heavily skewed) stream, odd sizes, and bulk entries big
    // enough that the pooled path actually fans out (>= 64k symbols).
    let shapes: [(usize, u16, u32); 8] = [
        (0, 2, 11),
        (1, 2, 8),
        (31, 7, 9),
        (100, 2, 11),
        (4_097, 251, 11),
        (20_000, 2, 10),
        (90_000, 16, 10),
        (150_000, 256, 11),
    ];
    let segment_budgets: [u64; 4] = [1, 2, 7, 64];
    let pool = ThreadPool::new(3);
    let mut seed = 0xE4C0_DE5E_u64;

    for &(len, alphabet, quant_bits) in &shapes {
        let data = corpus_entry(len, alphabet, next_u64(&mut seed));
        let model = StaticModelProvider::new(if data.is_empty() {
            // The codec's own empty-input model, reproduced for the
            // reference encoder.
            CdfTable::from_freqs(vec![1 << (quant_bits - 1); 2], quant_bits)
        } else {
            CdfTable::of_bytes(&data, quant_bits)
        });

        for ways in [1u32, 32] {
            let backends = backends(ways);
            for &segments in &segment_budgets {
                let codec = Codec::builder()
                    .ways(ways)
                    .max_segments(segments)
                    .quant_bits(quant_bits)
                    .build()
                    .unwrap();
                let ctx = format!(
                    "len={len} alphabet={alphabet} n={quant_bits} ways={ways} \
                     segments={segments}"
                );

                let reference =
                    careful_container(&data, &model, ways, codec.config().planner_config());
                let fast = codec.encode_with_provider(&data, &model).unwrap();
                assert_eq!(fast.stream, reference.stream, "fast stream: {ctx}");
                assert_eq!(fast.metadata, reference.metadata, "fast metadata: {ctx}");

                let pooled = codec
                    .encode_with_provider_pooled(&data, &model, &pool)
                    .unwrap();
                assert_eq!(pooled.stream, reference.stream, "pooled stream: {ctx}");
                assert_eq!(
                    pooled.metadata, reference.metadata,
                    "pooled metadata: {ctx}"
                );

                // Every decode backend reads the (shared) bytes back.
                let enc = Encoded {
                    container: pooled,
                    model: model.clone(),
                    symbol_bits: 8,
                };
                for (name, backend) in &backends {
                    let got: Vec<u8> = codec.decode_with(backend.as_ref(), &enc).unwrap();
                    assert_eq!(got, data, "round-trip {name}: {ctx}");
                }
            }
        }
    }
}

#[test]
fn u16_fast_and_pooled_encodes_agree_and_round_trip() {
    let mut seed = 0x16E4_C0DE_u64;
    let raw = corpus_entry(120_000, 256, next_u64(&mut seed));
    let data: Vec<u16> = raw.iter().map(|&b| (b as u16) << 2).collect();
    let codec = Codec::builder()
        .quant_bits(12)
        .max_segments(16)
        .build()
        .unwrap();
    let serial = codec.encode_u16(&data).unwrap();
    let pool = ThreadPool::new(3);
    let pooled = codec.encode_u16_pooled(&data, &pool).unwrap();
    assert_eq!(pooled.container.stream, serial.container.stream);
    assert_eq!(pooled.container.metadata, serial.container.metadata);
    for (name, backend) in &backends(32) {
        let got: Vec<u16> = codec.decode_with(backend.as_ref(), &pooled).unwrap();
        assert_eq!(got, data, "u16 round-trip {name}");
    }
}

#[test]
fn byte_facade_pooled_encode_matches_serial() {
    // The `Codec::encode` / `Codec::encode_pooled` pair (model built from
    // the data) rather than the explicit-provider path.
    let mut seed = 0xFACADE_u64;
    let data = corpus_entry(200_000, 200, next_u64(&mut seed));
    let codec = Codec::builder().max_segments(64).build().unwrap();
    let serial = codec.encode(&data).unwrap();
    let pool = ThreadPool::new(3);
    let pooled = codec.encode_pooled(&data, &pool).unwrap();
    assert_eq!(pooled.container.stream, serial.container.stream);
    assert_eq!(pooled.container.metadata, serial.container.metadata);
    // And a combined-down tier of the pooled container still decodes.
    let meta = try_combine_splits(&pooled.container.metadata, 4).unwrap();
    let shrunk = Encoded {
        container: RecoilContainer {
            stream: pooled.container.stream.clone(),
            metadata: meta,
        },
        model: pooled.model.clone(),
        symbol_bits: 8,
    };
    let got: Vec<u8> = codec.decode(&shrunk).unwrap();
    assert_eq!(got, data);
}
