//! Randomized tests of the paper's core invariants over arbitrary inputs,
//! distributions, lane counts and split requests.
//!
//! The registry `proptest` crate is unavailable offline, so the properties
//! run over deterministic seeded cases; every assertion message carries the
//! seed for replay.

use recoil::core::codec::decode_pooled;
use recoil::core::{plan_from_events, PlannerConfig};
use recoil::prelude::*;

mod common;
use common::Cases;

fn encode_with_events(
    data: &[u8],
    n: u32,
    ways: u32,
) -> (
    EncodedStream,
    Vec<recoil::rans::RenormEvent>,
    StaticModelProvider,
) {
    let p = StaticModelProvider::new(CdfTable::of_bytes(data, n));
    let mut enc = InterleavedEncoder::new(&p, ways);
    let mut sink = VecSink::new();
    enc.encode_all(data, &mut sink);
    (enc.finish(), sink.events, p)
}

fn scalar_decode(
    stream: &EncodedStream,
    meta: &RecoilMetadata,
    p: &StaticModelProvider,
) -> Vec<u8> {
    let mut out = vec![0u8; stream.num_symbols as usize];
    decode_pooled(stream, meta, p, None, &mut out).unwrap();
    out
}

/// Round-trip over arbitrary data, n, and lane counts.
#[test]
fn interleaved_round_trip() {
    for seed in 0..48u64 {
        let mut rng = Cases::new(0x1A7E ^ seed);
        let len = rng.range(1, 4000) as usize;
        let data = rng.data(len);
        let n = rng.range(8, 17) as u32;
        let ways = rng.pick(&[1u32, 2, 3, 8, 32]);
        let (stream, _, p) = encode_with_events(&data, n, ways);
        let back: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
        assert_eq!(back, data, "seed {seed} n {n} ways {ways}");
    }
}

/// Lemma 3.1: every recorded renorm state is below L = 2^16, and every
/// event maps offsets/positions consistently.
#[test]
fn renorm_events_are_bounded_and_ordered() {
    for seed in 0..48u64 {
        let mut rng = Cases::new(0x2B0B ^ seed);
        let len = rng.range(64, 4000) as usize;
        let data = rng.data(len);
        let n = rng.range(8, 13) as u32;
        let (stream, events, _) = encode_with_events(&data, n, 32);
        assert_eq!(events.len(), stream.words.len(), "seed {seed}");
        let mut prev_pos = 0i128;
        for (k, e) in events.iter().enumerate() {
            assert_eq!(e.offset, k as u64, "seed {seed}");
            if e.pos != recoil::rans::NO_SYMBOL {
                assert_eq!((e.pos % 32) as u32, e.lane, "seed {seed}");
                assert!(e.pos as i128 >= prev_pos, "seed {seed}");
                prev_pos = e.pos as i128;
            }
        }
    }
}

/// Recoil parallel decode equals serial decode for arbitrary inputs and
/// requested segment counts — the paper's central correctness claim.
#[test]
fn recoil_decode_equals_serial() {
    for seed in 0..32u64 {
        let mut rng = Cases::new(0x3C0D ^ seed);
        let len = rng.range(2000, 20_000) as usize;
        let data = rng.data(len);
        let segments = rng.range(2, 24);
        let n = rng.pick(&[10u32, 11, 14, 16]);
        let (stream, events, p) = encode_with_events(&data, n, 32);
        let meta = plan_from_events(
            &events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            n,
            PlannerConfig::with_segments(segments),
        );
        let serial: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
        let recoil = scalar_decode(&stream, &meta, &p);
        assert_eq!(&serial, &data, "seed {seed}");
        assert_eq!(recoil, serial, "seed {seed} segments {segments} n {n}");
    }
}

/// Combining to any smaller segment count yields valid metadata that still
/// decodes identically (decoder-adaptive scalability).
#[test]
fn any_combine_target_decodes_identically() {
    for seed in 0..32u64 {
        let mut rng = Cases::new(0x4D1E ^ seed);
        let len = rng.range(4000, 16_000) as usize;
        let data = rng.data(len);
        let target = rng.range(1, 12);
        let (stream, events, p) = encode_with_events(&data, 11, 32);
        let meta = plan_from_events(
            &events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            11,
            PlannerConfig::with_segments(24),
        );
        let combined = combine_splits(&meta, target);
        assert!(combined.num_segments() <= target.max(1), "seed {seed}");
        let got = scalar_decode(&stream, &combined, &p);
        assert_eq!(got, data, "seed {seed} target {target}");
    }
}

/// Metadata wire format round-trips exactly.
#[test]
fn metadata_wire_round_trip() {
    for seed in 0..32u64 {
        let mut rng = Cases::new(0x5E2F ^ seed);
        let len = rng.range(2000, 12_000) as usize;
        let data = rng.data(len);
        let segments = rng.range(2, 16);
        let (stream, events, _) = encode_with_events(&data, 11, 32);
        let meta = plan_from_events(
            &events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            11,
            PlannerConfig::with_segments(segments),
        );
        let bytes = metadata_to_bytes(&meta);
        let back = metadata_from_bytes(&bytes).unwrap();
        assert_eq!(back, meta, "seed {seed} segments {segments}");
    }
}

/// SIMD kernels are bit-exact against the scalar decoder on arbitrary
/// streams (both LUT layouts).
#[test]
fn simd_kernels_bit_exact() {
    for seed in 0..32u64 {
        let mut rng = Cases::new(0x6F30 ^ seed);
        let len = rng.range(100, 8000) as usize;
        let data = rng.data(len);
        let n = rng.pick(&[11u32, 16]);
        let (stream, _, p) = encode_with_events(&data, n, 32);
        let serial: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
        let m = SimdModel::from_provider(&p);
        for kernel in Kernel::all_available() {
            let mut out = vec![0u8; data.len()];
            decode_interleaved_simd(kernel, &stream, &m, &mut out).unwrap();
            assert_eq!(&out, &serial, "seed {seed} kernel {kernel:?}");
        }
    }
}

/// tANS multians decode equals serial tANS decode for any chunk count.
#[test]
fn multians_equals_serial() {
    for seed in 0..32u64 {
        let mut rng = Cases::new(0x7041 ^ seed);
        let len = rng.range(500, 8000) as usize;
        let data = rng.data(len);
        let chunks = rng.range(1, 64) as usize;
        let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, 11));
        let stream = encode_tans(&data, &table);
        let serial: Vec<u8> = decode_tans_serial(&stream, &table).unwrap();
        let (par, _) = decode_multians::<u8>(&stream, &table, chunks, None).unwrap();
        assert_eq!(&serial, &data, "seed {seed}");
        assert_eq!(par, serial, "seed {seed} chunks {chunks}");
    }
}

/// Quantization invariants: sums to 2^n, support preserved, capped.
#[test]
fn quantizer_invariants() {
    for seed in 0..48u64 {
        let mut rng = Cases::new(0x8152 ^ seed);
        let len = rng.range(2, 256) as usize;
        let mut counts: Vec<u64> = (0..len).map(|_| rng.below(100_000)).collect();
        if counts.iter().all(|&c| c == 0) {
            counts[0] = 1;
        }
        let n = rng.range(8, 17) as u32;
        let freqs = recoil::models::quantize_counts(&counts, n);
        assert_eq!(
            freqs.iter().map(|&f| f as u64).sum::<u64>(),
            1u64 << n,
            "seed {seed}"
        );
        for (i, (&c, &f)) in counts.iter().zip(&freqs).enumerate() {
            assert!(
                (c > 0) == (f > 0) || (c == 0 && f == 1),
                "seed {seed} symbol {i}"
            );
            assert!((f as u64) < (1u64 << n), "seed {seed} symbol {i}");
        }
    }
}
