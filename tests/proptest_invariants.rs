//! Property-based tests of the paper's core invariants over arbitrary
//! inputs, distributions, lane counts and split requests.

use proptest::collection::vec;
use proptest::prelude::*;
use recoil::core::{plan_from_events, PlannerConfig};
use recoil::prelude::*;

fn encode_with_events(
    data: &[u8],
    n: u32,
    ways: u32,
) -> (EncodedStream, Vec<recoil::rans::RenormEvent>, StaticModelProvider) {
    let p = StaticModelProvider::new(CdfTable::of_bytes(data, n));
    let mut enc = InterleavedEncoder::new(&p, ways);
    let mut sink = VecSink::new();
    enc.encode_all(data, &mut sink);
    (enc.finish(), sink.events, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round-trip over arbitrary data, n, and lane counts.
    #[test]
    fn interleaved_round_trip(
        data in vec(any::<u8>(), 1..4000),
        n in 8u32..=16,
        ways in prop::sample::select(vec![1u32, 2, 3, 8, 32]),
    ) {
        let (stream, _, p) = encode_with_events(&data, n, ways);
        let back: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Lemma 3.1: every recorded renorm state is below L = 2^16, and every
    /// event maps offsets/positions consistently.
    #[test]
    fn renorm_events_are_bounded_and_ordered(
        data in vec(any::<u8>(), 64..4000),
        n in 8u32..=12,
    ) {
        let (stream, events, _) = encode_with_events(&data, n, 32);
        prop_assert_eq!(events.len(), stream.words.len());
        let mut prev_pos = 0i128;
        for (k, e) in events.iter().enumerate() {
            prop_assert_eq!(e.offset, k as u64);
            if e.pos != recoil::rans::NO_SYMBOL {
                prop_assert!((e.pos % 32) as u32 == e.lane);
                prop_assert!(e.pos as i128 >= prev_pos);
                prev_pos = e.pos as i128;
            }
        }
    }

    /// Recoil parallel decode equals serial decode for arbitrary inputs and
    /// requested segment counts — the paper's central correctness claim.
    #[test]
    fn recoil_decode_equals_serial(
        seed_data in vec(any::<u8>(), 2000..20_000),
        segments in 2u64..24,
        n in prop::sample::select(vec![10u32, 11, 14, 16]),
    ) {
        let (stream, events, p) = encode_with_events(&seed_data, n, 32);
        let meta = plan_from_events(
            &events, 32, stream.num_symbols, stream.words.len() as u64, n,
            PlannerConfig::with_segments(segments),
        );
        let serial: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
        let recoil: Vec<u8> = decode_recoil(&stream, &meta, &p, None).unwrap();
        prop_assert_eq!(&serial, &seed_data);
        prop_assert_eq!(recoil, serial);
    }

    /// Combining to any smaller segment count yields valid metadata that
    /// still decodes identically (decoder-adaptive scalability).
    #[test]
    fn any_combine_target_decodes_identically(
        seed_data in vec(any::<u8>(), 4000..16_000),
        target in 1u64..12,
    ) {
        let (stream, events, p) = encode_with_events(&seed_data, 11, 32);
        let meta = plan_from_events(
            &events, 32, stream.num_symbols, stream.words.len() as u64, 11,
            PlannerConfig::with_segments(24),
        );
        let combined = combine_splits(&meta, target);
        prop_assert!(combined.num_segments() <= target.max(1));
        let got: Vec<u8> = decode_recoil(&stream, &combined, &p, None).unwrap();
        prop_assert_eq!(got, seed_data);
    }

    /// Metadata wire format round-trips exactly.
    #[test]
    fn metadata_wire_round_trip(
        seed_data in vec(any::<u8>(), 2000..12_000),
        segments in 2u64..16,
    ) {
        let (stream, events, _) = encode_with_events(&seed_data, 11, 32);
        let meta = plan_from_events(
            &events, 32, stream.num_symbols, stream.words.len() as u64, 11,
            PlannerConfig::with_segments(segments),
        );
        let bytes = metadata_to_bytes(&meta);
        let back = metadata_from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, meta);
    }

    /// SIMD kernels are bit-exact against the scalar decoder on arbitrary
    /// streams (both LUT layouts).
    #[test]
    fn simd_kernels_bit_exact(
        seed_data in vec(any::<u8>(), 100..8000),
        n in prop::sample::select(vec![11u32, 16]),
    ) {
        let (stream, _, p) = encode_with_events(&seed_data, n, 32);
        let serial: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
        let m = SimdModel::from_provider(&p);
        for kernel in Kernel::all_available() {
            let mut out = vec![0u8; seed_data.len()];
            decode_interleaved_simd(kernel, &stream, &m, &mut out).unwrap();
            prop_assert_eq!(&out, &serial, "kernel {:?}", kernel);
        }
    }

    /// tANS multians decode equals serial tANS decode for any chunk count.
    #[test]
    fn multians_equals_serial(
        seed_data in vec(any::<u8>(), 500..8000),
        chunks in 1usize..64,
    ) {
        let table = TansTable::from_cdf(&CdfTable::of_bytes(&seed_data, 11));
        let stream = encode_tans(&seed_data, &table);
        let serial: Vec<u8> = decode_tans_serial(&stream, &table).unwrap();
        let (par, _) = decode_multians::<u8>(&stream, &table, chunks, None).unwrap();
        prop_assert_eq!(&serial, &seed_data);
        prop_assert_eq!(par, serial);
    }

    /// Quantization invariants: sums to 2^n, support preserved, capped.
    #[test]
    fn quantizer_invariants(
        counts in vec(0u64..100_000, 2..256),
        n in 8u32..=16,
    ) {
        prop_assume!(counts.iter().any(|&c| c > 0));
        let freqs = recoil::models::quantize_counts(&counts, n);
        prop_assert_eq!(freqs.iter().map(|&f| f as u64).sum::<u64>(), 1u64 << n);
        for (i, (&c, &f)) in counts.iter().zip(&freqs).enumerate() {
            prop_assert!((c > 0) == (f > 0) || (c == 0 && f == 1), "symbol {i}");
            prop_assert!((f as u64) < (1u64 << n));
        }
    }
}
