//! Robustness at the trust boundaries: the wire parsers must never panic on
//! arbitrary or mutated input — they either parse to validated structures
//! or return a [`RecoilError`]. (Decoding a *corrupt payload* with valid
//! metadata is garbage-in/garbage-out, as for any entropy coder; the
//! parsers are the layer that must be hostile-input safe.)
//!
//! The registry `proptest` crate is unavailable offline, so the properties
//! run over deterministic seeded cases.

use recoil::core::{container_from_bytes, container_to_bytes, metadata_from_bytes};
use recoil::prelude::*;

mod common;
use common::Cases;

fn codec(max_segments: u64, quant_bits: u32) -> Codec {
    Codec::builder()
        .max_segments(max_segments)
        .quant_bits(quant_bits)
        .build()
        .unwrap()
}

/// Arbitrary bytes into the metadata parser: error or valid, no panic.
#[test]
fn metadata_parser_never_panics() {
    for seed in 0..256u64 {
        let mut rng = Cases::new(0xFEED ^ seed);
        let len = rng.below(512) as usize;
        let bytes = rng.bytes(len);
        if let Ok(meta) = metadata_from_bytes(&bytes) {
            assert!(meta.validate().is_ok(), "seed {seed}");
        }
    }
}

/// Arbitrary bytes into the file parser: error or valid, no panic.
#[test]
fn file_parser_never_panics() {
    for seed in 0..256u64 {
        let mut rng = Cases::new(0xF11E ^ seed);
        let len = rng.below(512) as usize;
        let bytes = rng.bytes(len);
        if let Ok((container, _model)) = container_from_bytes(&bytes) {
            assert!(container.stream.validate().is_ok(), "seed {seed}");
        }
    }
}

/// Single-byte mutations of a real file: every outcome is a parse error,
/// or a still-valid container (whose decode may legitimately fail or
/// produce different symbols — but must not panic at the parse layer).
#[test]
fn mutated_file_parses_or_errors() {
    for seed in 0..96u64 {
        let mut rng = Cases::new(0x3117 ^ seed);
        let len = 500 + rng.below(2500) as usize;
        let seed_data = rng.bytes(len);
        let enc = codec(4, 10).encode(&seed_data).unwrap();
        let mut bytes = container_to_bytes(&enc.container, enc.model.table());
        let at = rng.below(bytes.len() as u64) as usize;
        let flip_bit = rng.below(8) as u8;
        bytes[at] ^= 1 << flip_bit;
        match container_from_bytes(&bytes) {
            Err(_) => {}
            Ok((c, _m)) => {
                assert!(c.stream.validate().is_ok(), "seed {seed} at {at}");
                assert!(
                    c.metadata.validate_against(&c.stream).is_ok(),
                    "seed {seed} at {at}"
                );
            }
        }
    }
}

/// Truncated metadata at every cut point errors cleanly (and with the
/// `Wire` variant, not a decode error).
#[test]
fn truncated_metadata_errors() {
    for seed in 0..16u64 {
        let mut rng = Cases::new(0x7C07 ^ seed);
        let len = 2000 + rng.below(4000) as usize;
        let seed_data = rng.bytes(len);
        let enc = codec(8, 11).encode(&seed_data).unwrap();
        let bytes = metadata_to_bytes(&enc.container.metadata);
        for cut in 0..bytes.len() {
            let err = metadata_from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, RecoilError::Wire { .. }),
                "seed {seed} cut {cut}: {err}"
            );
        }
    }
}

#[test]
fn pathological_inputs_round_trip() {
    // Degenerate but legal inputs through the whole pipeline.
    let cases: Vec<Vec<u8>> = vec![
        vec![0u8; 10_000],                         // single symbol
        (0..=255u8).cycle().take(9_999).collect(), // uniform
        {
            let mut v = vec![0u8; 20_000]; // one rare symbol
            v[19_999] = 255;
            v
        },
        vec![7u8, 7, 7, 8], // tiny input
        vec![],             // empty payload
    ];
    for (i, data) in cases.iter().enumerate() {
        for n in [8u32, 11, 16] {
            let codec = codec(16, n);
            let enc = codec.encode(data).unwrap();
            let got: Vec<u8> = codec.decode(&enc).unwrap();
            assert_eq!(&got, data, "case {i} n={n}");
            // And through the file format.
            let bytes = container_to_bytes(&enc.container, enc.model.table());
            let (back, m2) = container_from_bytes(&bytes).unwrap();
            let mut got2 = vec![0u8; back.stream.num_symbols as usize];
            recoil::core::codec::decode_pooled(&back.stream, &back.metadata, &m2, None, &mut got2)
                .unwrap();
            assert_eq!(&got2, data, "file case {i} n={n}");
        }
    }
}

#[test]
fn naive_heuristic_still_decodes_correctly() {
    let data = recoil::data::text_like_bytes(300_000, 5.0, 77);
    let codec = Codec::builder()
        .max_segments(64)
        .heuristic(Heuristic::NearestOnly)
        .build()
        .unwrap();
    let enc = codec.encode(&data).unwrap();
    enc.container
        .metadata
        .validate_against(&enc.container.stream)
        .unwrap();
    let got: Vec<u8> = codec.decode(&enc).unwrap();
    assert_eq!(got, data);
}
