//! Robustness at the trust boundaries: the wire parsers must never panic on
//! arbitrary or mutated input — they either parse to validated structures
//! or return an error. (Decoding a *corrupt payload* with valid metadata is
//! garbage-in/garbage-out, as for any entropy coder; the parsers are the
//! layer that must be hostile-input safe.)

use proptest::collection::vec;
use proptest::prelude::*;
use recoil::core::{container_from_bytes, container_to_bytes, metadata_from_bytes};
use recoil::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes into the metadata parser: error or valid, no panic.
    #[test]
    fn metadata_parser_never_panics(bytes in vec(any::<u8>(), 0..512)) {
        if let Ok(meta) = metadata_from_bytes(&bytes) {
            prop_assert!(meta.validate().is_ok());
        }
    }

    /// Arbitrary bytes into the file parser: error or valid, no panic.
    #[test]
    fn file_parser_never_panics(bytes in vec(any::<u8>(), 0..512)) {
        if let Ok((container, _model)) = container_from_bytes(&bytes) {
            prop_assert!(container.stream.validate().is_ok());
        }
    }

    /// Single-byte mutations of a real file: every outcome is parse error,
    /// or a still-valid container (whose decode may legitimately fail or
    /// produce different symbols — but must not panic at the parse layer).
    #[test]
    fn mutated_file_parses_or_errors(
        seed_data in vec(any::<u8>(), 500..3000),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let model = StaticModelProvider::new(CdfTable::of_bytes(&seed_data, 10));
        let container = encode_with_splits(&seed_data, &model, 32, 4);
        let mut bytes = container_to_bytes(&container, model.table());
        let at = flip_at.index(bytes.len());
        bytes[at] ^= 1 << flip_bit;
        match container_from_bytes(&bytes) {
            Err(_) => {}
            Ok((c, _m)) => {
                prop_assert!(c.stream.validate().is_ok());
                prop_assert!(c.metadata.validate_against(&c.stream).is_ok());
            }
        }
    }

    /// Truncated metadata at every cut point errors cleanly.
    #[test]
    fn truncated_metadata_errors(
        seed_data in vec(any::<u8>(), 2000..6000),
        cut_frac in 0.0f64..1.0,
    ) {
        let model = StaticModelProvider::new(CdfTable::of_bytes(&seed_data, 11));
        let container = encode_with_splits(&seed_data, &model, 32, 8);
        let bytes = metadata_to_bytes(&container.metadata);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(metadata_from_bytes(&bytes[..cut]).is_err());
        }
    }
}

#[test]
fn pathological_inputs_round_trip() {
    // Degenerate but legal inputs through the whole pipeline.
    let cases: Vec<Vec<u8>> = vec![
        vec![0u8; 10_000],                     // single symbol
        (0..=255u8).cycle().take(9_999).collect(), // uniform
        {
            let mut v = vec![0u8; 20_000];     // one rare symbol
            v[19_999] = 255;
            v
        },
        vec![7u8, 7, 7, 8],                    // tiny input
    ];
    for (i, data) in cases.iter().enumerate() {
        for n in [8u32, 11, 16] {
            let model = StaticModelProvider::new(CdfTable::of_bytes(data, n));
            let container = encode_with_splits(data, &model, 32, 16);
            let got: Vec<u8> =
                decode_recoil(&container.stream, &container.metadata, &model, None).unwrap();
            assert_eq!(&got, data, "case {i} n={n}");
            // And through the file format.
            let bytes = container_to_bytes(&container, model.table());
            let (back, m2) = container_from_bytes(&bytes).unwrap();
            let got2: Vec<u8> = decode_recoil(&back.stream, &back.metadata, &m2, None).unwrap();
            assert_eq!(&got2, data, "file case {i} n={n}");
        }
    }
}

#[test]
fn naive_heuristic_still_decodes_correctly() {
    use recoil::core::PlannerConfig;
    use recoil::core::SplitPlanner;
    let data = recoil::data::text_like_bytes(300_000, 5.0, 77);
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
    let mut planner =
        SplitPlanner::new(32, data.len() as u64, PlannerConfig::with_segments_naive(64));
    let mut enc = InterleavedEncoder::new(&model, 32);
    enc.encode_all(&data, &mut planner);
    let stream = enc.finish();
    let meta = planner.finish(stream.words.len() as u64, 11);
    meta.validate_against(&stream).unwrap();
    let got: Vec<u8> = decode_recoil(&stream, &meta, &model, None).unwrap();
    assert_eq!(got, data);
}
