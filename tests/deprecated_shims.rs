//! The pre-`Codec` free functions are deprecated but must keep compiling
//! and produce byte-identical results to the new facade paths — one
//! bitstream format, two API generations.

#![allow(deprecated)]

use recoil::prelude::*;

fn sample(len: usize) -> Vec<u8> {
    (0..len as u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 22) as u8)
        .collect()
}

#[test]
fn encode_with_splits_matches_codec_encode() {
    let data = sample(300_000);
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
    let legacy = encode_with_splits(&data, &model, 32, 64);

    let codec = Codec::builder()
        .ways(32)
        .max_segments(64)
        .quant_bits(11)
        .build()
        .unwrap();
    let new = codec.encode(&data).unwrap();

    assert_eq!(
        new.container.stream, legacy.stream,
        "bitstream must be byte-identical"
    );
    assert_eq!(
        new.container.metadata, legacy.metadata,
        "split plan must be identical"
    );
    assert_eq!(
        metadata_to_bytes(&new.container.metadata),
        metadata_to_bytes(&legacy.metadata),
        "serialized metadata must be byte-identical"
    );
}

#[test]
fn decode_recoil_matches_codec_decode() {
    let data = sample(250_000);
    let codec = Codec::builder().max_segments(32).build().unwrap();
    let encoded = codec.encode(&data).unwrap();

    let legacy: Vec<u8> = decode_recoil(
        &encoded.container.stream,
        &encoded.container.metadata,
        &encoded.model,
        None,
    )
    .unwrap();
    let pool = ThreadPool::new(3);
    let legacy_pooled: Vec<u8> = decode_recoil(
        &encoded.container.stream,
        &encoded.container.metadata,
        &encoded.model,
        Some(&pool),
    )
    .unwrap();
    let new: Vec<u8> = codec.decode(&encoded).unwrap();
    assert_eq!(legacy, data);
    assert_eq!(legacy_pooled, data);
    assert_eq!(new, legacy);
}

#[test]
fn decode_recoil_into_matches_codec_decode_into() {
    let data = sample(120_000);
    let codec = Codec::builder().max_segments(16).build().unwrap();
    let encoded = codec.encode(&data).unwrap();

    let mut legacy = vec![0u8; data.len()];
    decode_recoil_into(
        &encoded.container.stream,
        &encoded.container.metadata,
        &encoded.model,
        None,
        &mut legacy,
    )
    .unwrap();
    let mut new = vec![0u8; data.len()];
    codec.decode_into(&encoded, &mut new).unwrap();
    assert_eq!(legacy, new);
    assert_eq!(new, data);
}

#[test]
fn decode_recoil_simd_matches_simd_backends() {
    let data = sample(200_000);
    let codec = Codec::builder().max_segments(24).build().unwrap();
    let encoded = codec.encode(&data).unwrap();

    for kernel in Kernel::all_available() {
        let mut legacy = vec![0u8; data.len()];
        decode_recoil_simd(
            kernel,
            &encoded.container.stream,
            &encoded.container.metadata,
            &encoded.model,
            None,
            &mut legacy,
        )
        .unwrap();
        assert_eq!(legacy, data, "legacy kernel {kernel:?}");

        let backend: Box<dyn DecodeBackend> = match kernel {
            Kernel::Scalar => Box::new(ScalarBackend),
            Kernel::Avx2 => Box::new(Avx2Backend::new()),
            Kernel::Avx512 => Box::new(Avx512Backend::new()),
        };
        let new: Vec<u8> = codec.decode_with(backend.as_ref(), &encoded).unwrap();
        assert_eq!(
            new,
            legacy,
            "backend {} vs kernel {kernel:?}",
            backend.name()
        );
    }
}
