//! Acceptance tests for the `Codec` facade: every Table-4-style dataset
//! family round-trips through every available `DecodeBackend` with
//! identical output, and invalid configurations are rejected with typed
//! errors — no panics anywhere on the public surface.

use recoil::data::{exponential_bytes, text_like_bytes};
use recoil::prelude::*;

/// Four Table-4-style datasets: two exponential rates (incompressible and
/// highly compressible) and two text entropies, scaled for CI.
fn datasets() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("rand_10", exponential_bytes(400_000, 10.0, 41)),
        ("rand_500", exponential_bytes(400_000, 500.0, 42)),
        ("dickens", text_like_bytes(400_000, 4.548, 43)),
        ("enwik", text_like_bytes(400_000, 5.087, 44)),
    ]
}

fn all_backends() -> Vec<Box<dyn DecodeBackend>> {
    vec![
        Box::new(ScalarBackend),
        Box::new(PooledBackend::new(8)),
        Box::new(Avx2Backend::with_threads(8)),
        Box::new(Avx512Backend::with_threads(8)),
        Box::new(AutoBackend::with_threads(8)),
    ]
}

#[test]
fn every_dataset_through_every_available_backend() {
    let codec = Codec::builder()
        .ways(32)
        .max_segments(64)
        .quant_bits(11)
        .build()
        .unwrap();
    for (name, data) in datasets() {
        let encoded = codec.encode(&data).unwrap();
        let reference: Vec<u8> = codec.decode_with(&ScalarBackend, &encoded).unwrap();
        assert_eq!(reference, data, "{name} scalar");
        for backend in all_backends() {
            if !backend.is_available() {
                // Explicit SIMD backends on hosts without the feature:
                // typed error, not a panic.
                let err = codec
                    .decode_with::<u8>(backend.as_ref(), &encoded)
                    .unwrap_err();
                assert!(
                    matches!(err, RecoilError::BackendUnavailable { .. }),
                    "{name} {}",
                    backend.name()
                );
                continue;
            }
            let got: Vec<u8> = codec.decode_with(backend.as_ref(), &encoded).unwrap();
            assert_eq!(got, reference, "{name} {}", backend.name());
        }
    }
}

#[test]
fn codec_is_reusable_across_payloads() {
    let codec = Codec::builder()
        .max_segments(16)
        .backend(AutoBackend::with_threads(4))
        .build()
        .unwrap();
    for (name, data) in datasets() {
        let encoded = codec.encode(&data).unwrap();
        assert!(encoded.container.metadata.num_segments() <= 16);
        let got: Vec<u8> = codec.decode(&encoded).unwrap();
        assert_eq!(got, data, "{name}");
    }
}

#[test]
fn invalid_configs_are_typed_errors() {
    for (build, field) in [
        (Codec::builder().ways(0).build(), "ways"),
        (Codec::builder().max_segments(0).build(), "max_segments"),
        (Codec::builder().quant_bits(17).build(), "quant_bits"),
        (Codec::builder().quant_bits(0).build(), "quant_bits"),
        (Codec::builder().max_candidates(0).build(), "max_candidates"),
    ] {
        match build {
            Err(RecoilError::InvalidConfig { field: got, .. }) => {
                assert_eq!(got, field);
            }
            other => panic!("expected InvalidConfig for {field}, got {other:?}"),
        }
    }
    // EncoderConfig validation is shared with the builder.
    let bad = EncoderConfig {
        quant_bits: 22,
        ..EncoderConfig::default()
    };
    assert!(matches!(
        bad.validate(),
        Err(RecoilError::InvalidConfig {
            field: "quant_bits",
            ..
        })
    ));
}

#[test]
fn decoding_wrong_width_is_an_error_not_a_panic() {
    let codec = Codec::builder().build().unwrap();
    let data: Vec<u16> = (0..20_000u32).map(|i| (i % 300) as u16).collect();
    let encoded = codec.encode_u16(&data).unwrap();
    assert!(codec.decode::<u8>(&encoded).is_err());
    let ok: Vec<u16> = codec.decode(&encoded).unwrap();
    assert_eq!(ok, data);
}

#[test]
fn mismatched_buffer_is_an_error_not_a_panic() {
    let codec = Codec::builder().max_segments(4).build().unwrap();
    let data = exponential_bytes(10_000, 100.0, 45);
    let encoded = codec.encode(&data).unwrap();
    let mut short = vec![0u8; data.len() - 1];
    assert!(codec.decode_into(&encoded, &mut short).is_err());
}

#[test]
fn heuristic_choice_flows_through_the_builder() {
    let data = text_like_bytes(300_000, 5.0, 46);
    let sync = Codec::builder().max_segments(64).build().unwrap();
    let naive = Codec::builder()
        .max_segments(64)
        .heuristic(Heuristic::NearestOnly)
        .build()
        .unwrap();
    let a = sync.encode(&data).unwrap();
    let b = naive.encode(&data).unwrap();
    // Same bitstream (encoding is heuristic-independent)…
    assert_eq!(a.container.stream, b.container.stream);
    // …and both plans decode correctly.
    let da: Vec<u8> = sync.decode(&a).unwrap();
    let db: Vec<u8> = naive.decode(&b).unwrap();
    assert_eq!(da, data);
    assert_eq!(db, data);
}
