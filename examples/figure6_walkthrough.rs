//! A guided tour of Figure 6 and Tables 1–2: encode a tiny 4-way stream,
//! watch the backward scan pick renormalization points, and print the
//! metadata exactly like the paper's tables.
//!
//! ```sh
//! cargo run --example figure6_walkthrough
//! ```

use recoil::core::codec::decode_pooled;
use recoil::core::{metadata_to_bytes, plan_from_events, PlannerConfig};
use recoil::prelude::*;

fn main() {
    // A small 4-way interleaved stream so individual renorm events are
    // visible (the paper's figures use W = 4 for the same reason).
    let data: Vec<u8> = (0..64u32)
        .map(|i| [7u8, 200, 13, 250, 99][(i % 5) as usize])
        .collect();
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 8));

    let mut enc = InterleavedEncoder::new(&model, 4);
    let mut events = VecSink::new();
    enc.encode_all(&data, &mut events);
    let stream = enc.finish();

    println!(
        "encoded {} symbols into {} renorm words\n",
        data.len(),
        stream.words.len()
    );
    println!("renormalization events (== words, because b >= n):");
    println!(
        "{:>7} | {:>4} | {:>10} | {:>9}",
        "offset", "lane", "symbol idx", "state<2^16"
    );
    for e in events.events.iter().take(12) {
        println!(
            "{:>7} | {:>4} | {:>10} | {:#9x}",
            e.offset,
            e.lane + 1, // paper lanes are 1-based
            e.pos + 1,  // paper symbol indices are 1-based
            e.state
        );
    }
    println!("   ... ({} more)\n", events.events.len().saturating_sub(12));

    // Plan one split in the middle (M = 2 segments) — the planner runs the
    // backward scan of §4.1 and the H(t, ts) heuristic of Def. 4.1.
    let meta = plan_from_events(
        &events.events,
        4,
        stream.num_symbols,
        stream.words.len() as u64,
        8,
        PlannerConfig::with_segments(2),
    );
    let split = &meta.splits[0];
    println!(
        "chosen split: bitstream offset {}, P = s_{}, sync section s_{}..=s_{}",
        split.offset,
        split.split_pos() + 1,
        split.sync_start() + 1,
        split.split_pos() + 1
    );

    // Table 2, our stream's edition.
    println!("\nCodec metadata (cf. Table 2):");
    print!("{:>20}", "Intermediate States");
    for li in &split.lanes {
        print!(" | {:#8x}", li.state);
    }
    print!("\n{:>20}", "Symbol Indices");
    for li in &split.lanes {
        print!(" | {:>8}", li.pos + 1);
    }
    print!("\n{:>20}", "Symbol Group IDs");
    for li in &split.lanes {
        print!(" | {:>8}", li.pos / 4 + 1);
    }
    let anchor = split.lanes.iter().map(|l| l.pos / 4).max().unwrap();
    print!("\n{:>20} | {:>8}", "Max (Anchor)", anchor + 1);
    print!("\n{:>20}", "Differences");
    for li in &split.lanes {
        print!(" | {:>8}", (li.pos / 4) as i64 - anchor as i64);
    }
    println!();

    // Serialize (§4.3 difference coding) and decode both segments.
    let bytes = metadata_to_bytes(&meta);
    println!(
        "\nserialized metadata: {} bytes for {} segments",
        bytes.len(),
        meta.num_segments()
    );

    let mut decoded = vec![0u8; data.len()];
    decode_pooled(&stream, &meta, &model, None, &mut decoded).unwrap();
    assert_eq!(decoded, data);
    println!("parallel 3-phase decode matches the input — done.");
}
