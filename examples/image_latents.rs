//! Adaptive (hyperprior) coding across Recoil split boundaries — the div2k
//! scenario of §5.1: every 16-bit symbol has its own Gaussian model, keyed
//! by symbol index. Recoil's metadata stores symbol indices precisely so
//! that threads starting mid-stream know which model each position uses
//! (§3.1, advantage (3)).
//!
//! ```sh
//! cargo run --release --example image_latents
//! ```

use recoil::data::latent_dataset;
use recoil::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), RecoilError> {
    // The n=16 scale bank used for all div2k-style runs (64 scales).
    println!("building Gaussian scale bank (n=16, 64 scales)...");
    let bank = Arc::new(GaussianScaleBank::default_latent_bank());

    // ~3.6M latents ≈ one DIV2K image through mbt2018-mean.
    let ds = latent_dataset(Arc::clone(&bank), 3_600_000, 6.0, 801);
    let bytes = ds.symbols.len() * 2;
    println!(
        "latents: {} symbols ({} bytes uncompressed)",
        ds.symbols.len(),
        bytes
    );

    // One codec for the whole pipeline: split metadata for 256 parallel
    // decoders, adaptive decodes distributed over all cores. (The SIMD
    // kernels need flat static LUTs, so adaptive content always takes the
    // scalar/pooled path — exactly as in the paper's div2k rows.)
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let codec = Codec::builder()
        .quant_bits(16)
        .max_segments(256)
        .backend(PooledBackend::new(threads))
        .build()?;

    // Encode with the caller-owned adaptive provider.
    let container = codec.encode_with_provider(&ds.symbols, &ds.provider)?;
    println!(
        "compressed: {} bytes ({:.1}% of raw) + {} metadata bytes, {} segments",
        container.stream_bytes(),
        100.0 * container.stream_bytes() as f64 / bytes as f64,
        container.metadata_bytes(),
        container.metadata.num_segments()
    );

    // Parallel adaptive decode: each thread's Sync Phase looks up models by
    // absolute symbol index, so split boundaries are invisible to the model.
    let t0 = std::time::Instant::now();
    let decoded = codec.decode_adaptive(&container.stream, &container.metadata, &ds.provider)?;
    let dt = t0.elapsed();
    assert_eq!(decoded, ds.symbols);
    println!(
        "adaptive parallel decode: {:.2?} ({:.2} GB/s of latent bytes) — bit-exact",
        dt,
        bytes as f64 / dt.as_secs_f64() / 1e9
    );

    // Scale down for a 4-thread tablet: same bitstream, less metadata.
    let small = combine_splits(&container.metadata, 4);
    let decoded4 = codec.decode_adaptive(&container.stream, &small, &ds.provider)?;
    assert_eq!(decoded4, ds.symbols);
    println!(
        "4-segment variant: metadata {} bytes (was {})",
        metadata_to_bytes(&small).len(),
        container.metadata_bytes()
    );
    Ok(())
}
