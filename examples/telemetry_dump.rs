//! Pulls the server's telemetry over the wire and dumps it: counters and
//! stage histograms in the Prometheus-style text exposition, plus the raw
//! stage-trace ring (the server runs at [`TelemetryLevel::Trace`] here).
//!
//! The flow mirrors a real monitoring scrape: drive a little traffic
//! (publish, cold fetch, warm fetches, a streaming fetch), then send one
//! TELEMETRY frame and render the reply. A second scrape at the end shows
//! the trace ring draining — events are consumed by the first reader.
//!
//! ```sh
//! cargo run --release --example telemetry_dump
//! ```

use recoil::net::{NetClient, NetClientConfig, NetConfig, NetServer};
use recoil::prelude::*;
use recoil::server::ContentServer;
use recoil::telemetry::TelemetryLevel;
use std::sync::Arc;

fn main() -> Result<(), RecoilError> {
    // --- Server with full tracing on; clients record their own streaming
    //     histograms (the client default is Counters already). ---
    let server = NetServer::bind(
        Arc::new(ContentServer::new()),
        "127.0.0.1:0",
        NetConfig {
            telemetry: TelemetryLevel::Trace,
            ..NetConfig::default()
        },
    )?;
    println!(
        "server listening on {} (telemetry level: trace)\n",
        server.addr()
    );

    // --- Generate some pipeline activity worth looking at. ---
    let data = recoil::data::exponential_bytes(1_000_000, 220.0, 11);
    let client = NetClient::connect_with(server.addr(), NetClientConfig::default())?;
    let config = EncoderConfig {
        max_segments: 256,
        ..EncoderConfig::default()
    };
    client.publish("report", &data, &config)?; // dispatch pool: encode
    client.request("report", 64)?; // tier-cache miss: combine
    client.request("report", 64)?; // warm hit, served inline
    client.request("report", 8)?; // second tier, another miss
    let streamed = client.fetch_and_decode_streaming("report", 64)?;
    assert_eq!(streamed.data, data);

    // --- Scrape 1: the TELEMETRY frame (negotiated in HELLO). ---
    let reply = client.remote_telemetry()?;
    println!("=== server text exposition ===");
    print!("{}", reply.snapshot.render_text());

    println!("\n=== stage trace ({} events) ===", reply.trace.len());
    for (ticket, ev) in &reply.trace {
        println!(
            "trace[{ticket:>4}] {:<18} conn_gen={:<6} t_ns={:<12} detail={}",
            ev.stage.name(),
            ev.conn_gen,
            ev.t_ns,
            ev.detail
        );
    }

    // --- The client keeps its own histograms (streaming latencies). ---
    println!("\n=== client-side streaming histograms ===");
    let local = client.telemetry().snapshot();
    for name in [
        "stream_first_segment_ns",
        "stream_transfer_ns",
        "stream_total_ns",
    ] {
        if let Some(h) = local.hist(name) {
            println!(
                "{name}: count={} p50={}ns p99={}ns max={}ns",
                h.count,
                h.p50(),
                h.p99(),
                h.max
            );
        }
    }

    // --- Scrape 2: counters persist, but the trace ring was drained. ---
    let again = client.remote_telemetry()?;
    println!(
        "\nsecond scrape: {} new trace events (ring drained by the first), \
         frames_read now {}",
        again.trace.len(),
        again.snapshot.counter("frames_read").unwrap_or(0)
    );

    server.shutdown();
    Ok(())
}
