//! Quickstart: configure a codec once, encode once, scale the metadata to
//! the decoder, decode in parallel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use recoil::prelude::*;

fn main() -> Result<(), RecoilError> {
    // 4 MB of moderately compressible synthetic text.
    let data = recoil::data::text_like_bytes(4_000_000, 5.0, 42);
    println!(
        "input: {} bytes ({:.2} bits/byte order-0 entropy)",
        data.len(),
        { Histogram::of_bytes(&data).entropy_bits() }
    );

    // The codec is configured once and reused: 32 interleaved lanes, an
    // order-0 model quantized to 2^11 (Table 3 recommends n <= 16), split
    // metadata for up to 2176 parallel decoders (the paper's "Large"
    // variation), and a backend that auto-selects AVX-512 → AVX2 → scalar.
    let codec = Codec::builder()
        .ways(32)
        .quant_bits(11)
        .max_segments(2176)
        .backend(AutoBackend::with_threads(
            std::thread::available_parallelism().map_or(1, |p| p.get()),
        ))
        .build()?;

    // Encode ONE interleaved rANS bitstream.
    let encoded = codec.encode(&data)?;
    println!(
        "encoded: {} payload bytes + {} metadata bytes ({} segments)",
        encoded.stream_bytes(),
        encoded.metadata_bytes(),
        encoded.container.metadata.num_segments()
    );

    // A 16-thread client doesn't need 2176 segments: combine in real time.
    // The bitstream is untouched; only metadata entries are dropped.
    let small = combine_splits(&encoded.container.metadata, 16);
    println!(
        "combined for 16 threads: {} metadata bytes (was {})",
        metadata_to_bytes(&small).len(),
        encoded.metadata_bytes()
    );

    // Parallel three-phase decode through the configured backend.
    let t0 = std::time::Instant::now();
    let decoded: Vec<u8> = codec.decode(&encoded)?;
    let dt = t0.elapsed();
    assert_eq!(decoded, data);
    println!(
        "decoded {} bytes in {:.2?} ({:.2} GB/s) — bit-exact",
        decoded.len(),
        dt,
        decoded.len() as f64 / dt.as_secs_f64() / 1e9
    );

    // The same payload through an explicit per-call backend: a portable
    // scalar pass that any host can run.
    let t0 = std::time::Instant::now();
    let scalar: Vec<u8> = codec.decode_with(&ScalarBackend, &encoded)?;
    let dt = t0.elapsed();
    assert_eq!(scalar, data);
    println!(
        "decoded with ScalarBackend in {:.2?} ({:.2} GB/s)",
        dt,
        scalar.len() as f64 / dt.as_secs_f64() / 1e9
    );
    Ok(())
}
