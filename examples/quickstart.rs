//! Quickstart: encode once, scale the metadata to the decoder, decode in
//! parallel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use recoil::prelude::*;

fn main() {
    // 4 MB of moderately compressible synthetic text.
    let data = recoil::data::text_like_bytes(4_000_000, 5.0, 42);
    println!("input: {} bytes ({:.2} bits/byte order-0 entropy)", data.len(), {
        Histogram::of_bytes(&data).entropy_bits()
    });

    // A static order-0 model quantized to 2^11 (Table 3 recommends n <= 16).
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));

    // Encode ONE interleaved rANS bitstream, planning split metadata for up
    // to 2176 parallel decoders (the paper's "Large" variation).
    let container = encode_with_splits(&data, &model, 32, 2176);
    println!(
        "encoded: {} payload bytes + {} metadata bytes ({} segments)",
        container.stream_bytes(),
        container.metadata_bytes(),
        container.metadata.num_segments()
    );

    // A 16-thread client doesn't need 2176 segments: combine in real time.
    // The bitstream is untouched; only metadata entries are dropped.
    let small = combine_splits(&container.metadata, 16);
    println!(
        "combined for 16 threads: {} metadata bytes (was {})",
        metadata_to_bytes(&small).len(),
        container.metadata_bytes()
    );

    // Parallel three-phase decode on a thread pool.
    let pool = ThreadPool::with_default_parallelism();
    let t0 = std::time::Instant::now();
    let decoded: Vec<u8> = decode_recoil(&container.stream, &small, &model, Some(&pool)).unwrap();
    let dt = t0.elapsed();
    assert_eq!(decoded, data);
    println!(
        "decoded {} bytes in {:.2?} ({:.2} GB/s) — bit-exact",
        decoded.len(),
        dt,
        decoded.len() as f64 / dt.as_secs_f64() / 1e9
    );

    // The same stream through the SIMD driver (AVX-512 → AVX2 → scalar).
    let kernel = Kernel::best();
    let mut out = vec![0u8; data.len()];
    let t0 = std::time::Instant::now();
    decode_recoil_simd(kernel, &container.stream, &small, &model, Some(&pool), &mut out).unwrap();
    let dt = t0.elapsed();
    assert_eq!(out, data);
    println!(
        "decoded with {kernel:?} in {:.2?} ({:.2} GB/s)",
        dt,
        out.len() as f64 / dt.as_secs_f64() / 1e9
    );
}
