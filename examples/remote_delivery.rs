//! The paper's §3.3 scenario over a real TCP socket: a content server on
//! one side, clients with different parallel capacities on the other.
//!
//! Everything crosses the wire — the publish (server encodes once), each
//! request with the client's capacity in the header, and the chunked
//! TRANSMIT response carrying the shrunk metadata, model, and bitstream.
//! Every decode is verified byte-identical to the published input.
//!
//! ```sh
//! cargo run --release --example remote_delivery
//! ```

use recoil::net::{NetClient, NetConfig, NetServer};
use recoil::prelude::*;
use recoil::server::ContentServer;
use std::sync::Arc;

fn main() -> Result<(), RecoilError> {
    let data = recoil::data::exponential_bytes(4_000_000, 500.0, 7);

    // --- Server side: bind an ephemeral loopback port. Chunks are cut at
    //     split-aligned boundaries (64 KiB target), which is what lets the
    //     streaming client below decode during the transfer. ---
    let server = NetServer::bind(
        Arc::new(ContentServer::new()),
        "127.0.0.1:0",
        NetConfig {
            chunk_bytes: 64 * 1024,
            ..NetConfig::default()
        },
    )?;
    println!("content server listening on {}\n", server.addr());

    // --- Publish over the wire: the server encodes ONCE at max
    //     parallelism; only metadata will shrink per client. ---
    let publisher = NetClient::connect(server.addr())?;
    let config = EncoderConfig {
        max_segments: 1024,
        ..EncoderConfig::default()
    };
    let ok = publisher.publish("movie", &data, &config)?;
    println!(
        "published `movie`: {} B bitstream, {} planned segments (encode-once)\n",
        ok.stream_bytes, ok.segments
    );

    // --- Client side: one device per capacity class, each a separate TCP
    //     client that decodes with its own backend. ---
    println!(
        "{:>8} | {:>10} | {:>14} | {:>9} | cache | decoded",
        "client", "segments", "transfer (B)", "combine"
    );
    println!("{}", "-".repeat(70));
    let mut sizes = Vec::new();
    for capacity in [1u64, 4, 16, 256, 1024] {
        let client = NetClient::connect(server.addr())?;
        let content = client.request("movie", capacity)?;
        // The acceptance bar: remote decode is byte-identical to the
        // published input, at every capacity.
        let decoded = content.decode_with(client.backend())?;
        assert_eq!(decoded, data, "capacity {capacity}");
        println!(
            "{:>8} | {:>10} | {:>14} | {:>9.2?} | {:>5} | byte-identical",
            format!("{capacity}-way"),
            content.segments,
            content.total_bytes(),
            std::time::Duration::from_nanos(content.combine_nanos),
            if content.cache_hit { "hit" } else { "miss" },
        );
        sizes.push(content.total_bytes());
    }
    assert!(
        sizes.windows(2).all(|w| w[0] <= w[1]),
        "transfer size is monotone in capacity"
    );

    // --- Streaming pipelined decode: chunks feed an IncrementalDecoder as
    //     they arrive, so segment decode overlaps the network transfer.
    //     The first symbols are ready long before the last chunk lands. ---
    let streamer = NetClient::connect(server.addr())?;
    let streamed = streamer.fetch_and_decode_streaming("movie", 256)?;
    assert_eq!(streamed.data, data, "streaming decode is byte-identical");
    println!(
        "\nstreaming fetch (256-way, {} chunks, {} decode batches):",
        streamed.chunk_count, streamed.decode_batches
    );
    println!(
        "  first segment decoded at {:>9.2?}  <- usable output this early",
        std::time::Duration::from_nanos(streamed.first_segment_nanos)
    );
    println!(
        "  transfer finished at     {:>9.2?}",
        std::time::Duration::from_nanos(streamed.transfer_nanos)
    );
    println!(
        "  all segments decoded at  {:>9.2?}",
        std::time::Duration::from_nanos(streamed.total_nanos)
    );

    // --- The serving counters, fetched through the STATS frame. ---
    let reply = publisher.stats()?;
    let s = reply.stats;
    println!(
        "\nserver stats over the wire: {} items, {} requests, \
         {} hits / {} misses, {} B served, {} active connections",
        reply.items, s.requests, s.cache_hits, s.cache_misses, s.bytes_served, s.active_connections
    );

    // --- Graceful shutdown: in-flight responses finish first. ---
    server.shutdown();
    println!("server shut down cleanly");
    Ok(())
}
