//! The paper's motivating scenario (§1, §3.3): one server, clients with
//! wildly different parallel capacities.
//!
//! The server encodes each item once under an [`EncoderConfig`] at maximum
//! parallelism. Each client attaches its capacity to the request; the
//! server resolves it to a capacity tier and serves the shrunk metadata —
//! combined in real time on the first request for a tier, straight from the
//! per-content LRU cache afterwards. Compare with the conventional
//! approach, where the server must either store one encoding per capacity
//! tier or ship everyone the massively-parallel (largest) file.
//!
//! ```sh
//! cargo run --release --example content_delivery
//! ```

use recoil::conventional::encode_conventional;
use recoil::prelude::*;
use recoil::server::{Client, ContentServer};

fn main() -> Result<(), RecoilError> {
    let data = recoil::data::exponential_bytes(10_000_000, 500.0, 7);
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));

    // --- Recoil server: encode ONCE at max parallelism (2176 segments). ---
    let config = EncoderConfig {
        ways: 32,
        max_segments: 2176,
        quant_bits: 11,
        ..EncoderConfig::default()
    };
    let server = ContentServer::new();
    server.publish("rand_500", &data, &config)?;
    let item = server.get("rand_500").expect("just published");
    let baseline = item.stream.payload_bytes();
    println!("baseline (a) payload: {baseline} bytes\n");

    // Publishing twice is rejected instead of silently clobbering content
    // that clients may still be downloading.
    let dup = server.publish("rand_500", &data, &config);
    assert!(matches!(dup, Err(RecoilError::AlreadyPublished { .. })));

    // --- Conventional comparators (fixed at encode time). ---
    let conv_large = encode_conventional(&data, &model, 32, 2176).payload_bytes();
    println!("conventional Large (2176 partitions): {conv_large} bytes");
    println!(
        "  => every client downloads +{} bytes of parallelism overhead\n",
        conv_large - baseline
    );

    // One client per device class, each created once — the decode pool
    // inside a client's backend is reused across all of its requests.
    let capacities = [1usize, 4, 16, 256, 2176];
    let clients: Vec<Client> = capacities.iter().map(|&c| Client::new(c.min(32))).collect();

    println!(
        "{:>8} | {:>12} | {:>14} | {:>12} | {:>9} | cache",
        "client", "segments", "transfer (B)", "overhead", "combine"
    );
    println!("{}", "-".repeat(78));
    for (&threads, client) in capacities.iter().zip(&clients) {
        // `fetch` resolves the name once: transmission and content handle
        // come from the same store lookup (no request/get TOCTOU).
        let (t, item) = server.fetch("rand_500", threads as u64)?;
        // Verify the client actually decodes the response correctly.
        let decoded = client.decode(&item.stream, &t, &item.model)?;
        assert_eq!(decoded, data);
        println!(
            "{:>8} | {:>12} | {:>14} | {:>12} | {:>9.2?} | {}",
            format!("{threads}-way"),
            t.metadata().num_segments(),
            t.total_bytes(),
            format!("+{}", t.total_bytes() - baseline),
            std::time::Duration::from_nanos(t.combine_nanos as u64),
            if t.cache_hit { "hit" } else { "miss" },
        );
    }

    // Headline numbers (§5.2): overhead saved vs serving Conventional Large.
    let small = server.request("rand_500", 16)?;
    assert!(small.cache_hit, "16-way tier was served above");
    let saved = conv_large as f64 - small.total_bytes() as f64;
    println!(
        "\nserving a 16-way client: Recoil {} B vs Conventional-Large {} B",
        small.total_bytes(),
        conv_large
    );
    println!(
        "=> compression-rate overhead reduced by {:.2}% of the baseline size",
        -100.0 * saved / baseline as f64
    );

    let stats = server.stats();
    println!(
        "\nserver stats: {} requests, {} hits / {} misses (hit rate {:.0}%), {} evictions",
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        100.0 * stats.hit_rate(),
        stats.cache_evictions
    );
    Ok(())
}
