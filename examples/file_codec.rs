//! A small self-contained file compressor/decompressor built on the public
//! API — what a downstream adopter's CLI would look like.
//!
//! ```sh
//! cargo run --release --example file_codec -- compress   INPUT OUTPUT.rcl
//! cargo run --release --example file_codec -- decompress INPUT.rcl OUTPUT
//! ```
//!
//! With no arguments, runs a self-demo on generated data in a temp dir.

use recoil::core::codec::decode_pooled;
use recoil::core::{container_from_bytes, container_to_bytes};
use recoil::prelude::*;

fn file_codec() -> Codec {
    // Plan enough splits for any realistic client; they cost ~80 B each and
    // a weaker decoder simply ignores (or is served fewer of) them.
    Codec::builder()
        .quant_bits(12)
        .max_segments(256)
        .build()
        .expect("static file-codec config is valid")
}

fn compress(input: &[u8]) -> Result<Vec<u8>, RecoilError> {
    let encoded = file_codec().encode(input)?;
    Ok(container_to_bytes(
        &encoded.container,
        encoded.model.table(),
    ))
}

fn decompress(bytes: &[u8]) -> Result<Vec<u8>, RecoilError> {
    let (container, model) = container_from_bytes(bytes)?;
    let pool = ThreadPool::with_default_parallelism();
    let mut out = vec![0u8; container.stream.num_symbols as usize];
    decode_pooled(
        &container.stream,
        &container.metadata,
        &model,
        Some(&pool),
        &mut out,
    )?;
    Ok(out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("compress") => {
            let input = std::fs::read(&args[2]).expect("readable input");
            let out = compress(&input).expect("encodable input");
            println!(
                "{} -> {}: {} -> {} bytes ({:.1}%)",
                args[2],
                args[3],
                input.len(),
                out.len(),
                100.0 * out.len() as f64 / input.len() as f64
            );
            std::fs::write(&args[3], out).expect("writable output");
        }
        Some("decompress") => {
            let bytes = std::fs::read(&args[2]).expect("readable input");
            let out = decompress(&bytes).unwrap_or_else(|e| {
                // Typed errors name the offending layer (Wire vs Decode).
                eprintln!("error: {}: {e}", args[2]);
                std::process::exit(1);
            });
            println!("{} -> {}: {} bytes restored", args[2], args[3], out.len());
            std::fs::write(&args[3], out).expect("writable output");
        }
        _ => {
            // Self-demo round trip through real files.
            let dir = std::env::temp_dir();
            let src = dir.join("recoil_demo_input.bin");
            let rcl = dir.join("recoil_demo.rcl");
            let data = recoil::data::text_like_bytes(3_000_000, 4.8, 5);
            std::fs::write(&src, &data).expect("temp write");

            let input = std::fs::read(&src).unwrap();
            let packed = compress(&input).expect("encodable input");
            std::fs::write(&rcl, &packed).unwrap();
            println!(
                "compressed {} -> {} bytes ({:.1}%), file: {}",
                input.len(),
                packed.len(),
                100.0 * packed.len() as f64 / input.len() as f64,
                rcl.display()
            );

            let restored = decompress(&std::fs::read(&rcl).unwrap()).expect("valid file");
            assert_eq!(restored, data);
            println!("decompressed and verified {} bytes — OK", restored.len());
            let _ = std::fs::remove_file(src);
            let _ = std::fs::remove_file(rcl);
        }
    }
}
