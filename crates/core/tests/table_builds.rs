//! Decode tables are built once per content and reused across streamed
//! segment batches.
//!
//! Standing up a [`StaticModelProvider`] fills a `2^n`-entry LUT
//! (`DecodeTables::build`); an [`IncrementalDecoder`] that rebuilt it per
//! `decode_ready_segments` call would pay that cost on every chunk of a
//! streamed transfer. This regression test pins the contract with the
//! process-wide build counter — it lives in its own test binary so no
//! concurrent test can bump the counter mid-measurement.

use recoil_core::codec::{Codec, PooledBackend, ScalarBackend};
use recoil_core::IncrementalDecoder;
use recoil_models::decode_table_builds;

#[test]
fn streaming_decode_reuses_the_tables_across_batches() {
    let data: Vec<u8> = (0..200_000u32)
        .map(|i| ((i.wrapping_mul(2654435761)) >> 23) as u8)
        .collect();
    let codec = Codec::builder().max_segments(64).build().unwrap();
    let enc = codec.encode(&data).unwrap();
    let mut bytes = Vec::with_capacity(enc.container.stream.words.len() * 2);
    for w in &enc.container.stream.words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }

    // Everything below decodes with already-built tables: constructing the
    // decoder (the model is cloned in, not rebuilt), pushing hundreds of
    // chunks, and draining ready segments through two backends must not
    // trigger a single further `DecodeTables::build`.
    let before = decode_table_builds();
    for backend in [
        &ScalarBackend as &dyn recoil_core::codec::DecodeBackend,
        &PooledBackend::new(3),
    ] {
        let mut incr = IncrementalDecoder::new(
            enc.container.metadata.clone(),
            enc.container.stream.final_states.clone(),
            enc.model.clone(),
        )
        .unwrap();
        let mut out = vec![0u8; data.len()];
        let mut batches = 0u32;
        for chunk in bytes.chunks(1024) {
            incr.push_bytes(chunk).unwrap();
            if !incr
                .decode_ready_segments(backend, &mut out)
                .unwrap()
                .is_empty()
            {
                batches += 1;
            }
        }
        assert!(incr.is_finished());
        assert_eq!(out, data);
        assert!(
            batches > 4,
            "expected several decode batches, got {batches}"
        );
    }
    assert_eq!(
        decode_table_builds(),
        before,
        "decode tables must be built once per content, not per segment batch"
    );
}
