//! Efficient metadata storage (paper §4.3, Tables 1 and 2).
//!
//! The wire format stores only *differences from expectations*:
//!
//! * Header: segment count, stream geometry — stored as-is.
//! * Bitstream offsets: the `i`-th split point is expected at `i * ceil(B/M)`;
//!   the signed differences form one data series.
//! * Max Symbol Group IDs (anchors): expected at `i * ceil(G/M)` where `G`
//!   is the total group count; signed differences form a second series.
//! * Per split: the `W` intermediate states raw ("stored as-is since they
//!   are difficult to be encoded further"), then the per-lane differences
//!   `anchor - group(lane)` — guaranteed non-negative ("we drop the sign
//!   bits"), as one unsigned series per split.
//!
//! Every series is `width-field, then fixed-width values`: the width field
//! stores `max_bits - 1` (zeros still take one bit, paper footnote 1) in
//! 4 bits for the unsigned 16-bit-max series and 5 bits for the signed
//! 32-bit-max series; signed values carry an extra sign bit each.
//!
//! Version 2 of the format appends a little-endian CRC-32 footer over all
//! preceding bytes; the parser verifies it before interpreting anything
//! else, so corrupt frames are rejected as [`RecoilError::Wire`] instead of
//! reconstructing garbage split points. Version 1 bytes (no footer) still
//! parse.

use crate::crc::crc32;
use crate::error::RecoilError;
use crate::metadata::{LaneInit, RecoilMetadata, SplitPoint};
use recoil_bitio::{BitReader, BitWriter};

const MAGIC: u64 = 0x5243_4C31; // "RCL1"
/// Current format: CRC-32 footer after the bit-packed body.
const VERSION: u64 = 2;
/// First format: identical body, no integrity footer.
const LEGACY_VERSION: u64 = 1;

/// Bits needed for unsigned `v`, counting zero as one bit.
fn bits_for(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// Writes an unsigned series: `width-1` in `len_bits`, then values.
fn write_unsigned_series(w: &mut BitWriter, vals: &[u64], len_bits: u32) {
    let width = vals.iter().map(|&v| bits_for(v)).max().unwrap_or(1);
    debug_assert!(
        width <= (1 << len_bits),
        "series width {width} overflows field"
    );
    w.write((width - 1) as u64, len_bits);
    for &v in vals {
        w.write(v, width);
    }
}

fn read_unsigned_series(
    r: &mut BitReader<'_>,
    count: usize,
    len_bits: u32,
) -> Result<Vec<u64>, RecoilError> {
    let width_field = r
        .read(len_bits)
        .ok_or_else(|| RecoilError::wire("truncated series header"))?;
    // xtask: allow(wire-cast): a `len_bits`-wide read (at most 5 bits) always fits u32.
    let width = width_field as u32 + 1;
    (0..count)
        .map(|_| {
            r.read(width)
                .ok_or_else(|| RecoilError::wire("truncated series"))
        })
        .collect()
}

/// Writes a signed series: `width-1` in `len_bits`, then `magnitude, sign`.
fn write_signed_series(w: &mut BitWriter, vals: &[i64], len_bits: u32) {
    let width = vals
        .iter()
        .map(|&v| bits_for(v.unsigned_abs()))
        .max()
        .unwrap_or(1);
    debug_assert!(width <= (1 << len_bits));
    w.write((width - 1) as u64, len_bits);
    for &v in vals {
        w.write(v.unsigned_abs(), width);
        w.write((v < 0) as u64, 1);
    }
}

fn read_signed_series(
    r: &mut BitReader<'_>,
    count: usize,
    len_bits: u32,
) -> Result<Vec<i64>, RecoilError> {
    let width_field = r
        .read(len_bits)
        .ok_or_else(|| RecoilError::wire("truncated series header"))?;
    // xtask: allow(wire-cast): a `len_bits`-wide read (at most 5 bits) always fits u32.
    let width = width_field as u32 + 1;
    (0..count)
        .map(|_| {
            let mag = r
                .read(width)
                .ok_or_else(|| RecoilError::wire("truncated series"))?;
            let neg = r
                .read(1)
                .ok_or_else(|| RecoilError::wire("truncated series"))?;
            Ok(if neg == 1 { -(mag as i64) } else { mag as i64 })
        })
        .collect()
}

/// Serializes metadata to its compact byte form (current version, with the
/// CRC-32 integrity footer).
pub fn metadata_to_bytes(meta: &RecoilMetadata) -> Vec<u8> {
    metadata_to_bytes_versioned(meta, VERSION)
}

/// Serializes at an explicit format version — `LEGACY_VERSION` exists only
/// so tests can prove old bytes still parse.
fn metadata_to_bytes_versioned(meta: &RecoilMetadata, version: u64) -> Vec<u8> {
    debug_assert!(meta.validate().is_ok());
    let mut w = BitWriter::new();
    w.write(MAGIC, 32);
    w.write(version, 8);
    w.write(meta.ways as u64, 16);
    w.write(meta.quant_bits as u64, 8);
    w.write(meta.num_symbols, 64);
    w.write(meta.num_words, 64);
    w.write(meta.splits.len() as u64, 32);

    let k = meta.splits.len() as u64;
    if k > 0 {
        let ways = meta.ways as u64;
        let segments = k + 1;
        let expect_off = meta.num_words.div_ceil(segments);
        let groups = meta.num_symbols.div_ceil(ways);
        let expect_grp = groups.div_ceil(segments);

        // Series 1: bitstream-offset differences across all splits.
        let off_diffs: Vec<i64> = meta
            .splits
            .iter()
            .enumerate()
            .map(|(i, s)| s.offset as i64 - ((i as u64 + 1) * expect_off) as i64)
            .collect();
        write_signed_series(&mut w, &off_diffs, 5);

        // Series 2: anchor (max group ID) differences across all splits.
        let anchors: Vec<u64> = meta.splits.iter().map(|s| s.split_pos() / ways).collect();
        let anchor_diffs: Vec<i64> = anchors
            .iter()
            .enumerate()
            .map(|(i, &a)| a as i64 - ((i as u64 + 1) * expect_grp) as i64)
            .collect();
        write_signed_series(&mut w, &anchor_diffs, 5);

        // Per split: raw states, then the per-lane group differences.
        for (s, &anchor) in meta.splits.iter().zip(&anchors) {
            for li in &s.lanes {
                w.write(li.state as u64, 16);
            }
            let diffs: Vec<u64> = s.lanes.iter().map(|li| anchor - li.pos / ways).collect();
            write_unsigned_series(&mut w, &diffs, 4);
        }
    }
    let mut bytes = w.into_bytes();
    if version >= VERSION {
        let footer = crc32(&bytes);
        bytes.extend_from_slice(&footer.to_le_bytes());
    }
    bytes
}

/// Parses metadata back from its byte form (version 1 or 2).
pub fn metadata_from_bytes(bytes: &[u8]) -> Result<RecoilMetadata, RecoilError> {
    let bad = |msg: &str| RecoilError::wire(msg);
    let mut peek = BitReader::new(bytes);
    if peek.read(32) != Some(MAGIC) {
        return Err(bad("bad magic"));
    }
    let body = match peek.read(8) {
        Some(LEGACY_VERSION) => bytes,
        Some(VERSION) => {
            // Verify the integrity footer before interpreting anything: a
            // corrupt frame must never reconstruct garbage split points.
            let (body, footer) = bytes.split_at(bytes.len() - 4);
            let footer: [u8; 4] = footer.try_into().map_err(|_| bad("truncated footer"))?;
            let expected = u32::from_le_bytes(footer);
            if crc32(body) != expected {
                return Err(bad("metadata checksum mismatch"));
            }
            body
        }
        Some(_) => return Err(bad("unsupported version")),
        None => return Err(bad("truncated header")),
    };
    let mut r = BitReader::new(body);
    r.read(32).ok_or_else(|| bad("truncated header"))?;
    r.read(8).ok_or_else(|| bad("truncated header"))?;
    // xtask: allow(wire-cast): a 16-bit read always fits u32.
    let ways = r.read(16).ok_or_else(|| bad("truncated header"))? as u32;
    // xtask: allow(wire-cast): an 8-bit read always fits u32.
    let quant_bits = r.read(8).ok_or_else(|| bad("truncated header"))? as u32;
    let num_symbols = r.read(64).ok_or_else(|| bad("truncated header"))?;
    let num_words = r.read(64).ok_or_else(|| bad("truncated header"))?;
    let k = usize::try_from(r.read(32).ok_or_else(|| bad("truncated header"))?)
        .map_err(|_| bad("split count exceeds the address space"))?;
    if ways == 0 {
        return Err(bad("zero ways"));
    }
    if k as u64 > num_symbols {
        return Err(bad("more splits than symbols"));
    }
    // Every split stores at least 16 bits of raw per-lane state, so a body
    // of `body.len()` bytes cannot hold more than `body.len() / 2` splits.
    // A hostile header claiming billions of splits is rejected here instead
    // of sizing an allocation from an attacker-chosen count.
    if k > body.len() / 2 {
        return Err(bad("split count exceeds the input size"));
    }

    // xtask: allow(wire-capacity): `k` is bounded by the physical input length above.
    let mut splits = Vec::with_capacity(k);
    if k > 0 {
        let waysu = u64::from(ways);
        let ways_n =
            usize::try_from(ways).map_err(|_| bad("lane count exceeds the address space"))?;
        let segments = k as u64 + 1;
        let expect_off = num_words.div_ceil(segments);
        let groups = num_symbols.div_ceil(waysu);
        let expect_grp = groups.div_ceil(segments);

        let off_diffs = read_signed_series(&mut r, k, 5)?;
        let anchor_diffs = read_signed_series(&mut r, k, 5)?;
        for (i, (&off_diff, &anchor_diff)) in off_diffs.iter().zip(&anchor_diffs).enumerate() {
            let offset = ((i as u64 + 1) * expect_off) as i64 + off_diff;
            let anchor = ((i as u64 + 1) * expect_grp) as i64 + anchor_diff;
            if offset < 0 || anchor < 0 {
                return Err(bad("negative reconstructed offset or anchor"));
            }
            let (offset, anchor) = (offset as u64, anchor as u64);
            // xtask: allow(wire-capacity): `ways` was read as 16 bits, so this caps at 128 KiB.
            let mut states = Vec::with_capacity(ways_n);
            for _ in 0..ways {
                // xtask: allow(wire-cast): a 16-bit read always fits u16.
                states.push(r.read(16).ok_or_else(|| bad("truncated states"))? as u16);
            }
            let diffs = read_unsigned_series(&mut r, ways_n, 4)?;
            let lanes: Vec<LaneInit> = diffs
                .iter()
                .zip(&states)
                .enumerate()
                .map(|(lane, (&diff, &state))| {
                    let group = anchor
                        .checked_sub(diff)
                        .ok_or_else(|| bad("group difference exceeds anchor"))?;
                    Ok(LaneInit {
                        state,
                        pos: group * waysu + lane as u64,
                    })
                })
                .collect::<Result<_, RecoilError>>()?;
            splits.push(SplitPoint { offset, lanes });
        }
    }

    let meta = RecoilMetadata {
        ways,
        quant_bits,
        num_symbols,
        num_words,
        splits,
    };
    meta.validate()
        .map_err(|e| RecoilError::wire(format!("parsed metadata is inconsistent: {e}")))?;
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_with(splits: Vec<SplitPoint>, ways: u32, n: u64, b: u64) -> RecoilMetadata {
        RecoilMetadata {
            ways,
            quant_bits: 11,
            num_symbols: n,
            num_words: b,
            splits,
        }
    }

    /// Figure 6 / Table 2 in 0-based coordinates (W = 4): positions
    /// 8, 13, 10, 15 → groups 2, 3, 2, 3, anchor 3, differences 1,0,1,0.
    fn figure6_meta() -> RecoilMetadata {
        let split = SplitPoint {
            offset: 6,
            lanes: vec![
                LaneInit {
                    state: 0x0A01,
                    pos: 8,
                },
                LaneInit {
                    state: 0x0B02,
                    pos: 13,
                },
                LaneInit {
                    state: 0x0C03,
                    pos: 10,
                },
                LaneInit {
                    state: 0x0D04,
                    pos: 15,
                },
            ],
        };
        meta_with(vec![split], 4, 20, 9)
    }

    #[test]
    fn round_trip_figure6() {
        let meta = figure6_meta();
        let bytes = metadata_to_bytes(&meta);
        let back = metadata_from_bytes(&bytes).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn paper_worked_example_group_difference_series() {
        // Table 2's "Differences" row is -1, 0, -1, 0 stored sign-dropped in
        // 1-bit values after a 4-bit zero width field: 0000 | 1 0 1 0.
        let mut w = BitWriter::new();
        write_unsigned_series(&mut w, &[1, 0, 1, 0], 4);
        assert_eq!(w.bit_len(), 4 + 4);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(4), Some(0)); // width - 1 = 0 → 1-bit values
        assert_eq!(r.read(1), Some(1));
        assert_eq!(r.read(1), Some(0));
        assert_eq!(r.read(1), Some(1));
        assert_eq!(r.read(1), Some(0));
    }

    #[test]
    fn empty_split_list_round_trips() {
        let meta = meta_with(vec![], 32, 1000, 400);
        let bytes = metadata_to_bytes(&meta);
        assert_eq!(
            bytes.len(),
            32,
            "header-only metadata is the 224-bit header plus the CRC footer"
        );
        assert_eq!(metadata_from_bytes(&bytes).unwrap(), meta);
    }

    #[test]
    fn multi_split_round_trip() {
        // Two well-separated splits over a 4-way stream.
        let s1 = SplitPoint {
            offset: 40,
            lanes: (0..4)
                .map(|l| LaneInit {
                    state: 100 + l as u16,
                    pos: 96 + l as u64,
                })
                .collect(),
        };
        let s2 = SplitPoint {
            offset: 81,
            lanes: (0..4)
                .map(|l| LaneInit {
                    state: 200 + l as u16,
                    pos: 196 + l as u64,
                })
                .collect(),
        };
        let meta = meta_with(vec![s1, s2], 4, 300, 130);
        let bytes = metadata_to_bytes(&meta);
        assert_eq!(metadata_from_bytes(&bytes).unwrap(), meta);
    }

    #[test]
    fn per_split_cost_matches_paper_estimate() {
        // §5.2: Recoil Large ≈ 76 bytes per split at W = 32 — the 64 raw
        // state bytes dominate; diffs/offsets add a dozen more bits each.
        let ways = 32u32;
        let splits: Vec<SplitPoint> = (0..100u64)
            .map(|i| SplitPoint {
                offset: (i + 1) * 1000 + (i % 7),
                lanes: (0..32)
                    .map(|l| LaneInit {
                        state: (l * 17) as u16,
                        pos: (i + 1) * 3200 + 32 * (l as u64 % 3) + l as u64,
                    })
                    .collect(),
            })
            .collect();
        let meta = meta_with(splits, ways, 400_000, 120_000);
        let bytes = metadata_to_bytes(&meta);
        let per_split = (bytes.len() as f64 - 32.0) / 100.0;
        assert!(
            (64.0..90.0).contains(&per_split),
            "per-split metadata cost {per_split} bytes out of expected range"
        );
    }

    #[test]
    fn truncated_bytes_error_cleanly() {
        let meta = figure6_meta();
        let bytes = metadata_to_bytes(&meta);
        for cut in 0..bytes.len() {
            assert!(
                metadata_from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let meta = figure6_meta();
        let mut bytes = metadata_to_bytes(&meta);
        bytes[0] ^= 0xFF;
        assert!(metadata_from_bytes(&bytes).is_err());
    }

    #[test]
    fn legacy_version1_bytes_still_parse() {
        let meta = figure6_meta();
        let v1 = metadata_to_bytes_versioned(&meta, LEGACY_VERSION);
        let v2 = metadata_to_bytes(&meta);
        assert_eq!(v1.len() + 4, v2.len(), "v2 adds exactly the CRC footer");
        assert_eq!(metadata_from_bytes(&v1).unwrap(), meta);
        assert_eq!(metadata_from_bytes(&v2).unwrap(), meta);
    }

    #[test]
    fn corrupt_body_is_caught_by_checksum() {
        let meta = figure6_meta();
        let bytes = metadata_to_bytes(&meta);
        // Flip one bit in every body byte after the version field: the CRC
        // footer must reject each one before structural interpretation.
        for at in 5..bytes.len() - 4 {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x10;
            let err = metadata_from_bytes(&corrupt).expect_err("corruption undetected");
            assert!(err.to_string().contains("checksum"), "byte {at}: {err}");
        }
    }

    #[test]
    fn hostile_split_count_rejected_before_allocation() {
        // A header claiming u32::MAX splits (with num_symbols large enough
        // to pass the splits-vs-symbols check) must fail on the physical
        // input-size bound, not size a multi-gigabyte Vec from the claim.
        let mut w = BitWriter::new();
        w.write(MAGIC, 32);
        w.write(VERSION, 8);
        w.write(4, 16); // ways
        w.write(11, 8); // quant_bits
        w.write(u64::MAX / 2, 64); // num_symbols
        w.write(1_000_000, 64); // num_words
        w.write(u64::from(u32::MAX), 32); // split count
        let mut bytes = w.into_bytes();
        let footer = crc32(&bytes);
        bytes.extend_from_slice(&footer.to_le_bytes());
        let err = metadata_from_bytes(&bytes).expect_err("hostile split count accepted");
        assert!(err.to_string().contains("split count"), "{err}");
    }

    #[test]
    fn bits_for_zero_is_one() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(u16::MAX as u64), 16);
    }
}
