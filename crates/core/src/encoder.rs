//! The segment-parallel encode driver: plan pass + concurrent segment
//! encode + deterministic stitch.
//!
//! rANS lane states form one serial dependency chain, so an exact parallel
//! encode cannot simply cut the input and start every piece from scratch —
//! each segment needs the lane states the serial encoder would have at its
//! boundary. The driver gets them with a **two-pass** scheme built on the
//! engines in `recoil_rans::fast_encode`:
//!
//! 1. **Plan pass** ([`scan_span`], serial): evolves the lane states over
//!    the whole input *without materializing words*, streams every renorm
//!    event to the [`SplitPlanner`] (so the metadata is final before any
//!    word is written), and snapshots `(position, word count, lane states)`
//!    checkpoints every [`CHECKPOINT_INTERVAL`] symbols.
//! 2. **Encode pass** ([`encode_span`], parallel): the input is cut at the
//!    metadata's own segment bounds — the same boundaries the decode side
//!    parallelizes over — and each segment is encoded concurrently on the
//!    caller's [`ThreadPool`]. A segment's entry states come from the
//!    nearest checkpoint plus a short (`< CHECKPOINT_INTERVAL` symbols)
//!    scan replay; its words go into a private buffer, stitched back in
//!    segment order afterwards.
//!
//! Determinism is by construction, not by convention: the scan pass and the
//! encode pass share one state-transform implementation, so every segment
//! starts from exactly the states the serial encoder would have, writes
//! exactly the words the serial encoder would write, and the planner sees
//! exactly the serial event stream. **The output container is byte-identical
//! to the serial encoder's** — `tests/differential_encode.rs` enforces it
//! across the corpus. The stitch is also self-checking: the concatenated
//! word count must equal the plan pass's count.
//!
//! The win is on multi-core publishers: the serial plan pass is cheaper than
//! a full encode (no word traffic), and the expensive pass fans out. On one
//! thread (or input below [`PARALLEL_MIN_SYMBOLS`]) the driver falls back to
//! the serial fast engine, which is the same bytes either way.

use crate::container::RecoilContainer;
use crate::planner::{PlannerConfig, SplitPlanner};
use parking_lot::Mutex;
use recoil_models::{ModelProvider, Symbol};
use recoil_parallel::ThreadPool;
use recoil_rans::fast_encode::{encode_span, scan_span};
use recoil_rans::params::INITIAL_STATE;
use recoil_rans::{EncodedStream, NullSink, RansError};

/// One parallel task's output slot: the encoded words of its segment, or
/// the first error it hit.
type SegmentSlot = Mutex<Option<Result<Vec<u16>, RansError>>>;

/// Symbols between lane-state checkpoints in the plan pass. Bounds both the
/// checkpoint memory (`ways * 4 + 16` bytes each) and the per-segment scan
/// replay a parallel task runs to reach its entry states.
pub(crate) const CHECKPOINT_INTERVAL: usize = 8 * 1024;

/// Inputs shorter than this encode serially even when a pool is offered:
/// below it the plan pass + fan-out overhead outweighs the parallel gain.
pub const PARALLEL_MIN_SYMBOLS: usize = 64 * 1024;

/// Serial encode through the branchless fast engine — the default
/// [`crate::codec::Codec::encode`] path and the fallback of
/// [`encode_container_pooled`]. Byte-identical to the retained per-symbol
/// reference encoder.
pub(crate) fn encode_container<S: Symbol, P: ModelProvider>(
    data: &[S],
    provider: &P,
    ways: u32,
    planner_config: PlannerConfig,
) -> Result<RecoilContainer, RansError> {
    let mut planner = SplitPlanner::new(ways, data.len() as u64, planner_config);
    let mut states = vec![INITIAL_STATE; ways as usize];
    let mut words = Vec::new();
    encode_span(provider, data, 0, &mut states, &mut words, 0, &mut planner)?;
    let metadata = planner.finish(words.len() as u64, provider.quant_bits());
    let stream = EncodedStream {
        words,
        final_states: states,
        num_symbols: data.len() as u64,
        ways,
    };
    Ok(RecoilContainer { stream, metadata })
}

/// One plan-pass snapshot: the lane states (and cumulative word count)
/// *before* encoding the symbol at `pos`.
struct Checkpoint {
    pos: u64,
    states: Vec<u32>,
}

/// Plan-pass result: final metadata plus everything the encode pass needs.
struct PlanPass {
    metadata: crate::metadata::RecoilMetadata,
    total_words: u64,
    final_states: Vec<u32>,
    checkpoints: Vec<Checkpoint>,
}

impl PlanPass {
    /// Lane states immediately before position `pos`, reconstructed from
    /// the nearest checkpoint at or before it plus a short scan replay.
    fn states_at<S: Symbol, P: ModelProvider>(
        &self,
        data: &[S],
        provider: &P,
        pos: u64,
    ) -> Result<Vec<u32>, RansError> {
        let cp = &self.checkpoints[pos as usize / CHECKPOINT_INTERVAL];
        debug_assert!(cp.pos <= pos);
        let mut states = cp.states.clone();
        if pos > cp.pos {
            // The replay feeds no planner (metadata is final) and its word
            // offsets are irrelevant without a sink, so base 0 is fine.
            scan_span(
                provider,
                &data[cp.pos as usize..pos as usize],
                cp.pos,
                &mut states,
                0,
                &mut NullSink,
            )?;
        }
        Ok(states)
    }
}

/// Runs the serial plan pass: metadata, word count, final states, and
/// checkpointed boundary states — everything except the words themselves.
fn plan_pass<S: Symbol, P: ModelProvider>(
    data: &[S],
    provider: &P,
    ways: u32,
    planner_config: PlannerConfig,
) -> Result<PlanPass, RansError> {
    let mut planner = SplitPlanner::new(ways, data.len() as u64, planner_config);
    let mut states = vec![INITIAL_STATE; ways as usize];
    let mut checkpoints = Vec::with_capacity(data.len() / CHECKPOINT_INTERVAL + 1);
    let mut words = 0u64;
    for (k, chunk) in data.chunks(CHECKPOINT_INTERVAL).enumerate() {
        let pos = (k * CHECKPOINT_INTERVAL) as u64;
        checkpoints.push(Checkpoint {
            pos,
            states: states.clone(),
        });
        words += scan_span(provider, chunk, pos, &mut states, words, &mut planner)?;
    }
    let metadata = planner.finish(words, provider.quant_bits());
    Ok(PlanPass {
        metadata,
        total_words: words,
        final_states: states,
        checkpoints,
    })
}

/// Segment-parallel encode on `pool`, byte-identical to
/// [`encode_container`]. Falls back to the serial fast engine when the pool
/// has one thread, the input is below [`PARALLEL_MIN_SYMBOLS`], or the
/// metadata ends up with a single segment.
pub(crate) fn encode_container_pooled<S: Symbol, P: ModelProvider>(
    data: &[S],
    provider: &P,
    ways: u32,
    planner_config: PlannerConfig,
    pool: &ThreadPool,
) -> Result<RecoilContainer, RansError> {
    if pool.threads() <= 1 || planner_config.segments <= 1 || data.len() < PARALLEL_MIN_SYMBOLS {
        return encode_container(data, provider, ways, planner_config);
    }

    let plan = plan_pass(data, provider, ways, planner_config)?;
    let bounds = plan.metadata.segment_bounds();
    let nseg = bounds.len() - 1;
    if nseg <= 1 {
        // Sparse streams can defeat the planner; nothing to fan out over.
        return encode_container(data, provider, ways, PlannerConfig::with_segments(1));
    }

    // Fan out: one task per metadata segment, words into private buffers.
    let slots: Vec<SegmentSlot> = (0..nseg).map(|_| Mutex::new(None)).collect();
    let words_per_symbol = plan.total_words as f64 / data.len().max(1) as f64;
    pool.run(nseg, |m| {
        let result = (|| {
            let (start, end) = (bounds[m] as usize, bounds[m + 1] as usize);
            let mut states = plan.states_at(data, provider, bounds[m])?;
            let mut words =
                Vec::with_capacity(((end - start) as f64 * words_per_symbol) as usize + 16);
            // Metadata is already planned, so no sink; word offsets are
            // rebased by the stitch below, so base 0 per segment.
            encode_span(
                provider,
                &data[start..end],
                bounds[m],
                &mut states,
                &mut words,
                0,
                &mut NullSink,
            )?;
            Ok(words)
        })();
        *slots[m].lock() = Some(result);
    });

    // Stitch in segment order. Word ranges are disjoint and contiguous by
    // construction; the count check makes a stitching bug loud instead of a
    // silent corruption.
    let mut words: Vec<u16> = Vec::with_capacity(plan.total_words as usize);
    for slot in slots {
        let segment = slot.into_inner().expect("pool ran every task")?;
        words.extend_from_slice(&segment);
    }
    assert_eq!(
        words.len() as u64,
        plan.total_words,
        "parallel stitch disagrees with the plan pass"
    );

    let stream = EncodedStream {
        words,
        final_states: plan.final_states,
        num_symbols: data.len() as u64,
        ways,
    };
    Ok(RecoilContainer {
        stream,
        metadata: plan.metadata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::{CdfTable, StaticModelProvider};

    fn sample(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 22) as u8)
            .collect()
    }

    /// Pooled encode is byte-identical to serial across segment counts and
    /// boundary shapes, including checkpoint-straddling bounds.
    #[test]
    fn pooled_matches_serial_bytes_and_metadata() {
        let data = sample(300_000, 1);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let pool = ThreadPool::new(3);
        for segments in [2u64, 7, 64] {
            let cfg = PlannerConfig::with_segments(segments);
            let serial = encode_container(&data, &p, 32, cfg.clone()).unwrap();
            let pooled = encode_container_pooled(&data, &p, 32, cfg, &pool).unwrap();
            assert_eq!(pooled.stream, serial.stream, "segments={segments}");
            assert_eq!(pooled.metadata, serial.metadata, "segments={segments}");
        }
    }

    /// The serial fallbacks (tiny input, single segment, single thread) are
    /// also identical — there is exactly one byte encoding per input.
    #[test]
    fn fallback_paths_stay_identical() {
        let pool1 = ThreadPool::new(0);
        let pool4 = ThreadPool::new(3);
        for (len, segments) in [(1_000usize, 8u64), (300_000, 1)] {
            let data = sample(len, 9);
            let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
            let cfg = PlannerConfig::with_segments(segments);
            let serial = encode_container(&data, &p, 32, cfg.clone()).unwrap();
            for pool in [&pool1, &pool4] {
                let pooled = encode_container_pooled(&data, &p, 32, cfg.clone(), pool).unwrap();
                assert_eq!(
                    pooled.stream, serial.stream,
                    "len={len} segments={segments}"
                );
                assert_eq!(pooled.metadata, serial.metadata);
            }
        }
    }

    /// A zero-frequency symbol surfaces as the typed error from the pooled
    /// path too (whichever pass hits it first).
    #[test]
    fn pooled_propagates_zero_frequency() {
        let mut data: Vec<u8> = sample(200_000, 3).iter().map(|&b| b % 100).collect();
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        data[150_000] = 200; // absent from the model
        let pool = ThreadPool::new(3);
        let err = encode_container_pooled(&data, &p, 32, PlannerConfig::with_segments(8), &pool)
            .unwrap_err();
        assert!(
            matches!(err, RansError::ZeroFrequency { sym: 200, .. }),
            "{err:?}"
        );
    }
}
