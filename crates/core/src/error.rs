//! The workspace-wide error type.
//!
//! Every fallible operation on the public Recoil surface — codec
//! configuration, encoding, wire parsing, backend selection, content
//! serving — reports a [`RecoilError`]. Decode-layer failures from the rANS
//! substrate ([`RansError`]) are wrapped rather than re-modelled, so callers
//! can still match on the precise low-level cause when they need it.

use recoil_rans::RansError;
use std::fmt;

/// Unified error for the Recoil public API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoilError {
    /// A decode-layer failure (bitstream underflow, malformed stream or
    /// metadata) surfaced from the rANS substrate.
    Decode(RansError),
    /// An encode was asked to code a symbol the model assigns zero
    /// probability mass — e.g. a byte outside the alphabet a caller-supplied
    /// model was built from. (Models the codec builds itself always cover
    /// the data.)
    UnsupportedSymbol {
        /// 0-based position of the unencodable symbol in the input.
        pos: u64,
        /// The symbol value itself.
        sym: u16,
    },
    /// Serialized bytes (metadata wire format, container files) failed to
    /// parse: truncated, corrupt, or version-incompatible input.
    Wire {
        /// What failed to parse.
        detail: String,
    },
    /// A configuration value was rejected at validation time.
    InvalidConfig {
        /// The offending field, e.g. `"ways"`.
        field: &'static str,
        /// Why the value is invalid.
        detail: String,
    },
    /// The requested decode backend cannot run on this host.
    BackendUnavailable {
        /// Backend name, e.g. `"avx512"`.
        backend: &'static str,
    },
    /// Content was published under a name that is already taken.
    AlreadyPublished {
        /// The conflicting content name.
        name: String,
    },
    /// A request referenced content that was never published.
    NotFound {
        /// The unknown content name.
        name: String,
    },
    /// A transport-layer failure: socket I/O, protocol violations, version
    /// mismatches, or a remote error that has no richer local
    /// reconstruction.
    Net {
        /// What went wrong on the connection.
        detail: String,
    },
    /// The server shed the request because it was at capacity — connection
    /// slots exhausted or the dispatch queue full. Unlike [`RecoilError::Net`]
    /// this is a *typed* overload signal: the request was never started, so
    /// retrying (after the hint) is always safe, even for non-idempotent
    /// operations.
    Busy {
        /// Server-suggested backoff before retrying, in milliseconds.
        retry_after_ms: u32,
    },
}

impl RecoilError {
    /// Convenience constructor for wire/parse failures.
    pub fn wire(detail: impl Into<String>) -> Self {
        Self::Wire {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for config validation failures.
    pub fn config(field: &'static str, detail: impl Into<String>) -> Self {
        Self::InvalidConfig {
            field,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for transport failures.
    pub fn net(detail: impl Into<String>) -> Self {
        Self::Net {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for overload shedding.
    pub fn busy(retry_after_ms: u32) -> Self {
        Self::Busy { retry_after_ms }
    }
}

impl fmt::Display for RecoilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Decode(e) => write!(f, "decode failed: {e}"),
            Self::UnsupportedSymbol { pos, sym } => {
                write!(
                    f,
                    "encode failed: symbol {sym} at position {pos} is outside \
                     the model's support"
                )
            }
            Self::Wire { detail } => write!(f, "wire parse failed: {detail}"),
            Self::InvalidConfig { field, detail } => {
                write!(f, "invalid codec config: {field}: {detail}")
            }
            Self::BackendUnavailable { backend } => {
                write!(f, "decode backend `{backend}` is unavailable on this host")
            }
            Self::AlreadyPublished { name } => {
                write!(f, "content `{name}` is already published")
            }
            Self::NotFound { name } => write!(f, "content `{name}` is not published"),
            Self::Net { detail } => write!(f, "transport failed: {detail}"),
            Self::Busy { retry_after_ms } => {
                write!(f, "server busy: retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for RecoilError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RansError> for RecoilError {
    fn from(e: RansError) -> Self {
        match e {
            // The one encode-side failure gets its own surface variant; the
            // rANS name talks about quantized frequencies, which is substrate
            // vocabulary callers shouldn't need.
            RansError::ZeroFrequency { pos, sym } => Self::UnsupportedSymbol { pos, sym },
            e => Self::Decode(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = RecoilError::from(RansError::BitstreamUnderflow { pos: 7 });
        assert!(e.to_string().contains("position 7"));
        assert!(RecoilError::wire("bad magic")
            .to_string()
            .contains("bad magic"));
        let c = RecoilError::config("ways", "must be >= 1");
        assert!(c.to_string().contains("ways"));
        assert!(RecoilError::net("connection reset")
            .to_string()
            .contains("connection reset"));
        assert!(RecoilError::BackendUnavailable { backend: "avx512" }
            .to_string()
            .contains("avx512"));
        assert!(RecoilError::busy(25).to_string().contains("25 ms"));
    }

    #[test]
    fn decode_source_is_preserved() {
        use std::error::Error;
        let e = RecoilError::from(RansError::MalformedStream("x".into()));
        assert!(e.source().is_some());
        assert_eq!(
            e,
            RecoilError::Decode(RansError::MalformedStream("x".into()))
        );
    }
}
