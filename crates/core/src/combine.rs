//! Decoder-adaptive split combining (paper §3.3, §4.2).
//!
//! "Combining splits is trivial, since it only requires removing the
//! metadata in a way that combines the splits into bigger ones with close
//! symbol counts." The bitstream is untouched; the server runs this in real
//! time per client request. With `K + 1` original segments and `M` requested,
//! we keep the split point nearest each fraction `i/M` of the original
//! segmentation — the paper's "every other ceil(N/M)" selection, robust to
//! non-divisible counts.

use crate::error::RecoilError;
use crate::metadata::RecoilMetadata;

/// Returns metadata scaled down to at most `segments` parallel segments,
/// rejecting malformed requests instead of panicking.
///
/// Dropping entries only merges neighbouring segments, so all decoder
/// invariants are preserved; requesting more segments than available returns
/// the metadata unchanged. This is the entry point for request-reachable
/// paths (the content server calls it with client-supplied capacities):
///
/// * `segments == 0` is reported as [`RecoilError::InvalidConfig`];
/// * the combined metadata is re-validated **in every build profile** (the
///   panicking wrapper only `debug_assert!`ed it), so corrupt input
///   metadata surfaces as [`RecoilError::Decode`] rather than as undefined
///   decoder behaviour downstream.
pub fn try_combine_splits(
    meta: &RecoilMetadata,
    segments: u64,
) -> Result<RecoilMetadata, RecoilError> {
    if segments == 0 {
        return Err(RecoilError::config(
            "segments",
            "cannot combine splits down to zero segments",
        ));
    }
    let available = meta.num_segments();
    if segments >= available {
        let same = meta.clone();
        same.validate()?;
        return Ok(same);
    }
    let k = meta.splits.len() as u64;
    let mut keep = Vec::with_capacity((segments - 1) as usize);
    let mut last: Option<u64> = None;
    for i in 1..segments {
        // Original cut index nearest the i/segments fraction: cut j sits
        // after original segment j, so cut indices run 0..K.
        let j = (i * (k + 1)) / segments;
        let j = j.clamp(1, k) - 1;
        if last != Some(j) {
            keep.push(j as usize);
            last = Some(j);
        }
    }
    let splits = keep.iter().map(|&j| meta.splits[j].clone()).collect();
    let combined = RecoilMetadata {
        splits,
        ..meta.clone()
    };
    combined.validate()?;
    Ok(combined)
}

/// Returns metadata scaled down to at most `segments` parallel segments.
///
/// Thin wrapper over [`try_combine_splits`] for callers that control their
/// inputs (benches, examples, tests).
///
/// # Panics
///
/// If `segments == 0` or `meta` violates a decoder invariant. Paths fed by
/// untrusted requests should call [`try_combine_splits`] instead.
pub fn combine_splits(meta: &RecoilMetadata, segments: u64) -> RecoilMetadata {
    match try_combine_splits(meta, segments) {
        Ok(combined) => combined,
        Err(e) => panic!("combine_splits: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{LaneInit, SplitPoint};

    fn synthetic_meta(interior: u64, ways: u32) -> RecoilMetadata {
        // Evenly spaced valid splits: split i at position (i+1)*G*W - 1 .. etc.
        let group_span = 100u64;
        let splits = (0..interior)
            .map(|i| {
                let base_group = (i + 1) * group_span;
                SplitPoint {
                    offset: (i + 1) * 500,
                    lanes: (0..ways as u64)
                        .map(|l| LaneInit {
                            state: (i * 31 + l) as u16,
                            pos: (base_group - (l % 2)) * ways as u64 + l,
                        })
                        .collect(),
                }
            })
            .collect();
        let meta = RecoilMetadata {
            ways,
            quant_bits: 11,
            num_symbols: (interior + 2) * group_span * ways as u64,
            num_words: (interior + 2) * 500,
            splits,
        };
        meta.validate().unwrap();
        meta
    }

    #[test]
    fn combine_to_fewer_segments_picks_even_subset() {
        let meta = synthetic_meta(135, 32); // 136 segments, like 2176/16
        let small = combine_splits(&meta, 16);
        assert_eq!(small.num_segments(), 16);
        small.validate().unwrap();
        // Kept points must be original points, order preserved.
        let mut iter = meta.splits.iter();
        for s in &small.splits {
            assert!(iter.any(|orig| orig == s), "combined split not a subset");
        }
    }

    #[test]
    fn combine_is_subset_selection_only() {
        let meta = synthetic_meta(63, 8);
        let small = combine_splits(&meta, 4);
        for s in &small.splits {
            assert!(meta.splits.contains(s));
        }
        assert_eq!(small.num_symbols, meta.num_symbols);
        assert_eq!(small.num_words, meta.num_words);
        assert_eq!(small.ways, meta.ways);
    }

    #[test]
    fn requesting_more_segments_is_identity() {
        let meta = synthetic_meta(7, 4);
        let same = combine_splits(&meta, 100);
        assert_eq!(same, meta);
    }

    #[test]
    fn combine_to_one_drops_everything() {
        let meta = synthetic_meta(31, 4);
        let one = combine_splits(&meta, 1);
        assert!(one.splits.is_empty());
        assert_eq!(one.num_segments(), 1);
    }

    #[test]
    fn combine_is_idempotent_per_target() {
        let meta = synthetic_meta(99, 8);
        let a = combine_splits(&meta, 10);
        let b = combine_splits(&a, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn nested_combine_matches_direct_when_divisible() {
        // 64 segments → 16 → 4 must equal 64 → 4 when counts divide evenly.
        let meta = synthetic_meta(63, 8);
        let via16 = combine_splits(&combine_splits(&meta, 16), 4);
        let direct = combine_splits(&meta, 4);
        assert_eq!(via16, direct);
    }

    #[test]
    fn zero_segments_is_config_error_not_panic() {
        let meta = synthetic_meta(7, 4);
        assert!(matches!(
            try_combine_splits(&meta, 0),
            Err(RecoilError::InvalidConfig {
                field: "segments",
                ..
            })
        ));
    }

    #[test]
    fn one_segment_and_overshoot_succeed_fallibly() {
        let meta = synthetic_meta(31, 4);
        let one = try_combine_splits(&meta, 1).unwrap();
        assert_eq!(one.num_segments(), 1);
        assert!(one.splits.is_empty());
        // More segments than available: identity, not an error.
        let same = try_combine_splits(&meta, 10_000).unwrap();
        assert_eq!(same, meta);
    }

    #[test]
    fn corrupt_metadata_is_decode_error_in_release_too() {
        // The panicking wrapper only debug_assert!ed validity; the fallible
        // path must reject corrupt input in every build profile.
        let mut meta = synthetic_meta(15, 4);
        meta.splits[3].lanes[0].pos = 1; // sync start crosses earlier splits
        assert!(matches!(
            try_combine_splits(&meta, 8),
            Err(RecoilError::Decode(_))
        ));
        // Identity requests validate too.
        assert!(matches!(
            try_combine_splits(&meta, 10_000),
            Err(RecoilError::Decode(_))
        ));
    }

    #[test]
    fn non_divisible_targets_stay_close_to_even() {
        let meta = synthetic_meta(99, 8); // 100 segments → 7
        let c = combine_splits(&meta, 7);
        assert_eq!(c.num_segments(), 7);
        let bounds = c.segment_bounds();
        let spans: Vec<u64> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
        let avg = meta.num_symbols / 7;
        for s in spans {
            assert!(s as f64 > avg as f64 * 0.5 && (s as f64) < avg as f64 * 1.6);
        }
    }
}
