//! One-call encode API and the stream+metadata container.

use crate::metadata::RecoilMetadata;
use crate::planner::PlannerConfig;
use crate::wire::metadata_to_bytes;
use recoil_models::{ModelProvider, Symbol};
use recoil_rans::EncodedStream;

/// An encoded bitstream together with its (independent) Recoil metadata.
///
/// The server keeps the Large-variation container and derives per-client
/// metadata with [`crate::combine_splits`]; the bitstream bytes never change.
#[derive(Debug, Clone)]
pub struct RecoilContainer {
    /// The interleaved rANS bitstream (+ final states).
    pub stream: EncodedStream,
    /// Split metadata enabling parallel decoding.
    pub metadata: RecoilMetadata,
}

impl RecoilContainer {
    /// Bytes of the bitstream payload alone — the paper's variation (a)
    /// baseline size.
    pub fn stream_bytes(&self) -> u64 {
        self.stream.payload_bytes()
    }

    /// Serialized metadata size in bytes — the Recoil overhead the size
    /// tables report relative to variation (a).
    pub fn metadata_bytes(&self) -> u64 {
        metadata_to_bytes(&self.metadata).len() as u64
    }

    /// Total transfer size: payload + metadata.
    pub fn total_bytes(&self) -> u64 {
        self.stream_bytes() + self.metadata_bytes()
    }
}

/// Encodes `data` with `ways` interleaved lanes while planning split
/// metadata for `segments` parallel decoders.
#[deprecated(
    since = "0.1.0",
    note = "use `recoil_core::codec::Codec::builder()` — e.g. \
            `Codec::builder().ways(32).max_segments(64).build()?.encode_with_provider(data, provider)`"
)]
pub fn encode_with_splits<S: Symbol, P: ModelProvider>(
    data: &[S],
    provider: &P,
    ways: u32,
    segments: u64,
) -> RecoilContainer {
    // The pre-codec signature is infallible; symbols outside the model's
    // support used to die on a divide-by-zero in release builds, so the
    // typed error surfacing as a panic message here is strictly an upgrade.
    crate::encoder::encode_container(data, provider, ways, PlannerConfig::with_segments(segments))
        .expect("symbol outside the model's support")
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shims must keep working; tests exercise them

    use super::*;
    use crate::decoder::decode_recoil;
    use recoil_models::{CdfTable, StaticModelProvider};

    #[test]
    fn one_call_encode_decodes_back() {
        let data: Vec<u8> = (0..150_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 22) as u8)
            .collect();
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let c = encode_with_splits(&data, &p, 32, 16);
        assert_eq!(c.metadata.num_segments(), 16);
        let got: Vec<u8> = decode_recoil(&c.stream, &c.metadata, &p, None).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn metadata_bytes_scale_with_segments() {
        let data: Vec<u8> = (0..400_000u32)
            .map(|i| (i.wrapping_mul(747796405) >> 21) as u8)
            .collect();
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let small = encode_with_splits(&data, &p, 32, 8);
        let large = encode_with_splits(&data, &p, 32, 128);
        assert_eq!(
            small.stream_bytes(),
            large.stream_bytes(),
            "bitstream is unchanged"
        );
        assert!(large.metadata_bytes() > small.metadata_bytes() * 8);
        // ~76 bytes per split at W=32 (paper §5.2 ballpark).
        let per_split = large.metadata_bytes() as f64 / 127.0;
        assert!(
            per_split > 60.0 && per_split < 100.0,
            "per-split {per_split}"
        );
    }
}
