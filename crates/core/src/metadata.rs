//! The split metadata model (paper §4.1, Figure 6).
//!
//! One [`SplitPoint`] records everything a decoder thread needs to start at
//! an intermediate position: per interleaved lane, the 16-bit intermediate
//! state taken at that lane's **last renormalization point** before the
//! split, and the symbol position it belongs to; plus the bitstream offset
//! of the split-defining renorm word. Positions are 0-based here (the
//! paper's `s_i` is our position `i - 1`).

use recoil_rans::{EncodedStream, RansError};

/// One lane's recorded intermediate state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneInit {
    /// Post-renormalization state, `< 2^16` by Lemma 3.1.
    pub state: u16,
    /// 0-based position of the last symbol this lane had encoded when the
    /// state was recorded ("Symbol Indices" row of Table 2).
    pub pos: u64,
}

/// A recorded split point: the metadata block of one decoder thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitPoint {
    /// Word offset of the split-defining renorm word ("Bitstream Offset").
    pub offset: u64,
    /// Per-lane intermediate states, indexed by lane `0..ways`.
    pub lanes: Vec<LaneInit>,
}

impl SplitPoint {
    /// The split position `P`: the largest recorded symbol position. The
    /// thread starting here owns symbols up to `P`; the next split's thread
    /// begins at `P + 1`.
    pub fn split_pos(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.pos)
            .max()
            .expect("at least one lane")
    }

    /// The synchronization completion point `Q`: the smallest recorded
    /// position. Symbols `Q ..= P` form the Synchronization Section.
    pub fn sync_start(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.pos)
            .min()
            .expect("at least one lane")
    }

    /// Number of symbols in the Synchronization Section (`t_s` of Def. 4.1).
    pub fn sync_len(&self) -> u64 {
        self.split_pos() - self.sync_start() + 1
    }
}

/// The complete Recoil metadata for one encoded stream.
///
/// Kept separate from the bitstream on purpose: "Recoil does not actually
/// modify the rANS bitstream, but instead works on independent metadata"
/// (§1), which is what makes real-time split combining possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoilMetadata {
    /// Interleave width `W` of the stream this metadata belongs to.
    pub ways: u32,
    /// Quantization level `n` (recorded for container self-description).
    pub quant_bits: u32,
    /// Total symbol count `N` of the stream.
    pub num_symbols: u64,
    /// Total word count `B` of the stream.
    pub num_words: u64,
    /// Interior split points, ascending by [`SplitPoint::split_pos`].
    /// `splits.len() + 1` decoder threads can run in parallel.
    pub splits: Vec<SplitPoint>,
}

impl RecoilMetadata {
    /// Number of independently decodable segments (paper's split count `M`).
    pub fn num_segments(&self) -> u64 {
        self.splits.len() as u64 + 1
    }

    /// Output-range boundaries per decoder thread:
    /// `[0, Q_0, Q_1, .., Q_{K-1}, N]`. Thread `m` produces the symbols in
    /// `bounds[m] .. bounds[m+1]` — its Sync Phase output is discarded and
    /// re-produced by thread `m+1`'s Cross-Boundary Phase (§4.1.3).
    pub fn segment_bounds(&self) -> Vec<u64> {
        let mut b = Vec::with_capacity(self.splits.len() + 2);
        b.push(0);
        for s in &self.splits {
            b.push(s.sync_start());
        }
        b.push(self.num_symbols);
        b
    }

    /// Checks every structural invariant the decoder relies on.
    pub fn validate(&self) -> Result<(), RansError> {
        let fail = |msg: String| Err(RansError::MalformedMetadata(msg));
        if self.ways == 0 {
            return fail("ways must be >= 1".into());
        }
        if self.num_symbols == 0 && !self.splits.is_empty() {
            return fail("splits recorded for an empty stream".into());
        }
        let mut prev_p: Option<u64> = None;
        let mut prev_off: Option<u64> = None;
        for (k, s) in self.splits.iter().enumerate() {
            if s.lanes.len() != self.ways as usize {
                return fail(format!(
                    "split {k}: {} lane entries for {} ways",
                    s.lanes.len(),
                    self.ways
                ));
            }
            for (lane, li) in s.lanes.iter().enumerate() {
                if li.pos % self.ways as u64 != lane as u64 {
                    return fail(format!(
                        "split {k}: lane {lane} records position {} owned by lane {}",
                        li.pos,
                        li.pos % self.ways as u64
                    ));
                }
            }
            let p = s.split_pos();
            let q = s.sync_start();
            if p + 1 >= self.num_symbols {
                return fail(format!(
                    "split {k}: split position {p} leaves no symbols for the final thread"
                ));
            }
            if s.offset >= self.num_words {
                return fail(format!(
                    "split {k}: offset {} beyond stream of {} words",
                    s.offset, self.num_words
                ));
            }
            if let Some(pp) = prev_p {
                // The sync section must not cross the previous split point,
                // or two threads' output ranges would overlap.
                if q <= pp {
                    return fail(format!(
                        "split {k}: sync start {q} crosses previous split position {pp}"
                    ));
                }
            }
            if let Some(po) = prev_off {
                if s.offset <= po {
                    return fail(format!("split {k}: offsets not strictly ascending"));
                }
            }
            prev_p = Some(p);
            prev_off = Some(s.offset);
        }
        Ok(())
    }

    /// Validates against the stream this metadata claims to describe.
    pub fn validate_against(&self, stream: &EncodedStream) -> Result<(), RansError> {
        self.validate()?;
        if stream.ways != self.ways
            || stream.num_symbols != self.num_symbols
            || stream.words.len() as u64 != self.num_words
        {
            return Err(RansError::MalformedMetadata(format!(
                "metadata (W={}, N={}, B={}) does not describe stream (W={}, N={}, B={})",
                self.ways,
                self.num_symbols,
                self.num_words,
                stream.ways,
                stream.num_symbols,
                stream.words.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 6 split in 0-based coordinates: W = 4,
    /// states x_{9,1}, x_{14,2}, x_{11,3}, x_{16,4} → positions 8, 13, 10, 15.
    pub(crate) fn figure6_split() -> SplitPoint {
        SplitPoint {
            offset: 6,
            lanes: vec![
                LaneInit {
                    state: 0x1111,
                    pos: 8,
                },
                LaneInit {
                    state: 0x2222,
                    pos: 13,
                },
                LaneInit {
                    state: 0x3333,
                    pos: 10,
                },
                LaneInit {
                    state: 0x4444,
                    pos: 15,
                },
            ],
        }
    }

    fn figure6_meta() -> RecoilMetadata {
        RecoilMetadata {
            ways: 4,
            quant_bits: 11,
            num_symbols: 20,
            num_words: 9,
            splits: vec![figure6_split()],
        }
    }

    #[test]
    fn figure6_split_geometry() {
        let s = figure6_split();
        assert_eq!(s.split_pos(), 15); // s_16 in the paper's 1-based indexing
        assert_eq!(s.sync_start(), 8); // s_9
        assert_eq!(s.sync_len(), 8); // sync section s_9 ..= s_16
    }

    #[test]
    fn segment_bounds_cover_stream() {
        let m = figure6_meta();
        assert_eq!(m.segment_bounds(), vec![0, 8, 20]);
        assert_eq!(m.num_segments(), 2);
    }

    #[test]
    fn valid_metadata_passes() {
        figure6_meta().validate().unwrap();
    }

    #[test]
    fn lane_position_parity_checked() {
        let mut m = figure6_meta();
        m.splits[0].lanes[1].pos = 14; // lane 1 cannot own position 14
        assert!(m.validate().is_err());
    }

    #[test]
    fn split_too_close_to_end_rejected() {
        let mut m = figure6_meta();
        m.num_symbols = 16; // split_pos 15 == N-1: final thread empty
        assert!(m.validate().is_err());
    }

    #[test]
    fn sync_crossing_previous_split_rejected() {
        let mut m = figure6_meta();
        let mut second = figure6_split();
        // Second split at P=19, but with a lane reaching back to pos 9 <= 15.
        second.offset = 8;
        second.lanes = vec![
            LaneInit { state: 1, pos: 16 },
            LaneInit { state: 2, pos: 17 },
            LaneInit { state: 3, pos: 18 },
            LaneInit { state: 4, pos: 19 },
        ];
        m.num_symbols = 25;
        m.splits.push(second.clone());
        m.validate().unwrap(); // fine: q = 16 > 15

        m.splits[1].lanes[0].pos = 12; // q = 12 <= 15: crossing
        assert!(m.validate().is_err());
    }

    #[test]
    fn offsets_must_ascend() {
        let mut m = figure6_meta();
        let mut second = figure6_split();
        second.offset = 6; // duplicate offset
        second.lanes.iter_mut().for_each(|l| l.pos += 8);
        m.num_symbols = 30;
        m.splits.push(second);
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_against_checks_stream_shape() {
        let m = figure6_meta();
        let stream = EncodedStream {
            words: vec![0; 9],
            final_states: vec![recoil_rans::params::INITIAL_STATE; 4],
            num_symbols: 20,
            ways: 4,
        };
        m.validate_against(&stream).unwrap();
        let mut wrong = stream.clone();
        wrong.num_symbols = 21;
        assert!(m.validate_against(&wrong).is_err());
    }
}
