//! A complete self-describing file format: bitstream + final states +
//! quantized model + Recoil metadata in one byte buffer.
//!
//! The paper transmits the model out of band (it is identical across all
//! variations, so the size tables exclude it); real deployments need it on
//! disk. Layout (little-endian):
//!
//! ```text
//! magic "RCLF" | u8 version | u8 n | u16 ways | u32 alphabet
//! u64 num_symbols | u64 num_words
//! alphabet × u16   quantized frequencies (sum 2^n; n = 16 stores f - 1
//!                  never occurs because f <= 2^n - 1 always fits)
//! ways × u32       final states
//! num_words × u16  bitstream words
//! u32 metadata_len | metadata bytes (§4.3 format)
//! u32 crc32        little-endian CRC-32 of every preceding byte (v2+)
//! ```
//!
//! Version 2 appends the CRC-32 footer; the parser checks it before
//! interpreting any field, so corrupt files fail as [`RecoilError::Wire`]
//! instead of decoding garbage. Version 1 files (no footer) still parse.

use crate::crc::crc32;
use crate::error::RecoilError;
use crate::metadata::RecoilMetadata;
use crate::wire::{metadata_from_bytes, metadata_to_bytes};
use crate::RecoilContainer;
use recoil_models::{CdfTable, StaticModelProvider};
use recoil_rans::EncodedStream;

const MAGIC: &[u8; 4] = b"RCLF";
/// Current format: CRC-32 footer after the metadata section.
const VERSION: u8 = 2;
/// First format: identical layout, no integrity footer.
const LEGACY_VERSION: u8 = 1;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RecoilError> {
        let s = self
            .at
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.at..end))
            .ok_or_else(|| RecoilError::wire("truncated file"))?;
        self.at += n;
        Ok(s)
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N], RecoilError> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N)?);
        Ok(a)
    }
    fn u8(&mut self) -> Result<u8, RecoilError> {
        let [b] = self.array()?;
        Ok(b)
    }
    fn u16(&mut self) -> Result<u16, RecoilError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, RecoilError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, RecoilError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
}

/// Serializes a container plus its static model into one byte buffer.
pub fn container_to_bytes(container: &RecoilContainer, model: &CdfTable) -> Vec<u8> {
    let stream = &container.stream;
    // xtask: allow(wire-capacity): encode path — sized from the in-memory stream, not the wire.
    let mut out = Vec::with_capacity(stream.words.len() * 2 + 1024);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    debug_assert!(model.quant_bits() <= 16 && stream.ways <= u32::from(u16::MAX));
    // xtask: allow(wire-cast): encode path — the quantizer caps n at 16.
    out.push(model.quant_bits() as u8);
    // xtask: allow(wire-cast): encode path — lane counts are configuration, far below u16::MAX.
    put_u16(&mut out, stream.ways as u16);
    // xtask: allow(wire-cast): encode path — CdfTable caps the alphabet at 2^16 symbols.
    put_u32(&mut out, model.alphabet_size() as u32);
    put_u64(&mut out, stream.num_symbols);
    put_u64(&mut out, stream.words.len() as u64);
    for s in 0..model.alphabet_size() {
        // f <= 2^n - 1 <= 65535 always fits a u16 (quantizer invariant).
        // xtask: allow(wire-cast): see the quantizer invariant above.
        put_u16(&mut out, model.freq(s) as u16);
    }
    for &st in &stream.final_states {
        put_u32(&mut out, st);
    }
    for &w in &stream.words {
        put_u16(&mut out, w);
    }
    let meta = metadata_to_bytes(&container.metadata);
    debug_assert!(u32::try_from(meta.len()).is_ok());
    // xtask: allow(wire-cast): encode path — metadata is built in-process and is tiny.
    put_u32(&mut out, meta.len() as u32);
    out.extend_from_slice(&meta);
    let footer = crc32(&out);
    put_u32(&mut out, footer);
    out
}

/// Parses a file produced by [`container_to_bytes`], rebuilding the decode
/// tables.
pub fn container_from_bytes(
    bytes: &[u8],
) -> Result<(RecoilContainer, StaticModelProvider), RecoilError> {
    let mut c = Cursor { bytes, at: 0 };
    if c.take(4)? != MAGIC {
        return Err(RecoilError::wire("bad magic"));
    }
    let bytes = match c.u8()? {
        LEGACY_VERSION => bytes,
        VERSION => {
            // Verify the integrity footer before interpreting any field.
            if bytes.len() < 5 + 4 {
                return Err(RecoilError::wire("truncated file"));
            }
            let (body, footer) = bytes.split_at(bytes.len() - 4);
            let footer: [u8; 4] = footer
                .try_into()
                .map_err(|_| RecoilError::wire("truncated file"))?;
            let expected = u32::from_le_bytes(footer);
            if crc32(body) != expected {
                return Err(RecoilError::wire("file checksum mismatch"));
            }
            body
        }
        _ => return Err(RecoilError::wire("unsupported version")),
    };
    let mut c = Cursor { bytes, at: 5 };
    let n = u32::from(c.u8()?);
    if !(1..=16).contains(&n) {
        return Err(RecoilError::wire(format!("bad quantization level {n}")));
    }
    let ways = u32::from(c.u16()?);
    let alphabet = usize::try_from(c.u32()?)
        .map_err(|_| RecoilError::wire("alphabet size exceeds the address space"))?;
    if alphabet == 0 || alphabet > 1 << 16 {
        return Err(RecoilError::wire(format!("bad alphabet size {alphabet}")));
    }
    let num_symbols = c.u64()?;
    let num_words = usize::try_from(c.u64()?)
        .map_err(|_| RecoilError::wire("word count exceeds the address space"))?;

    // Information-capacity sanity bound: every encoded symbol multiplies a
    // lane state by at least 2^n / (2^n - 1), and all of that growth must
    // fit in the renorm words plus the 16 bits of per-lane state headroom
    // (states start at 2^16 and end below 2^32). A header whose symbol
    // count exceeds this is hostile or corrupt — rejecting it here keeps
    // the decode-side output allocation proportional to the file size.
    let min_bits_per_symbol = ((1u64 << n) as f64).log2() - ((1u64 << n) as f64 - 1.0).log2();
    let capacity_bits = 16.0 * (num_words as f64 + ways as f64);
    if num_symbols as f64 * min_bits_per_symbol > capacity_bits * 1.001 + 64.0 {
        return Err(RecoilError::wire(format!(
            "symbol count {num_symbols} impossible for {num_words} words over {ways} lanes"
        )));
    }

    // xtask: allow(wire-capacity): bounded to 2^16 entries (256 KiB) by the check above.
    let mut freqs = Vec::with_capacity(alphabet);
    for _ in 0..alphabet {
        freqs.push(u32::from(c.u16()?));
    }
    let sum: u64 = freqs.iter().map(|&f| f as u64).sum();
    if sum != 1 << n {
        return Err(RecoilError::wire(format!(
            "model frequencies sum to {sum}, expected 2^{n}"
        )));
    }
    if freqs.iter().any(|&f| (f as u64) >= (1u64 << n)) {
        return Err(RecoilError::wire("model frequency reaches 2^n".to_string()));
    }
    let table = CdfTable::from_freqs(freqs, n);

    let lanes = usize::try_from(ways)
        .map_err(|_| RecoilError::wire("lane count exceeds the address space"))?;
    // xtask: allow(wire-capacity): `ways` was read as a u16 above, so this caps at 256 KiB.
    let mut final_states = Vec::with_capacity(lanes);
    for _ in 0..ways {
        final_states.push(c.u32()?);
    }
    let word_bytes = c.take(
        num_words
            .checked_mul(2)
            .ok_or_else(|| RecoilError::wire("word count overflows"))?,
    )?;
    let words: Vec<u16> = word_bytes
        .chunks_exact(2)
        .map(|b| {
            let mut w = [0u8; 2];
            w.copy_from_slice(b);
            u16::from_le_bytes(w)
        })
        .collect();

    let meta_len = usize::try_from(c.u32()?)
        .map_err(|_| RecoilError::wire("metadata length exceeds the address space"))?;
    let metadata: RecoilMetadata = metadata_from_bytes(c.take(meta_len)?)?;

    let stream = EncodedStream {
        words,
        final_states,
        num_symbols,
        ways,
    };
    stream
        .validate()
        .map_err(|e| RecoilError::wire(format!("parsed stream is inconsistent: {e}")))?;
    metadata
        .validate_against(&stream)
        .map_err(|e| RecoilError::wire(format!("parsed metadata is inconsistent: {e}")))?;
    Ok((
        RecoilContainer { stream, metadata },
        StaticModelProvider::new(table),
    ))
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shims must keep working; tests exercise them

    use super::*;
    use crate::container::encode_with_splits;
    use crate::decoder::decode_recoil;

    fn sample(len: usize) -> Vec<u8> {
        (0..len as u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 23) as u8)
            .collect()
    }

    /// Recomputes the v2 CRC footer after a test deliberately corrupts the
    /// body — so the structural check under test fires, not the checksum.
    fn patch_crc(bytes: &mut [u8]) {
        let at = bytes.len() - 4;
        let footer = crc32(&bytes[..at]);
        bytes[at..].copy_from_slice(&footer.to_le_bytes());
    }

    #[test]
    fn file_round_trip_and_decode() {
        let data = sample(120_000);
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let container = encode_with_splits(&data, &model, 32, 24);
        let bytes = container_to_bytes(&container, model.table());
        let (back, model2) = container_from_bytes(&bytes).unwrap();
        assert_eq!(back.stream, container.stream);
        assert_eq!(back.metadata, container.metadata);
        let decoded: Vec<u8> = decode_recoil(&back.stream, &back.metadata, &model2, None).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn n16_frequencies_fit_u16() {
        let data = sample(50_000);
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 16));
        let container = encode_with_splits(&data, &model, 32, 8);
        let bytes = container_to_bytes(&container, model.table());
        let (_, model2) = container_from_bytes(&bytes).unwrap();
        assert_eq!(model2.table(), model.table());
    }

    #[test]
    fn hostile_symbol_count_rejected_without_allocation() {
        let data = sample(10_000);
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let container = encode_with_splits(&data, &model, 32, 4);
        let mut bytes = container_to_bytes(&container, model.table());
        // num_symbols lives at offset 12..20 of the header.
        bytes[12..20].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        patch_crc(&mut bytes);
        let err = match container_from_bytes(&bytes) {
            Err(e) => e,
            Ok(_) => panic!("absurd symbol count must be rejected"),
        };
        assert!(err.to_string().contains("impossible"), "{err}");
    }

    #[test]
    fn truncations_error_cleanly() {
        let data = sample(5_000);
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 10));
        let container = encode_with_splits(&data, &model, 32, 4);
        let bytes = container_to_bytes(&container, model.table());
        for cut in [0, 3, 7, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(container_from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupt_magic_and_model_rejected() {
        let data = sample(5_000);
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 10));
        let container = encode_with_splits(&data, &model, 32, 4);
        let mut bytes = container_to_bytes(&container, model.table());
        bytes[0] ^= 1;
        assert!(container_from_bytes(&bytes).is_err());
        bytes[0] ^= 1;
        // Break a model frequency without fixing the CRC: the checksum
        // rejects the file before the model is even read.
        bytes[28] ^= 0xFF;
        let err = container_from_bytes(&bytes).expect_err("corruption undetected");
        assert!(err.to_string().contains("checksum"), "{err}");
        // With a freshly patched CRC the structural sum check fires instead.
        patch_crc(&mut bytes);
        let err = container_from_bytes(&bytes).expect_err("bad model accepted");
        assert!(err.to_string().contains("sum"), "{err}");
    }

    #[test]
    fn legacy_version1_files_still_parse() {
        let data = sample(20_000);
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let container = encode_with_splits(&data, &model, 32, 8);
        let mut bytes = container_to_bytes(&container, model.table());
        // A v1 file is the same layout minus the footer, tagged version 1.
        bytes.truncate(bytes.len() - 4);
        bytes[4] = 1;
        let (back, _) = container_from_bytes(&bytes).unwrap();
        assert_eq!(back.stream, container.stream);
        assert_eq!(back.metadata, container.metadata);
    }
}
