//! Split-point planning (paper §4.1 backward scan + §4.2 heuristic).
//!
//! The planner listens to the encoder's renormalization events. Around every
//! workload target (`T = ceil(N / M)` symbols past the previous split) it
//! evaluates nearby renorm events as split candidates: a **backward scan**
//! over recent events finds each lane's last renormalization at-or-before
//! the candidate, giving the Synchronization Section; Definition 4.1's
//! heuristic `H(t, t_s) = |t - T| + |t - t_s - T|` then picks the candidate
//! balancing the workload both including and excluding the sync section.
//!
//! Because every u16 word corresponds to exactly one renorm event
//! (`b >= n`), events arrive in strictly increasing symbol position, so a
//! bounded ring of recent events suffices — no full event log is kept even
//! for gigabyte streams.

use crate::error::RecoilError;
use crate::metadata::{LaneInit, RecoilMetadata, SplitPoint};
use recoil_rans::{RansError, RenormEvent, RenormSink, NO_SYMBOL};
use std::collections::VecDeque;
use std::ops::Range;

/// Candidate-scoring strategy (for the ablation study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Heuristic {
    /// Definition 4.1: `H(t, t_s) = |t - T| + |t - t_s - T|` — balances the
    /// workload both including and excluding the Synchronization Section.
    #[default]
    SyncAware,
    /// Naive: nearest renorm point to the target, ignoring sync length
    /// (`H = |t - T|`). Used to quantify what Def. 4.1 buys.
    NearestOnly,
}

/// Tuning knobs for the planner.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Desired number of parallel segments `M` (the paper's split count).
    pub segments: u64,
    /// Events kept for backward scans; bounds planner memory.
    pub ring_capacity: usize,
    /// Max candidates scored per target.
    pub max_candidates: usize,
    /// Scoring strategy.
    pub heuristic: Heuristic,
}

impl PlannerConfig {
    /// Config for `segments` parallel segments with defaults otherwise.
    ///
    /// 24 scored candidates per target keeps planning under ~15% of encode
    /// time at 2176 splits while matching the balance of denser search
    /// (the ablation harness compares); raise `max_candidates` to trade
    /// encode time for marginally tighter workload balance.
    pub fn with_segments(segments: u64) -> Self {
        Self {
            segments,
            ring_capacity: 1 << 16,
            max_candidates: 24,
            heuristic: Heuristic::SyncAware,
        }
    }

    /// Same, with the naive scoring strategy (ablation).
    pub fn with_segments_naive(segments: u64) -> Self {
        Self {
            heuristic: Heuristic::NearestOnly,
            ..Self::with_segments(segments)
        }
    }
}

/// Streaming split planner; plug into the encoder as its [`RenormSink`].
pub struct SplitPlanner {
    ways: u32,
    num_symbols: u64,
    target: u64,
    max_interior: u64,
    ring: VecDeque<RenormEvent>,
    ring_capacity: usize,
    max_candidates: usize,
    heuristic: Heuristic,
    /// Position of the last committed split (`-1` before the first).
    prev_p: i64,
    /// Next workload target position.
    next_target: u64,
    chosen: Vec<SplitPoint>,
}

impl SplitPlanner {
    /// Planner for a stream of `num_symbols` symbols over `ways` lanes.
    pub fn new(ways: u32, num_symbols: u64, config: PlannerConfig) -> Self {
        assert!(ways >= 1);
        assert!(config.segments >= 1);
        let segments = config.segments.min(num_symbols.max(1));
        let target = num_symbols.div_ceil(segments).max(1);
        Self {
            ways,
            num_symbols,
            target,
            max_interior: segments - 1,
            ring: VecDeque::with_capacity(config.ring_capacity.min(1 << 20)),
            ring_capacity: config.ring_capacity,
            max_candidates: config.max_candidates.max(1),
            heuristic: config.heuristic,
            prev_p: -1,
            next_target: target,
            chosen: Vec::new(),
        }
    }

    /// Candidate search half-window around a target.
    fn window(&self) -> u64 {
        (self.target / 8).max(4 * self.ways as u64).max(16)
    }

    /// Ring indices whose event position lies within `[lo, hi]`, thinned to
    /// at most `max_candidates` entries.
    fn candidates_in(&self, lo: u64, hi: u64) -> Vec<usize> {
        // Events are position-sorted; binary search the boundaries.
        let start = self
            .ring
            .partition_point(|e| e.pos == NO_SYMBOL || e.pos < lo);
        let end = self
            .ring
            .partition_point(|e| e.pos == NO_SYMBOL || e.pos <= hi);
        if start >= end {
            return Vec::new();
        }
        let span = end - start;
        if span <= self.max_candidates {
            (start..end).collect()
        } else {
            // Evenly thin, always keeping first and last.
            let mc = self.max_candidates.max(2);
            (0..mc).map(|k| start + k * (span - 1) / (mc - 1)).collect()
        }
    }

    /// Backward scan from ring index `idx` (paper §4.1, Figure 6): collect
    /// each lane's most recent renorm event at-or-before the candidate.
    fn backward_scan(&self, idx: usize) -> Option<SplitPoint> {
        let w = self.ways as usize;
        let mut lanes: Vec<Option<LaneInit>> = vec![None; w];
        let mut found = 0usize;
        let mut i = idx;
        loop {
            let e = &self.ring[i];
            let slot = &mut lanes[e.lane as usize];
            if slot.is_none() {
                if e.pos == NO_SYMBOL {
                    return None; // lane state predates its first symbol
                }
                *slot = Some(LaneInit {
                    state: e.state,
                    pos: e.pos,
                });
                found += 1;
                if found == w {
                    break;
                }
            }
            if i == 0 {
                return None; // ring exhausted before all lanes were found
            }
            i -= 1;
        }
        let lanes: Vec<LaneInit> = lanes.into_iter().map(|l| l.expect("all found")).collect();
        let sp = SplitPoint {
            offset: self.ring[idx].offset,
            lanes,
        };
        // Invariants the decoder depends on.
        if sp.sync_start() as i64 <= self.prev_p {
            return None;
        }
        if sp.split_pos() + 1 >= self.num_symbols {
            return None;
        }
        Some(sp)
    }

    /// Definition 4.1: `H(t, t_s) = |t - T| + |t - t_s - T|` (or the naive
    /// `|t - T|` under [`Heuristic::NearestOnly`]).
    fn score(&self, sp: &SplitPoint) -> u64 {
        let t = (sp.split_pos() as i64 - self.prev_p) as u64;
        let target = self.target as i64;
        match self.heuristic {
            Heuristic::SyncAware => {
                let ts = sp.sync_len();
                (t as i64 - target).unsigned_abs() + (t as i64 - ts as i64 - target).unsigned_abs()
            }
            Heuristic::NearestOnly => (t as i64 - target).unsigned_abs(),
        }
    }

    /// Scores candidates around the current target and commits the best.
    /// Returns false when no viable candidate exists (the target is skipped).
    fn plan_one(&mut self) -> bool {
        let mut half = self.window();
        let hi_cap = self
            .ring
            .back()
            .map_or(0, |e| if e.pos == NO_SYMBOL { 0 } else { e.pos });
        // Widen up to half the target on sparse data, then give up.
        loop {
            let lo = self.next_target.saturating_sub(half);
            let hi = (self.next_target + half).min(hi_cap);
            let best = self
                .candidates_in(lo, hi)
                .into_iter()
                .filter_map(|idx| self.backward_scan(idx))
                .min_by_key(|sp| (self.score(sp), sp.sync_len()));
            if let Some(sp) = best {
                self.prev_p = sp.split_pos() as i64;
                self.next_target = sp.split_pos() + self.target;
                self.chosen.push(sp);
                return true;
            }
            if half >= self.target {
                return false;
            }
            half = (half * 2).min(self.target);
        }
    }

    /// Finalizes planning after the encoder is done and returns metadata.
    ///
    /// `num_words` is the finished stream's word count; `quant_bits` is the
    /// model's `n` (recorded in the metadata header).
    pub fn finish(mut self, num_words: u64, quant_bits: u32) -> RecoilMetadata {
        // Plan any targets the stream tail still allows.
        while (self.chosen.len() as u64) < self.max_interior
            && self.next_target + 1 < self.num_symbols
        {
            if !self.plan_one() {
                self.next_target += self.target;
            }
        }
        let meta = RecoilMetadata {
            ways: self.ways,
            quant_bits,
            num_symbols: self.num_symbols,
            num_words,
            splits: std::mem::take(&mut self.chosen),
        };
        debug_assert!(meta.validate().is_ok(), "planner produced invalid metadata");
        meta
    }

    /// Splits committed so far.
    pub fn planned(&self) -> usize {
        self.chosen.len()
    }
}

impl RenormSink for SplitPlanner {
    #[inline]
    fn on_renorm(&mut self, e: RenormEvent) {
        if self.ring.len() == self.ring_capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(e);
        if e.pos != NO_SYMBOL
            && (self.chosen.len() as u64) < self.max_interior
            && e.pos >= self.next_target + self.window()
            && !self.plan_one()
        {
            self.next_target += self.target;
        }
    }
}

/// One transmission chunk of a [`ChunkPlan`]: a word range of the bitstream
/// plus the metadata segments that become fully resident once every chunk
/// up to and including this one has arrived.
///
/// Interior segment `m` reads only words at offsets `<= splits[m].offset`,
/// so it completes with the chunk containing word `splits[m].offset`; the
/// final segment completes with the last chunk. A chunk cutting through a
/// large segment completes no segments (`segments` is empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedChunk {
    /// Bitstream word range `[start, end)` this chunk carries.
    pub words: Range<u64>,
    /// Segments newly decodable after this chunk arrived (may be empty).
    pub segments: Range<u64>,
}

/// A transmission schedule whose chunk boundaries are aligned to split
/// boundaries, so a streaming receiver can start decoding whole segments
/// the moment a chunk lands instead of waiting for the full bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    /// Chunks in wire order; word ranges tile `0..meta.num_words` and
    /// segment ranges tile `0..meta.num_segments()`.
    pub chunks: Vec<PlannedChunk>,
}

impl ChunkPlan {
    /// Number of chunks on the wire.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// True when the plan carries no chunks (never produced by
    /// [`plan_chunks`]; even an empty stream gets one empty chunk so the
    /// receiver observes completion).
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Checks that this plan is a faithful transmission schedule for
    /// `meta`: word ranges must tile the stream, segment ranges must tile
    /// `0..num_segments` **without overlap or gaps**, and each segment must
    /// be reported complete in exactly the chunk that delivers its last
    /// word. Malformed plans are rejected with [`RecoilError::Decode`] —
    /// a decoder driving `decode_ready_segments` off a bad plan would
    /// otherwise read words that have not arrived.
    pub fn validate_against(&self, meta: &RecoilMetadata) -> Result<(), RecoilError> {
        let fail = |msg: String| Err(RecoilError::Decode(RansError::MalformedMetadata(msg)));
        if self.chunks.is_empty() {
            return fail("chunk plan is empty".into());
        }
        let nseg = meta.num_segments();
        // Words an interior/final segment needs before it is decodable.
        let seg_end = |m: u64| {
            if m + 1 == nseg {
                meta.num_words
            } else {
                meta.splits[m as usize].offset + 1
            }
        };
        let mut word = 0u64;
        let mut seg = 0u64;
        for (k, c) in self.chunks.iter().enumerate() {
            if c.words.start != word || c.words.end < c.words.start {
                return fail(format!(
                    "chunk {k}: word range {}..{} breaks contiguity at word {word}",
                    c.words.start, c.words.end
                ));
            }
            if c.segments.start != seg || c.segments.end < c.segments.start {
                return fail(format!(
                    "chunk {k}: segment range {}..{} overlaps or leaves a gap at segment {seg}",
                    c.segments.start, c.segments.end
                ));
            }
            if c.segments.end > nseg {
                return fail(format!(
                    "chunk {k}: segment range ends at {} but the metadata has {nseg} segments",
                    c.segments.end
                ));
            }
            for m in c.segments.clone() {
                if seg_end(m) > c.words.end {
                    return fail(format!(
                        "chunk {k}: claims segment {m} complete before word {} arrived",
                        seg_end(m)
                    ));
                }
            }
            if c.segments.end < nseg && seg_end(c.segments.end) <= c.words.end {
                return fail(format!(
                    "chunk {k}: segment {} is resident but not reported complete",
                    c.segments.end
                ));
            }
            word = c.words.end;
            seg = c.segments.end;
        }
        if word != meta.num_words {
            return fail(format!(
                "chunk plan covers {word} of {} words",
                meta.num_words
            ));
        }
        if seg != nseg {
            return fail(format!("chunk plan completes {seg} of {nseg} segments"));
        }
        Ok(())
    }
}

/// Plans split-aligned transmission chunks for `meta`, aiming at
/// `target_chunk_bytes` of bitstream per chunk (2 bytes per word).
///
/// Boundary placement prefers the furthest segment-completion point within
/// the target, so nearly every chunk finishes whole segments; a segment
/// larger than the target is cut at raw target boundaries (those interior
/// chunks complete nothing) and finishes in the chunk carrying its last
/// word. The degenerate cases stay well-formed: a single-segment stream
/// degrades to plain fixed-size chunking, and an empty stream yields one
/// empty chunk so the receiver still observes completion.
pub fn plan_chunks(meta: &RecoilMetadata, target_chunk_bytes: usize) -> ChunkPlan {
    let mut plan = ChunkPlan { chunks: Vec::new() };
    plan_chunks_into(meta, target_chunk_bytes, &mut plan);
    plan
}

/// In-place variant of [`plan_chunks`]: clears and refills `plan`, reusing
/// its chunk storage so a steady-state server can plan every response
/// without allocating.
pub fn plan_chunks_into(meta: &RecoilMetadata, target_chunk_bytes: usize, plan: &mut ChunkPlan) {
    let target = (target_chunk_bytes as u64 / 2).max(1);
    let nseg = meta.num_segments();
    let seg_end = |m: u64| {
        if m + 1 == nseg {
            meta.num_words
        } else {
            meta.splits[m as usize].offset + 1
        }
    };
    let chunks = &mut plan.chunks;
    chunks.clear();
    let mut word = 0u64;
    let mut seg = 0u64;
    while word < meta.num_words {
        let limit = word + target;
        // Furthest segment completion within the target, if any.
        let mut cut = word;
        let mut done = seg;
        while done < nseg && seg_end(done) <= limit {
            cut = seg_end(done);
            done += 1;
        }
        if done == seg {
            // The next segment overshoots the target: cut mid-segment.
            cut = limit.min(meta.num_words);
        }
        chunks.push(PlannedChunk {
            words: word..cut,
            segments: seg..done,
        });
        word = cut;
        seg = done;
    }
    // Trailing zero-word segments (and the empty-stream case) complete in
    // one final empty chunk so the schedule always reports every segment.
    if seg < nseg {
        chunks.push(PlannedChunk {
            words: word..word,
            segments: seg..nseg,
        });
    }
    debug_assert!(
        plan.validate_against(meta).is_ok(),
        "planner produced an invalid chunk plan"
    );
}

/// Offline planning over a recorded event log (tests, small inputs).
pub fn plan_from_events(
    events: &[RenormEvent],
    ways: u32,
    num_symbols: u64,
    num_words: u64,
    quant_bits: u32,
    config: PlannerConfig,
) -> RecoilMetadata {
    let mut planner = SplitPlanner::new(ways, num_symbols, config);
    for &e in events {
        planner.on_renorm(e);
    }
    planner.finish(num_words, quant_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::{CdfTable, StaticModelProvider};
    use recoil_rans::{InterleavedEncoder, VecSink};

    fn encode_with_events(
        data: &[u8],
        n: u32,
        ways: u32,
    ) -> (recoil_rans::EncodedStream, Vec<RenormEvent>) {
        let p = StaticModelProvider::new(CdfTable::of_bytes(data, n));
        let mut enc = InterleavedEncoder::new(&p, ways);
        let mut sink = VecSink::new();
        enc.encode_all(data, &mut sink);
        (enc.finish(), sink.events)
    }

    fn sample(len: usize) -> Vec<u8> {
        (0..len as u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 22) as u8)
            .collect()
    }

    #[test]
    fn plans_requested_segment_count_on_plain_data() {
        let data = sample(400_000);
        let (stream, events) = encode_with_events(&data, 11, 32);
        for segments in [2u64, 4, 16, 64] {
            let meta = plan_from_events(
                &events,
                32,
                stream.num_symbols,
                stream.words.len() as u64,
                11,
                PlannerConfig::with_segments(segments),
            );
            assert_eq!(
                meta.splits.len() as u64,
                segments - 1,
                "segments={segments}"
            );
            meta.validate().unwrap();
        }
    }

    #[test]
    fn workload_is_roughly_balanced() {
        let data = sample(500_000);
        let (stream, events) = encode_with_events(&data, 11, 32);
        let segments = 16u64;
        let meta = plan_from_events(
            &events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            11,
            PlannerConfig::with_segments(segments),
        );
        let t = stream.num_symbols / segments;
        let mut prev = -1i64;
        for s in &meta.splits {
            let span = s.split_pos() as i64 - prev;
            assert!(
                (span - t as i64).unsigned_abs() < t / 4,
                "segment span {span} far from target {t}"
            );
            prev = s.split_pos() as i64;
        }
    }

    #[test]
    fn sync_sections_are_short() {
        // With 32 lanes and ~5 bits/symbol, each lane renorms every few of
        // its symbols, so sync sections should be a small multiple of W.
        let data = sample(300_000);
        let (stream, events) = encode_with_events(&data, 11, 32);
        let meta = plan_from_events(
            &events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            11,
            PlannerConfig::with_segments(32),
        );
        for s in &meta.splits {
            assert!(
                s.sync_len() < 32 * 24,
                "sync section {} too long",
                s.sync_len()
            );
        }
    }

    #[test]
    fn split_states_match_recorded_events() {
        let data = sample(100_000);
        let (stream, events) = encode_with_events(&data, 11, 32);
        let meta = plan_from_events(
            &events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            11,
            PlannerConfig::with_segments(8),
        );
        // Every recorded lane state must be an actual event with matching
        // lane, position and state.
        for sp in &meta.splits {
            for (lane, li) in sp.lanes.iter().enumerate() {
                assert!(
                    events
                        .iter()
                        .any(|e| e.lane == lane as u32 && e.pos == li.pos && e.state == li.state),
                    "lane {lane} init not found among events"
                );
            }
            // The split-defining event sits exactly at the stored offset.
            assert!(events
                .iter()
                .any(|e| e.offset == sp.offset && e.pos == sp.split_pos()));
        }
    }

    #[test]
    fn more_segments_than_symbols_degrades_gracefully() {
        let data = sample(300);
        let (stream, events) = encode_with_events(&data, 8, 4);
        let meta = plan_from_events(
            &events,
            4,
            stream.num_symbols,
            stream.words.len() as u64,
            8,
            PlannerConfig::with_segments(1000),
        );
        meta.validate().unwrap();
        assert!(meta.num_segments() <= 300);
    }

    #[test]
    fn single_segment_means_no_splits() {
        let data = sample(10_000);
        let (stream, events) = encode_with_events(&data, 11, 32);
        let meta = plan_from_events(
            &events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            11,
            PlannerConfig::with_segments(1),
        );
        assert!(meta.splits.is_empty());
    }

    #[test]
    fn highly_compressible_data_still_plans_validly() {
        // ~0.2 bits/symbol: renorm events are sparse; planner may produce
        // fewer splits but must stay valid.
        let mut data = vec![0u8; 200_000];
        for i in (0..data.len()).step_by(37) {
            data[i] = 1 + (i % 3) as u8;
        }
        let (stream, events) = encode_with_events(&data, 11, 32);
        let meta = plan_from_events(
            &events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            11,
            PlannerConfig::with_segments(16),
        );
        meta.validate().unwrap();
        assert!(meta.num_segments() >= 2, "should find at least one split");
    }

    #[test]
    fn streaming_matches_offline_on_large_ring() {
        let data = sample(200_000);
        let (stream, events) = encode_with_events(&data, 11, 32);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let mut enc = InterleavedEncoder::new(&p, 32);
        let mut planner =
            SplitPlanner::new(32, data.len() as u64, PlannerConfig::with_segments(16));
        enc.encode_all(&data, &mut planner);
        let streamed = planner.finish(stream.words.len() as u64, 11);
        let offline = plan_from_events(
            &events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            11,
            PlannerConfig::with_segments(16),
        );
        assert_eq!(streamed, offline);
    }
}
