//! The Recoil three-phase parallel decoder (paper §4.1, Figure 6).
//!
//! Each decoder thread `m` handles one split and runs:
//!
//! 1. **Synchronization Phase** — start at the split position `P_m` with
//!    only the split-defining lane known; walking positions downward, each
//!    lane is initialized from its 16-bit metadata state exactly at its
//!    recorded position — immediately before its first bitstream read, so
//!    the shared backward read pointer stays aligned even while some lanes
//!    are absent. Symbols produced here are a side effect and are discarded.
//! 2. **Decoding Phase** — from the sync completion point `Q_m - 1` down,
//!    plain interleaved decoding, writing real output.
//! 3. **Cross-Boundary Decoding Phase** — past the *previous* split's
//!    position the thread keeps going through that split's Synchronization
//!    Section (it inherently carries the correct states) and stops at its
//!    sync completion point `Q_{m-1}`.
//!
//! Phases 2 and 3 need no code boundary: together they decode positions
//! `Q_{m-1} .. Q_m` — exactly thread `m`'s disjoint output range, which is
//! why the output buffer can be handed out as non-overlapping sub-slices.

use crate::metadata::{RecoilMetadata, SplitPoint};
use parking_lot::Mutex;
use recoil_bitio::BackwardWordReader;
use recoil_models::{ModelProvider, Symbol};
use recoil_parallel::ThreadPool;
use recoil_rans::params::LOWER_BOUND;
use recoil_rans::{
    decode_span_with_stats, decode_transform, renorm_read, EncodedStream, RansError,
};
use std::ops::Range;

/// Number of parallel decode tasks this metadata yields.
pub fn decode_split_count(meta: &RecoilMetadata) -> usize {
    meta.splits.len() + 1
}

/// Decodes a Recoil stream, optionally on a thread pool.
///
/// With `pool = None` the tasks run serially on the caller — same results,
/// useful for tests and for decoders without parallel capacity (the whole
/// point of decoder-adaptive scalability is that such decoders receive
/// metadata with fewer splits, not a different bitstream).
#[deprecated(
    since = "0.1.0",
    note = "use `recoil_core::codec::Codec::decode` with a `ScalarBackend`/`PooledBackend`, \
            or `codec::decode_pooled` when implementing a backend"
)]
pub fn decode_recoil<S: Symbol, P: ModelProvider>(
    stream: &EncodedStream,
    meta: &RecoilMetadata,
    provider: &P,
    pool: Option<&ThreadPool>,
) -> Result<Vec<S>, RansError> {
    let mut out = vec![S::from_u16(0); stream.num_symbols as usize];
    decode_into_impl(stream, meta, provider, pool, &mut out)?;
    Ok(out)
}

/// Decodes a Recoil stream into a caller-provided buffer.
#[deprecated(
    since = "0.1.0",
    note = "use `recoil_core::codec::Codec::decode_into` with a `ScalarBackend`/`PooledBackend`, \
            or `codec::decode_pooled` when implementing a backend"
)]
pub fn decode_recoil_into<S: Symbol, P: ModelProvider>(
    stream: &EncodedStream,
    meta: &RecoilMetadata,
    provider: &P,
    pool: Option<&ThreadPool>,
    out: &mut [S],
) -> Result<(), RansError> {
    decode_into_impl(stream, meta, provider, pool, out)
}

/// The three-phase decode engine behind both the [`crate::codec`] backends
/// and the deprecated free functions.
pub(crate) fn decode_into_impl<S: Symbol, P: ModelProvider + ?Sized>(
    stream: &EncodedStream,
    meta: &RecoilMetadata,
    provider: &P,
    pool: Option<&ThreadPool>,
    out: &mut [S],
) -> Result<(), RansError> {
    // The classic whole-stream API keeps its exact-length contract (the
    // segment-range engine only requires coverage); its remaining checks
    // are subsumed by `validate_segment_decode` over the full range, which
    // pins `words.len()` to exactly `num_words` once the final segment is
    // included.
    if out.len() as u64 != stream.num_symbols {
        return Err(RansError::MalformedStream(format!(
            "output buffer holds {} symbols, stream has {}",
            out.len(),
            stream.num_symbols
        )));
    }
    decode_segments_impl(stream, meta, provider, pool, 0..meta.num_segments(), out)
}

/// Checks the invariants of a segment-range decode where `stream.words` may
/// be an incomplete **prefix** of the stream `meta` describes.
///
/// This is the validation contract of the streaming path: segment `m`
/// (interior) only reads words at offsets `<= splits[m].offset`, so a
/// prefix of `splits[m].offset + 1` words makes it decodable before the
/// rest of the bitstream has arrived. The final segment starts from the
/// explicitly transmitted final states at the stream tail, so it requires
/// the complete word stream.
///
/// The output buffer is indexed **absolutely** (segment `m` writes
/// `bounds[m]..bounds[m+1]`), so it must cover at least the requested
/// segments' symbols; it may be shorter than the full stream — a streaming
/// receiver grows it as segments become resident, so a hostile header
/// alone never drives a full-stream allocation.
pub fn validate_segment_decode(
    stream: &EncodedStream,
    meta: &RecoilMetadata,
    segments: &Range<u64>,
    out_len: usize,
) -> Result<(), RansError> {
    stream.validate()?;
    meta.validate()?;
    if stream.ways != meta.ways
        || stream.num_symbols != meta.num_symbols
        || stream.words.len() as u64 > meta.num_words
    {
        return Err(RansError::MalformedMetadata(format!(
            "metadata (W={}, N={}, B={}) does not describe stream prefix (W={}, N={}, B<={})",
            meta.ways,
            meta.num_symbols,
            meta.num_words,
            stream.ways,
            stream.num_symbols,
            stream.words.len()
        )));
    }
    let nseg = meta.num_segments();
    if segments.start > segments.end || segments.end > nseg {
        return Err(RansError::MalformedMetadata(format!(
            "segment range {}..{} invalid for {nseg} segments",
            segments.start, segments.end
        )));
    }
    let covered = if segments.end == nseg {
        meta.num_symbols
    } else if segments.end > 0 {
        meta.splits[segments.end as usize - 1].sync_start()
    } else {
        0
    };
    if (out_len as u64) < covered {
        return Err(RansError::MalformedStream(format!(
            "output buffer holds {out_len} symbols, requested segments end at {covered}"
        )));
    }
    let have = stream.words.len() as u64;
    if segments.end == nseg {
        if have != meta.num_words {
            return Err(RansError::MalformedStream(format!(
                "final segment needs the complete stream: {have} of {} words resident",
                meta.num_words
            )));
        }
    } else if segments.end > 0 {
        let need = meta.splits[segments.end as usize - 1].offset + 1;
        if have < need {
            return Err(RansError::MalformedStream(format!(
                "segment {} needs a {need}-word prefix, only {have} words resident",
                segments.end - 1
            )));
        }
    }
    Ok(())
}

/// The segment-range decode engine: runs the three phases for every task in
/// `segments`, writing each task's disjoint region of the full-stream
/// output buffer. `stream.words` may be a prefix (see
/// [`validate_segment_decode`]).
pub(crate) fn decode_segments_impl<S: Symbol, P: ModelProvider + ?Sized>(
    stream: &EncodedStream,
    meta: &RecoilMetadata,
    provider: &P,
    pool: Option<&ThreadPool>,
    segments: Range<u64>,
    out: &mut [S],
) -> Result<(), RansError> {
    validate_segment_decode(stream, meta, &segments, out.len())?;
    let (a, b) = (segments.start as usize, segments.end as usize);
    let tasks = b - a;
    if tasks == 0 {
        return Ok(());
    }
    let bounds = meta.segment_bounds();

    // Hand each task its disjoint output segment.
    let mut slices: Vec<Mutex<&mut [S]>> = Vec::with_capacity(tasks);
    let mut rest = &mut out[bounds[a] as usize..bounds[b] as usize];
    for t in 0..tasks {
        let len = (bounds[a + t + 1] - bounds[a + t]) as usize;
        let (seg, tail) = rest.split_at_mut(len);
        slices.push(Mutex::new(seg));
        rest = tail;
    }

    let first_error: Mutex<Option<RansError>> = Mutex::new(None);
    let run_task = |t: usize| {
        let m = a + t;
        let mut seg = slices[t].lock();
        if let Err(e) = decode_task(m, stream, meta, provider, bounds[m], &mut seg) {
            let mut slot = first_error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    };

    match pool {
        Some(pool) if tasks > 1 => pool.run(tasks, run_task),
        _ => (0..tasks).for_each(run_task),
    }

    match first_error.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Runs the three phases of one decode task.
///
/// `seg` receives positions `lo .. lo + seg.len()` where `lo = bounds[m]`.
fn decode_task<S: Symbol, P: ModelProvider + ?Sized>(
    m: usize,
    stream: &EncodedStream,
    meta: &RecoilMetadata,
    provider: &P,
    lo: u64,
    seg: &mut [S],
) -> Result<(), RansError> {
    let ways = meta.ways as u64;
    let n = provider.quant_bits();
    let mask = (1u32 << n) - 1;
    let words = &stream.words;

    let (mut states, reader) = if m < meta.splits.len() {
        sync_phase(&meta.splits[m], words, provider, n, mask, ways)?
    } else {
        // The last task starts from the exact, explicitly transmitted final
        // states; no synchronization is needed.
        (
            stream.final_states.clone(),
            BackwardWordReader::from_end(words),
        )
    };

    // Decoding Phase + Cross-Boundary Phase: positions lo .. lo+len, writing
    // real output, stopping at the previous split's sync completion point —
    // run through the fast-loop/careful-tail engine (`recoil_rans::fast`).
    let (_, stats) =
        decode_span_with_stats(provider, words, reader.offset(), &mut states, lo, seg)?;

    // Fold the span's engine stats into the process-global decode metrics
    // when some Telemetry handle armed them — one enabled-check per *span*
    // (a whole task), so the disabled cost is a single relaxed load.
    let metrics = recoil_telemetry::decode_metrics();
    if metrics.enabled() {
        metrics.spans.bump();
        metrics.fast_groups.add(stats.fast_groups);
        metrics.fast_symbols.add(stats.fast_symbols);
        metrics.careful_symbols.add(stats.careful_symbols);
        metrics.words_consumed.add(stats.words_consumed);
    }
    Ok(())
}

/// Public entry to the Synchronization Phase for external decode drivers
/// (the SIMD crate runs sync scalar, then hands the recovered states and
/// read offset to its vector kernels).
///
/// Returns the fully synchronized lane states and the next backward read
/// offset (`None` when the stream head was reached).
pub fn sync_split_states<P: ModelProvider + ?Sized>(
    split: &SplitPoint,
    words: &[u16],
    provider: &P,
    ways: u32,
) -> Result<(Vec<u32>, Option<u64>), RansError> {
    let n = provider.quant_bits();
    let mask = (1u32 << n) - 1;
    let (states, reader) = sync_phase(split, words, provider, n, mask, ways as u64)?;
    Ok((states, reader.offset()))
}

/// Synchronization Phase (§4.1.1): recover full decoder states from the
/// split's 16-bit metadata states, discarding the side-effect symbols.
fn sync_phase<'w, P: ModelProvider + ?Sized>(
    split: &crate::metadata::SplitPoint,
    words: &'w [u16],
    provider: &P,
    n: u32,
    mask: u32,
    ways: u64,
) -> Result<(Vec<u32>, BackwardWordReader<'w>), RansError> {
    let p = split.split_pos();
    let q = split.sync_start();
    let mut reader = BackwardWordReader::new(words, split.offset);
    let mut states = vec![0u32; ways as usize];
    let mut ready = vec![false; ways as usize];

    let mut pos = p;
    loop {
        let lane = (pos % ways) as usize;
        if ready[lane] {
            let x = renorm_read(states[lane], &mut reader, pos)?;
            let (nx, _discard) = decode_transform(x, pos, provider, n, mask);
            states[lane] = nx;
        } else if split.lanes[lane].pos == pos {
            // Initialize this lane immediately before its first read: the
            // metadata state is < L, so renorm_read pulls exactly the word
            // its encoder-side renormalization emitted here.
            let x0 = split.lanes[lane].state as u32;
            debug_assert!(x0 < LOWER_BOUND);
            let x = renorm_read(x0, &mut reader, pos)?;
            let (nx, _discard) = decode_transform(x, pos, provider, n, mask);
            states[lane] = nx;
            ready[lane] = true;
        }
        // Slots of not-yet-initialized lanes are skipped entirely: absent
        // decoders neither transform nor read, keeping the read offset
        // correct (§4.1.1).
        if pos == q {
            break;
        }
        pos -= 1;
    }
    debug_assert!(
        ready.iter().all(|&r| r),
        "sync ended with uninitialized lanes"
    );
    Ok((states, reader))
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shims must keep working; tests exercise them

    use super::*;
    use crate::planner::{plan_from_events, PlannerConfig};
    use recoil_models::{CdfTable, StaticModelProvider};
    use recoil_rans::{decode_interleaved, InterleavedEncoder, VecSink};

    fn sample(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 22) as u8)
            .collect()
    }

    fn setup(
        data: &[u8],
        n: u32,
        ways: u32,
        segments: u64,
    ) -> (EncodedStream, RecoilMetadata, StaticModelProvider) {
        let p = StaticModelProvider::new(CdfTable::of_bytes(data, n));
        let mut enc = InterleavedEncoder::new(&p, ways);
        let mut sink = VecSink::new();
        enc.encode_all(data, &mut sink);
        let stream = enc.finish();
        let meta = plan_from_events(
            &sink.events,
            ways,
            stream.num_symbols,
            stream.words.len() as u64,
            n,
            PlannerConfig::with_segments(segments),
        );
        (stream, meta, p)
    }

    #[test]
    fn recoil_decode_matches_serial_decode() {
        let data = sample(200_000, 1);
        let (stream, meta, p) = setup(&data, 11, 32, 16);
        assert_eq!(meta.num_segments(), 16);
        let serial: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
        let recoil: Vec<u8> = decode_recoil(&stream, &meta, &p, None).unwrap();
        assert_eq!(serial, data);
        assert_eq!(recoil, data);
    }

    #[test]
    fn parallel_pool_decode_matches() {
        let data = sample(300_000, 2);
        let (stream, meta, p) = setup(&data, 11, 32, 64);
        let pool = ThreadPool::new(7);
        let got: Vec<u8> = decode_recoil(&stream, &meta, &p, Some(&pool)).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn no_split_metadata_decodes_whole_stream() {
        let data = sample(50_000, 3);
        let (stream, meta, p) = setup(&data, 11, 32, 1);
        assert!(meta.splits.is_empty());
        let got: Vec<u8> = decode_recoil(&stream, &meta, &p, None).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn many_way_and_segment_combinations() {
        for ways in [1u32, 2, 4, 8, 32] {
            for segments in [2u64, 3, 8] {
                let data = sample(60_000, ways + segments as u32);
                let (stream, meta, p) = setup(&data, 10, ways, segments);
                let got: Vec<u8> = decode_recoil(&stream, &meta, &p, None).unwrap();
                assert_eq!(got, data, "ways={ways} segments={segments}");
            }
        }
    }

    #[test]
    fn massive_split_count_gpu_style() {
        let data = sample(400_000, 9);
        let (stream, meta, p) = setup(&data, 11, 32, 512);
        assert!(meta.num_segments() > 400, "got {}", meta.num_segments());
        let pool = ThreadPool::new(7);
        let got: Vec<u8> = decode_recoil(&stream, &meta, &p, Some(&pool)).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn sixteen_bit_symbols_and_n16() {
        let raw = sample(120_000, 4);
        let data: Vec<u16> = raw.iter().map(|&b| (b as u16) << 3).collect();
        let p = StaticModelProvider::new(CdfTable::of_u16(&data, 1 << 12, 16));
        let mut enc = InterleavedEncoder::new(&p, 32);
        let mut sink = VecSink::new();
        enc.encode_all(&data, &mut sink);
        let stream = enc.finish();
        let meta = plan_from_events(
            &sink.events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            16,
            PlannerConfig::with_segments(16),
        );
        let got: Vec<u16> = decode_recoil(&stream, &meta, &p, None).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn adaptive_models_across_split_boundaries() {
        use recoil_models::{GaussianScaleBank, LatentModelProvider, LatentSpec};
        use std::sync::Arc;
        let bank = Arc::new(GaussianScaleBank::build(12, 256, 8, 0.5, 32.0));
        let count = 80_000usize;
        let specs: Vec<LatentSpec> = (0..count)
            .map(|i| LatentSpec {
                mean: 2000 + (i % 700) as u16,
                scale_idx: (i % 8) as u8,
            })
            .collect();
        let p = LatentModelProvider::new(bank, specs.clone());
        let data: Vec<u16> = (0..count)
            .map(|i| {
                let d = ((i as i64).wrapping_mul(2654435761) % 31) - 15;
                p.clamp_to_window(specs[i], specs[i].mean as i64 + d)
            })
            .collect();
        let mut enc = InterleavedEncoder::new(&p, 32);
        let mut sink = VecSink::new();
        enc.encode_all(&data, &mut sink);
        let stream = enc.finish();
        let meta = plan_from_events(
            &sink.events,
            32,
            stream.num_symbols,
            stream.words.len() as u64,
            12,
            PlannerConfig::with_segments(8),
        );
        assert!(meta.num_segments() >= 2);
        let got: Vec<u16> = decode_recoil(&stream, &meta, &p, None).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn corrupted_metadata_is_rejected_not_misdecoded() {
        let data = sample(100_000, 5);
        let (stream, mut meta, p) = setup(&data, 11, 32, 8);
        meta.num_symbols += 1;
        assert!(decode_recoil::<u8, _>(&stream, &meta, &p, None).is_err());
    }

    #[test]
    fn wrong_output_len_is_rejected() {
        let data = sample(10_000, 6);
        let (stream, meta, p) = setup(&data, 11, 32, 4);
        let mut out = vec![0u8; 9_999];
        assert!(decode_recoil_into(&stream, &meta, &p, None, &mut out).is_err());
    }
}
