//! **Recoil** — parallel rANS decoding with decoder-adaptive scalability
//! (Lin et al., ICPP 2023). This crate is the paper's contribution.
//!
//! Instead of partitioning the symbol sequence before encoding (which fixes
//! the parallelism/compression trade-off forever, §2.3), Recoil encodes the
//! whole sequence with **one** group of interleaved rANS encoders and then
//! records *metadata* at chosen renormalization points: the 16-bit
//! intermediate lane states, the symbol indices they belong to, and the
//! bitstream offset (§3, §4). Decoders can start at any recorded split
//! through a three-phase procedure (Synchronization → Decoding →
//! Cross-Boundary, §4.1), and a content server can scale the parallelism
//! *down* for a weaker client by simply dropping metadata entries (§3.3) —
//! no re-encode, no wasted bytes.
//!
//! Pipeline:
//!
//! ```text
//! symbols ──InterleavedEncoder──▶ bitstream + renorm events
//!                   │                         │
//!                   ▼                         ▼
//!            final states            SplitPlanner (Def. 4.1 heuristic,
//!                                      backward scan at renorm points)
//!                                             │
//!                                             ▼
//!                                     RecoilMetadata ──wire──▶ bytes
//!                                             │
//!                              combine(M) ────┤  (server, real-time)
//!                                             ▼
//!                       three-phase parallel decoder (thread pool)
//! ```

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

pub mod codec;
mod combine;
mod container;
mod crc;
mod decoder;
mod encoder;
mod error;
mod file;
mod incremental;
mod metadata;
mod planner;
mod wire;

pub use codec::{
    Codec, CodecBuilder, CodecSymbol, DecodeBackend, DecodeRequest, Encoded, EncoderConfig,
    PooledBackend, ScalarBackend,
};
pub use combine::{combine_splits, try_combine_splits};
pub use container::RecoilContainer;
pub use crc::{crc32, update_crc32};
pub use decoder::{decode_split_count, sync_split_states, validate_segment_decode};
pub use encoder::PARALLEL_MIN_SYMBOLS;
pub use error::RecoilError;
pub use file::{container_from_bytes, container_to_bytes};
pub use incremental::IncrementalDecoder;
pub use metadata::{LaneInit, RecoilMetadata, SplitPoint};
pub use planner::{
    plan_chunks, plan_chunks_into, plan_from_events, ChunkPlan, Heuristic, PlannedChunk,
    PlannerConfig, SplitPlanner,
};
pub use wire::{metadata_from_bytes, metadata_to_bytes};

#[allow(deprecated)]
pub use container::encode_with_splits;
#[allow(deprecated)]
pub use decoder::{decode_recoil, decode_recoil_into};
