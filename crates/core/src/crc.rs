//! CRC-32 (IEEE 802.3) — the integrity footer of every versioned wire
//! format in the workspace.
//!
//! The metadata wire format, the container file format, and the network
//! transport all append a little-endian CRC-32 of the preceding bytes, so
//! a flipped bit anywhere in a frame is rejected as [`Wire`] corruption
//! before any of it is structurally interpreted — never decoded into
//! garbage symbols.
//!
//! [`Wire`]: crate::RecoilError::Wire

/// The reflected IEEE polynomial, the same one Ethernet, gzip and PNG use.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor, reflected — the
/// standard "crc32" everyone means).
pub fn crc32(bytes: &[u8]) -> u32 {
    update_crc32(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form: feeds `bytes` into a running raw register value.
///
/// Start from `0xFFFF_FFFF`, feed chunks in order, and xor the result with
/// `0xFFFF_FFFF` at the end; `crc32` is exactly that for one chunk. The
/// transport uses this to checksum a chunked payload without buffering it
/// twice.
pub fn update_crc32(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = crc32(&data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(17) {
            state = update_crc32(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, whole);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let reference = crc32(&data);
        for at in [0usize, 1, 100, 255] {
            let mut corrupt = data.clone();
            corrupt[at] ^= 0x01;
            assert_ne!(crc32(&corrupt), reference, "flip at {at} undetected");
        }
    }
}
