//! The unified codec facade: builder-based encode configuration and
//! pluggable decode backends.
//!
//! The paper's whole point is that **one** encoded bitstream serves every
//! decoder capability; this module makes the API match. Instead of the
//! positional free functions of the seed code
//! (`encode_with_splits(data, provider, 32, 64)` and four divergent
//! `decode_*` entry points), callers configure a reusable [`Codec`] once:
//!
//! ```
//! use recoil_core::codec::{Codec, PooledBackend};
//!
//! let data: Vec<u8> = (0..50_000u32).map(|i| (i % 200) as u8).collect();
//! let codec = Codec::builder()
//!     .ways(32)
//!     .max_segments(64)
//!     .quant_bits(11)
//!     .backend(PooledBackend::new(4))
//!     .build()
//!     .unwrap();
//! let encoded = codec.encode(&data).unwrap();
//! let decoded: Vec<u8> = codec.decode(&encoded).unwrap();
//! assert_eq!(decoded, data);
//! ```
//!
//! Decoding goes through the object-safe [`DecodeBackend`] trait:
//! [`ScalarBackend`] and [`PooledBackend`] live here; the SIMD crate adds
//! `Avx2Backend`, `Avx512Backend`, and a runtime-dispatching `AutoBackend`.
//! Every error on this surface is a typed [`RecoilError`] — configuration
//! mistakes are rejected at [`CodecBuilder::build`], not deep inside a
//! decode loop.

use crate::container::RecoilContainer;
use crate::decoder::{decode_into_impl, decode_segments_impl};
use crate::encoder::{encode_container, encode_container_pooled};
use crate::error::RecoilError;
use crate::metadata::RecoilMetadata;
use crate::planner::{Heuristic, PlannerConfig};
use recoil_models::{CdfTable, ModelProvider, StaticModelProvider, Symbol, MAX_QUANT_BITS};
use recoil_parallel::ThreadPool;
use recoil_rans::EncodedStream;
use std::ops::Range;

/// Validated encoder configuration: everything the encode side of a
/// [`Codec`] needs, and what [`crate::…`] server publications accept.
///
/// Lane width, split budget and quantization level are *codec
/// configuration*, not call-site trivia — construct once, reuse everywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderConfig {
    /// Interleaved lane count `W` (Table 3 recommends 32, which is also
    /// what the SIMD backends require).
    pub ways: u32,
    /// Maximum parallel segments `M` planned into the metadata. The planner
    /// is best-effort: it may place fewer splits on sparse streams.
    pub max_segments: u64,
    /// Quantization level `n` (frequencies sum to `2^n`, `1..=16`).
    pub quant_bits: u32,
    /// Split-candidate scoring strategy (Definition 4.1 by default).
    pub heuristic: Heuristic,
    /// Split candidates scored per workload target (planner knob).
    pub max_candidates: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        let planner = PlannerConfig::with_segments(64);
        Self {
            ways: 32,
            max_segments: 64,
            quant_bits: 11,
            heuristic: planner.heuristic,
            max_candidates: planner.max_candidates,
        }
    }
}

impl EncoderConfig {
    /// Checks every field, returning the first violation as a typed error.
    pub fn validate(&self) -> Result<(), RecoilError> {
        if self.ways == 0 {
            return Err(RecoilError::config("ways", "lane count must be >= 1"));
        }
        if self.ways > u16::MAX as u32 {
            return Err(RecoilError::config(
                "ways",
                format!(
                    "lane count {} exceeds the wire format's 16-bit field",
                    self.ways
                ),
            ));
        }
        if self.max_segments == 0 {
            return Err(RecoilError::config(
                "max_segments",
                "at least one decode segment is required",
            ));
        }
        if self.quant_bits == 0 || self.quant_bits > MAX_QUANT_BITS {
            return Err(RecoilError::config(
                "quant_bits",
                format!(
                    "quantization level {} outside 1..={MAX_QUANT_BITS}",
                    self.quant_bits
                ),
            ));
        }
        if self.max_candidates == 0 {
            return Err(RecoilError::config(
                "max_candidates",
                "planner must score at least one candidate per target",
            ));
        }
        Ok(())
    }

    /// The planner configuration this encoder config induces.
    pub fn planner_config(&self) -> PlannerConfig {
        let mut cfg = PlannerConfig::with_segments(self.max_segments);
        cfg.heuristic = self.heuristic;
        cfg.max_candidates = self.max_candidates;
        cfg
    }
}

/// Everything a backend needs to decode one static-model stream.
#[derive(Clone, Copy)]
pub struct DecodeRequest<'a> {
    /// The interleaved rANS bitstream.
    pub stream: &'a EncodedStream,
    /// Split metadata (possibly combined down from the encoded maximum).
    pub metadata: &'a RecoilMetadata,
    /// The static model the stream was encoded with.
    pub model: &'a StaticModelProvider,
}

/// An object-safe decode strategy.
///
/// Implementations decide *how* the three-phase decode runs (serial, thread
/// pool, AVX2/AVX-512 kernels, runtime dispatch); the bitstream and metadata
/// are identical across all of them — that is the paper's decoder-adaptive
/// scalability. Backends must produce bit-exact output; equivalence tests
/// in `tests/` enforce it.
pub trait DecodeBackend: Send + Sync {
    /// Stable, lowercase backend name (used in errors and logs).
    fn name(&self) -> &'static str;

    /// True when this backend can run on the current host. Calling a
    /// `decode_*` method on an unavailable backend returns
    /// [`RecoilError::BackendUnavailable`] instead of panicking.
    fn is_available(&self) -> bool {
        true
    }

    /// Decodes a byte stream into `out` (which must hold exactly
    /// `stream.num_symbols` symbols).
    fn decode_u8(&self, req: &DecodeRequest<'_>, out: &mut [u8]) -> Result<(), RecoilError>;

    /// Decodes a 16-bit-symbol stream into `out`.
    fn decode_u16(&self, req: &DecodeRequest<'_>, out: &mut [u16]) -> Result<(), RecoilError>;

    /// Decodes a stream whose model varies per symbol position (the
    /// hyperprior/latents path). Backends without an adaptive fast path
    /// fall back to the scalar three-phase decoder.
    fn decode_adaptive(
        &self,
        stream: &EncodedStream,
        metadata: &RecoilMetadata,
        provider: &dyn ModelProvider,
        out: &mut [u16],
    ) -> Result<(), RecoilError>;

    /// Decodes only the metadata segments in `segments` (a contiguous
    /// range), writing each segment's **absolutely indexed** region of
    /// `out` (`bounds[m]..bounds[m+1]`) and leaving the rest untouched.
    /// `out` must cover at least the requested segments' symbols; it may
    /// be shorter than the full stream.
    ///
    /// This is the streaming building block: `req.stream.words` may be an
    /// incomplete prefix of the declared stream, as long as it covers every
    /// word the requested segments read (interior segment `m` needs
    /// `splits[m].offset + 1` words; the final segment needs the complete
    /// stream). See [`crate::validate_segment_decode`] for the exact
    /// contract. Output must be bit-identical to the matching region of a
    /// full decode.
    fn decode_u8_segments(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [u8],
    ) -> Result<(), RecoilError> {
        decode_segments_pooled(req.stream, req.metadata, req.model, None, segments, out)
    }

    /// [`DecodeBackend::decode_u8_segments`] for 16-bit-symbol streams.
    fn decode_u16_segments(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [u16],
    ) -> Result<(), RecoilError> {
        decode_segments_pooled(req.stream, req.metadata, req.model, None, segments, out)
    }
}

/// Building block for [`DecodeBackend`] implementations: the scalar (or
/// thread-pooled) three-phase decode over any model provider.
///
/// Generic over the provider on purpose: backends that hold a concrete
/// [`StaticModelProvider`] get a monomorphized decode loop whose LUT
/// lookup inlines into the fast loop (`recoil_rans::fast`), while the
/// adaptive path can still pass `&dyn ModelProvider`.
pub fn decode_pooled<S: Symbol, P: ModelProvider + ?Sized>(
    stream: &EncodedStream,
    metadata: &RecoilMetadata,
    provider: &P,
    pool: Option<&ThreadPool>,
    out: &mut [S],
) -> Result<(), RecoilError> {
    decode_into_impl(stream, metadata, provider, pool, out).map_err(RecoilError::from)
}

/// Building block for [`DecodeBackend::decode_u8_segments`] /
/// [`DecodeBackend::decode_u16_segments`] implementations: the scalar (or
/// thread-pooled) three-phase decode of a contiguous segment range, with
/// `stream.words` allowed to be a prefix covering those segments. Generic
/// over the provider for the same devirtualization reason as
/// [`decode_pooled`].
pub fn decode_segments_pooled<S: Symbol, P: ModelProvider + ?Sized>(
    stream: &EncodedStream,
    metadata: &RecoilMetadata,
    provider: &P,
    pool: Option<&ThreadPool>,
    segments: Range<u64>,
    out: &mut [S],
) -> Result<(), RecoilError> {
    decode_segments_impl(stream, metadata, provider, pool, segments, out).map_err(RecoilError::from)
}

/// Serial reference backend: always available, no threads, no SIMD.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarBackend;

impl DecodeBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn decode_u8(&self, req: &DecodeRequest<'_>, out: &mut [u8]) -> Result<(), RecoilError> {
        decode_pooled(req.stream, req.metadata, req.model, None, out)
    }

    fn decode_u16(&self, req: &DecodeRequest<'_>, out: &mut [u16]) -> Result<(), RecoilError> {
        decode_pooled(req.stream, req.metadata, req.model, None, out)
    }

    fn decode_adaptive(
        &self,
        stream: &EncodedStream,
        metadata: &RecoilMetadata,
        provider: &dyn ModelProvider,
        out: &mut [u16],
    ) -> Result<(), RecoilError> {
        decode_pooled(stream, metadata, provider, None, out)
    }
}

/// Thread-pool backend: one decode task per metadata segment, dynamically
/// balanced over a persistent [`ThreadPool`].
pub struct PooledBackend {
    pool: ThreadPool,
}

impl PooledBackend {
    /// Backend decoding on `threads` threads (`threads - 1` workers plus
    /// the calling thread).
    pub fn new(threads: usize) -> Self {
        Self {
            pool: ThreadPool::new(threads.saturating_sub(1)),
        }
    }

    /// Backend sized to the machine's logical CPU count.
    pub fn with_default_parallelism() -> Self {
        Self {
            pool: ThreadPool::with_default_parallelism(),
        }
    }

    /// Wraps an existing pool.
    pub fn from_pool(pool: ThreadPool) -> Self {
        Self { pool }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }
}

impl DecodeBackend for PooledBackend {
    fn name(&self) -> &'static str {
        "pooled"
    }

    fn decode_u8(&self, req: &DecodeRequest<'_>, out: &mut [u8]) -> Result<(), RecoilError> {
        decode_pooled(req.stream, req.metadata, req.model, Some(&self.pool), out)
    }

    fn decode_u16(&self, req: &DecodeRequest<'_>, out: &mut [u16]) -> Result<(), RecoilError> {
        decode_pooled(req.stream, req.metadata, req.model, Some(&self.pool), out)
    }

    fn decode_adaptive(
        &self,
        stream: &EncodedStream,
        metadata: &RecoilMetadata,
        provider: &dyn ModelProvider,
        out: &mut [u16],
    ) -> Result<(), RecoilError> {
        decode_pooled(stream, metadata, provider, Some(&self.pool), out)
    }

    fn decode_u8_segments(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [u8],
    ) -> Result<(), RecoilError> {
        decode_segments_pooled(
            req.stream,
            req.metadata,
            req.model,
            Some(&self.pool),
            segments,
            out,
        )
    }

    fn decode_u16_segments(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [u16],
    ) -> Result<(), RecoilError> {
        decode_segments_pooled(
            req.stream,
            req.metadata,
            req.model,
            Some(&self.pool),
            segments,
            out,
        )
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
}

/// Symbol types the [`Codec`] facade can route through a boxed
/// [`DecodeBackend`] (the backend trait is object-safe, so dispatch by
/// symbol width happens here instead of via generic trait methods).
pub trait CodecSymbol: Symbol + sealed::Sealed {
    /// Routes `req` to the width-matching backend entry point.
    fn run_backend(
        backend: &dyn DecodeBackend,
        req: &DecodeRequest<'_>,
        out: &mut [Self],
    ) -> Result<(), RecoilError>;

    /// Routes a segment-range decode to the width-matching backend entry
    /// point (the streaming path).
    fn run_backend_segments(
        backend: &dyn DecodeBackend,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [Self],
    ) -> Result<(), RecoilError>;
}

impl CodecSymbol for u8 {
    fn run_backend(
        backend: &dyn DecodeBackend,
        req: &DecodeRequest<'_>,
        out: &mut [Self],
    ) -> Result<(), RecoilError> {
        backend.decode_u8(req, out)
    }

    fn run_backend_segments(
        backend: &dyn DecodeBackend,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [Self],
    ) -> Result<(), RecoilError> {
        backend.decode_u8_segments(req, segments, out)
    }
}

impl CodecSymbol for u16 {
    fn run_backend(
        backend: &dyn DecodeBackend,
        req: &DecodeRequest<'_>,
        out: &mut [Self],
    ) -> Result<(), RecoilError> {
        backend.decode_u16(req, out)
    }

    fn run_backend_segments(
        backend: &dyn DecodeBackend,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [Self],
    ) -> Result<(), RecoilError> {
        backend.decode_u16_segments(req, segments, out)
    }
}

/// One encoded payload: the container (bitstream + split metadata) bundled
/// with the static model the codec built for it.
///
/// The model travels with the content because decoding needs it; the
/// paper's size tables exclude it (identical across variations), and the
/// [`RecoilContainer`] inside remains the unit the server stores and the
/// wire format serializes.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Bitstream and split metadata.
    pub container: RecoilContainer,
    /// The static model the payload was encoded with.
    pub model: StaticModelProvider,
    /// Width of the original symbols (8 or 16) — decoding checks it.
    pub symbol_bits: u32,
}

impl Encoded {
    /// Payload bytes of the bitstream alone (variation (a) baseline).
    pub fn stream_bytes(&self) -> u64 {
        self.container.stream_bytes()
    }

    /// Serialized metadata size in bytes.
    pub fn metadata_bytes(&self) -> u64 {
        self.container.metadata_bytes()
    }

    /// Total transfer size: payload + metadata.
    pub fn total_bytes(&self) -> u64 {
        self.container.total_bytes()
    }
}

/// Builder for [`Codec`]; see the module docs for the shape of the API.
pub struct CodecBuilder {
    config: EncoderConfig,
    backend: Option<Box<dyn DecodeBackend>>,
}

impl CodecBuilder {
    /// Sets the interleaved lane count `W` (default 32).
    pub fn ways(mut self, ways: u32) -> Self {
        self.config.ways = ways;
        self
    }

    /// Sets the maximum parallel segments planned into metadata
    /// (default 64).
    pub fn max_segments(mut self, max_segments: u64) -> Self {
        self.config.max_segments = max_segments;
        self
    }

    /// Sets the quantization level `n` (default 11).
    pub fn quant_bits(mut self, quant_bits: u32) -> Self {
        self.config.quant_bits = quant_bits;
        self
    }

    /// Sets the split-candidate scoring strategy (default
    /// [`Heuristic::SyncAware`]).
    pub fn heuristic(mut self, heuristic: Heuristic) -> Self {
        self.config.heuristic = heuristic;
        self
    }

    /// Sets how many split candidates the planner scores per target.
    pub fn max_candidates(mut self, max_candidates: usize) -> Self {
        self.config.max_candidates = max_candidates;
        self
    }

    /// Replaces the whole encoder configuration at once.
    pub fn encoder_config(mut self, config: EncoderConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the decode backend (default [`ScalarBackend`]).
    pub fn backend(mut self, backend: impl DecodeBackend + 'static) -> Self {
        self.backend = Some(Box::new(backend));
        self
    }

    /// Validates the configuration and produces the codec.
    ///
    /// Invalid values (`ways == 0`, `quant_bits > 16`, `max_segments == 0`)
    /// are rejected here with [`RecoilError::InvalidConfig`]; an explicitly
    /// chosen backend that cannot run on this host is rejected with
    /// [`RecoilError::BackendUnavailable`].
    pub fn build(self) -> Result<Codec, RecoilError> {
        self.config.validate()?;
        let backend = self.backend.unwrap_or_else(|| Box::new(ScalarBackend));
        if !backend.is_available() {
            return Err(RecoilError::BackendUnavailable {
                backend: backend.name(),
            });
        }
        Ok(Codec {
            config: self.config,
            backend,
        })
    }
}

/// A validated, reusable encode/decode pipeline.
pub struct Codec {
    config: EncoderConfig,
    backend: Box<dyn DecodeBackend>,
}

impl Codec {
    /// Starts a builder with the default configuration
    /// (`ways = 32`, `max_segments = 64`, `quant_bits = 11`,
    /// sync-aware heuristic, scalar backend).
    pub fn builder() -> CodecBuilder {
        CodecBuilder {
            config: EncoderConfig::default(),
            backend: None,
        }
    }

    /// Codec from a ready-made configuration and the default scalar
    /// backend.
    pub fn from_config(config: EncoderConfig) -> Result<Self, RecoilError> {
        Self::builder().encoder_config(config).build()
    }

    /// The validated encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// The decode backend `decode`/`decode_into` dispatch to.
    pub fn backend(&self) -> &dyn DecodeBackend {
        self.backend.as_ref()
    }

    /// Builds the order-0 byte model [`Codec::encode`] uses, rejecting
    /// alphabets whose support cannot fit in `2^quant_bits`.
    fn build_model_u8(&self, data: &[u8]) -> Result<StaticModelProvider, RecoilError> {
        let table = if data.is_empty() {
            // A zero-symbol payload still needs a well-formed model for the
            // container; an even two-symbol split satisfies every quantizer
            // invariant at any level n >= 1.
            CdfTable::from_freqs(
                vec![1 << (self.config.quant_bits - 1); 2],
                self.config.quant_bits,
            )
        } else {
            let mut seen = [false; 256];
            for &b in data {
                seen[b as usize] = true;
            }
            self.check_support(seen.iter().filter(|&&s| s).count())?;
            CdfTable::of_bytes(data, self.config.quant_bits)
        };
        Ok(StaticModelProvider::new(table))
    }

    /// Order-0 model for 16-bit symbols; the alphabet covers `0..=max(data)`.
    fn build_model_u16(&self, data: &[u16]) -> Result<StaticModelProvider, RecoilError> {
        let table = if data.is_empty() {
            CdfTable::from_freqs(
                vec![1 << (self.config.quant_bits - 1); 2],
                self.config.quant_bits,
            )
        } else {
            let alphabet = *data.iter().max().expect("non-empty") as usize + 1;
            let mut seen = vec![false; alphabet];
            for &s in data {
                seen[s as usize] = true;
            }
            self.check_support(seen.iter().filter(|&&s| s).count())?;
            CdfTable::of_u16(data, alphabet, self.config.quant_bits)
        };
        Ok(StaticModelProvider::new(table))
    }

    /// Encodes bytes: builds an order-0 static model at the configured
    /// quantization level, encodes one interleaved bitstream, and plans
    /// split metadata for up to `max_segments` parallel decoders.
    pub fn encode(&self, data: &[u8]) -> Result<Encoded, RecoilError> {
        let model = self.build_model_u8(data)?;
        let container = self.encode_with_provider(data, &model)?;
        Ok(Encoded {
            container,
            model,
            symbol_bits: 8,
        })
    }

    /// [`Codec::encode`], with the encode pass parallelized over `pool`.
    /// The output is byte-identical to the serial encode — the pool changes
    /// wall-clock time, never bytes (see `crate::encoder`).
    pub fn encode_pooled(&self, data: &[u8], pool: &ThreadPool) -> Result<Encoded, RecoilError> {
        let model = self.build_model_u8(data)?;
        let container = self.encode_with_provider_pooled(data, &model, pool)?;
        Ok(Encoded {
            container,
            model,
            symbol_bits: 8,
        })
    }

    /// Encodes 16-bit symbols; the model's alphabet covers `0..=max(data)`.
    pub fn encode_u16(&self, data: &[u16]) -> Result<Encoded, RecoilError> {
        let model = self.build_model_u16(data)?;
        let container = self.encode_with_provider(data, &model)?;
        Ok(Encoded {
            container,
            model,
            symbol_bits: 16,
        })
    }

    /// [`Codec::encode_u16`] parallelized over `pool`; bytes are identical
    /// to the serial encode.
    pub fn encode_u16_pooled(
        &self,
        data: &[u16],
        pool: &ThreadPool,
    ) -> Result<Encoded, RecoilError> {
        let model = self.build_model_u16(data)?;
        let container = self.encode_with_provider_pooled(data, &model, pool)?;
        Ok(Encoded {
            container,
            model,
            symbol_bits: 16,
        })
    }

    /// Every occurring symbol needs a nonzero quantized frequency, so the
    /// distinct-symbol count must fit in `2^quant_bits` — reported as a
    /// typed error instead of tripping the quantizer's assert.
    fn check_support(&self, support: usize) -> Result<(), RecoilError> {
        if support as u64 > 1u64 << self.config.quant_bits {
            return Err(RecoilError::config(
                "quant_bits",
                format!(
                    "data has {support} distinct symbols but only 2^{} frequency slots; \
                     raise quant_bits",
                    self.config.quant_bits
                ),
            ));
        }
        Ok(())
    }

    /// Encodes against a caller-supplied model (the adaptive/hyperprior
    /// path, or a pre-built static model shared across payloads). The
    /// caller keeps the provider; only the container is returned.
    ///
    /// A symbol the model assigns zero frequency — possible exactly here,
    /// where the model does not come from the data — is reported as
    /// [`RecoilError::UnsupportedSymbol`] with its position, instead of the
    /// divide-by-zero this used to hit inside the encode loop.
    pub fn encode_with_provider<S: Symbol, P: ModelProvider>(
        &self,
        data: &[S],
        provider: &P,
    ) -> Result<RecoilContainer, RecoilError> {
        self.check_provider(provider)?;
        encode_container(
            data,
            provider,
            self.config.ways,
            self.config.planner_config(),
        )
        .map_err(RecoilError::from)
    }

    /// [`Codec::encode_with_provider`] with the encode pass parallelized
    /// over `pool` (segment-parallel; output bytes identical to serial).
    pub fn encode_with_provider_pooled<S: Symbol, P: ModelProvider>(
        &self,
        data: &[S],
        provider: &P,
        pool: &ThreadPool,
    ) -> Result<RecoilContainer, RecoilError> {
        self.check_provider(provider)?;
        encode_container_pooled(
            data,
            provider,
            self.config.ways,
            self.config.planner_config(),
            pool,
        )
        .map_err(RecoilError::from)
    }

    fn check_provider<P: ModelProvider>(&self, provider: &P) -> Result<(), RecoilError> {
        if provider.quant_bits() != self.config.quant_bits {
            return Err(RecoilError::config(
                "quant_bits",
                format!(
                    "model quantizes to 2^{} but the codec is configured for 2^{}",
                    provider.quant_bits(),
                    self.config.quant_bits
                ),
            ));
        }
        Ok(())
    }

    /// Decodes through the codec's configured backend.
    pub fn decode<S: CodecSymbol>(&self, encoded: &Encoded) -> Result<Vec<S>, RecoilError> {
        self.decode_with(self.backend.as_ref(), encoded)
    }

    /// Decodes into a caller-provided buffer through the configured
    /// backend.
    pub fn decode_into<S: CodecSymbol>(
        &self,
        encoded: &Encoded,
        out: &mut [S],
    ) -> Result<(), RecoilError> {
        self.decode_with_into(self.backend.as_ref(), encoded, out)
    }

    /// Decodes through an explicit backend — the per-call escape hatch for
    /// callers juggling several capabilities at once.
    pub fn decode_with<S: CodecSymbol>(
        &self,
        backend: &dyn DecodeBackend,
        encoded: &Encoded,
    ) -> Result<Vec<S>, RecoilError> {
        let mut out = vec![S::from_u16(0); encoded.container.stream.num_symbols as usize];
        self.decode_with_into(backend, encoded, &mut out)?;
        Ok(out)
    }

    /// [`Codec::decode_with`] into a caller-provided buffer.
    pub fn decode_with_into<S: CodecSymbol>(
        &self,
        backend: &dyn DecodeBackend,
        encoded: &Encoded,
        out: &mut [S],
    ) -> Result<(), RecoilError> {
        if encoded.symbol_bits != S::BITS {
            return Err(RecoilError::config(
                "symbol_bits",
                format!(
                    "payload holds {}-bit symbols but a {}-bit decode was requested",
                    encoded.symbol_bits,
                    S::BITS
                ),
            ));
        }
        if !backend.is_available() {
            return Err(RecoilError::BackendUnavailable {
                backend: backend.name(),
            });
        }
        let req = DecodeRequest {
            stream: &encoded.container.stream,
            metadata: &encoded.container.metadata,
            model: &encoded.model,
        };
        S::run_backend(backend, &req, out)
    }

    /// Decodes an adaptively modelled stream (per-position models) through
    /// the configured backend's adaptive path.
    pub fn decode_adaptive(
        &self,
        stream: &EncodedStream,
        metadata: &RecoilMetadata,
        provider: &dyn ModelProvider,
    ) -> Result<Vec<u16>, RecoilError> {
        let mut out = vec![0u16; stream.num_symbols as usize];
        self.backend
            .decode_adaptive(stream, metadata, provider, &mut out)?;
        Ok(out)
    }
}

impl std::fmt::Debug for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Codec")
            .field("config", &self.config)
            .field("backend", &self.backend.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 22) as u8)
            .collect()
    }

    #[test]
    fn builder_round_trip_scalar_and_pooled() {
        let data = sample(150_000, 1);
        let codec = Codec::builder().max_segments(16).build().unwrap();
        let enc = codec.encode(&data).unwrap();
        assert_eq!(enc.container.metadata.num_segments(), 16);
        let scalar: Vec<u8> = codec.decode(&enc).unwrap();
        assert_eq!(scalar, data);
        let pooled: Vec<u8> = codec.decode_with(&PooledBackend::new(4), &enc).unwrap();
        assert_eq!(pooled, data);
    }

    #[test]
    fn invalid_configs_rejected_at_build() {
        assert!(matches!(
            Codec::builder().ways(0).build(),
            Err(RecoilError::InvalidConfig { field: "ways", .. })
        ));
        // The wire formats store `ways` in 16 bits; wider configs must be
        // rejected here, not truncated at serialization time.
        assert!(matches!(
            Codec::builder().ways(70_000).build(),
            Err(RecoilError::InvalidConfig { field: "ways", .. })
        ));
        assert!(matches!(
            Codec::builder().max_segments(0).build(),
            Err(RecoilError::InvalidConfig {
                field: "max_segments",
                ..
            })
        ));
        assert!(matches!(
            Codec::builder().quant_bits(17).build(),
            Err(RecoilError::InvalidConfig {
                field: "quant_bits",
                ..
            })
        ));
        assert!(matches!(
            Codec::builder().quant_bits(0).build(),
            Err(RecoilError::InvalidConfig {
                field: "quant_bits",
                ..
            })
        ));
    }

    #[test]
    fn u16_payloads_round_trip_and_width_is_checked() {
        let data: Vec<u16> = (0..60_000u32).map(|i| (i % 700) as u16).collect();
        let codec = Codec::builder()
            .quant_bits(12)
            .max_segments(8)
            .build()
            .unwrap();
        let enc = codec.encode_u16(&data).unwrap();
        let back: Vec<u16> = codec.decode(&enc).unwrap();
        assert_eq!(back, data);
        let wrong: Result<Vec<u8>, _> = codec.decode(&enc);
        assert!(matches!(
            wrong,
            Err(RecoilError::InvalidConfig {
                field: "symbol_bits",
                ..
            })
        ));
    }

    #[test]
    fn oversized_alphabet_is_config_error_not_quantizer_panic() {
        // 256 distinct bytes cannot each get a nonzero frequency at n = 7.
        let bytes: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let codec = Codec::builder().quant_bits(7).build().unwrap();
        assert!(matches!(
            codec.encode(&bytes),
            Err(RecoilError::InvalidConfig {
                field: "quant_bits",
                ..
            })
        ));
        // Same for 16-bit payloads whose support exceeds 2^n.
        let wide: Vec<u16> = (0..5000u16).collect();
        let codec = Codec::builder().quant_bits(11).build().unwrap();
        assert!(matches!(
            codec.encode_u16(&wide),
            Err(RecoilError::InvalidConfig {
                field: "quant_bits",
                ..
            })
        ));
    }

    #[test]
    fn empty_payload_round_trips() {
        let codec = Codec::builder().build().unwrap();
        let enc = codec.encode(&[]).unwrap();
        assert_eq!(enc.container.stream.num_symbols, 0);
        let back: Vec<u8> = codec.decode(&enc).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn provider_quant_mismatch_is_config_error() {
        let data = sample(10_000, 2);
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 12));
        let codec = Codec::builder().quant_bits(11).build().unwrap();
        assert!(matches!(
            codec.encode_with_provider(&data, &model),
            Err(RecoilError::InvalidConfig {
                field: "quant_bits",
                ..
            })
        ));
    }

    #[test]
    fn out_of_alphabet_symbol_is_typed_error_not_panic() {
        // Regression: a release build used to die on a raw divide-by-zero
        // inside the encode loop when a caller-supplied model lacked a
        // symbol present in the data.
        let mut data: Vec<u8> = sample(50_000, 4).iter().map(|&b| b % 64).collect();
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        data[12_345] = 200; // not in the model's support
        let codec = Codec::builder().build().unwrap();
        match codec.encode_with_provider(&data, &model) {
            Err(RecoilError::UnsupportedSymbol { pos, sym }) => {
                assert_eq!((pos, sym), (12_345, 200));
            }
            other => panic!("expected UnsupportedSymbol, got {other:?}"),
        }
        // The pooled path reports the same typed error.
        let pool = recoil_parallel::ThreadPool::new(3);
        assert!(matches!(
            codec.encode_with_provider_pooled(&data, &model, &pool),
            Err(RecoilError::UnsupportedSymbol { sym: 200, .. })
        ));
    }

    #[test]
    fn pooled_encode_is_byte_identical_to_serial() {
        let data = sample(200_000, 5);
        let codec = Codec::builder().max_segments(24).build().unwrap();
        let serial = codec.encode(&data).unwrap();
        let pool = recoil_parallel::ThreadPool::new(3);
        let pooled = codec.encode_pooled(&data, &pool).unwrap();
        assert_eq!(pooled.container.stream, serial.container.stream);
        assert_eq!(pooled.container.metadata, serial.container.metadata);
        let back: Vec<u8> = codec.decode(&pooled).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn matches_legacy_free_function_bytes() {
        #![allow(deprecated)]
        let data = sample(200_000, 3);
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let legacy = crate::container::encode_with_splits(&data, &model, 32, 24);
        let codec = Codec::builder().max_segments(24).build().unwrap();
        let new = codec.encode(&data).unwrap();
        assert_eq!(new.container.stream, legacy.stream);
        assert_eq!(new.container.metadata, legacy.metadata);
    }
}
