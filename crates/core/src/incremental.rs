//! Streaming decode: accept bitstream bytes as they arrive, decode segments
//! the moment they are resident.
//!
//! Recoil's split metadata makes every segment independently decodable, and
//! each interior segment only reads bitstream words at offsets up to its
//! split's recorded offset. A receiver that gets the bitstream front-to-back
//! (a network transfer, a file read) therefore never has to wait for the
//! whole payload: segment `m` becomes decodable as soon as the first
//! `splits[m].offset + 1` words have arrived. [`IncrementalDecoder`] tracks
//! exactly that — push bytes in, ask which segments turned ready, and decode
//! them through any [`DecodeBackend`] into their region of a caller-provided
//! full-stream output buffer.
//!
//! ```
//! use recoil_core::codec::{Codec, ScalarBackend};
//! use recoil_core::IncrementalDecoder;
//!
//! let data: Vec<u8> = (0..80_000u32).map(|i| (i % 199) as u8).collect();
//! let codec = Codec::builder().max_segments(16).build().unwrap();
//! let enc = codec.encode(&data).unwrap();
//!
//! // Stream the bitstream bytes in arbitrary slices.
//! let mut bytes = Vec::new();
//! for w in &enc.container.stream.words {
//!     bytes.extend_from_slice(&w.to_le_bytes());
//! }
//! let mut incr = IncrementalDecoder::new(
//!     enc.container.metadata.clone(),
//!     enc.container.stream.final_states.clone(),
//!     enc.model.clone(),
//! )
//! .unwrap();
//! let mut out = vec![0u8; data.len()];
//! for piece in bytes.chunks(4097) {
//!     incr.push_bytes(piece).unwrap();
//!     incr.decode_ready_segments(&ScalarBackend, &mut out).unwrap();
//! }
//! assert!(incr.is_finished());
//! assert_eq!(out, data);
//! ```

use crate::codec::{CodecSymbol, DecodeBackend, DecodeRequest};
use crate::error::RecoilError;
use crate::metadata::RecoilMetadata;
use crate::planner::ChunkPlan;
use recoil_models::{ModelProvider, StaticModelProvider};
use recoil_rans::{EncodedStream, RansError};
use std::ops::Range;

/// Words reserved up front; beyond this the buffer grows only as real
/// bytes arrive, so a hostile `num_words` cannot drive the allocation.
const MAX_RESERVED_WORDS: usize = 1 << 19;

/// Streaming segment decoder over split metadata (see the module docs).
///
/// The decoder owns a growing word buffer shaped like the final
/// [`EncodedStream`]; [`IncrementalDecoder::push_bytes`] appends arriving
/// bytes (handling odd-length slices), and
/// [`IncrementalDecoder::decode_ready_segments`] decodes every
/// newly-resident segment through a [`DecodeBackend`]. Segments become
/// ready strictly in order, so the decoded region of the output buffer is
/// always a prefix-aligned run of whole segments.
#[derive(Debug)]
pub struct IncrementalDecoder {
    stream: EncodedStream,
    metadata: RecoilMetadata,
    model: StaticModelProvider,
    bounds: Vec<u64>,
    /// Odd trailing byte of the previous push, waiting for its partner.
    carry: Option<u8>,
    /// Segments already decoded (a prefix of `0..num_segments`).
    decoded: u64,
}

impl IncrementalDecoder {
    /// Decoder for the stream `metadata` describes, with the per-lane final
    /// states from the transmission header and the static model to decode
    /// with.
    ///
    /// Everything is validated up front: the metadata invariants, the
    /// final-state count and range, and the model's quantization level
    /// against the metadata's.
    pub fn new(
        metadata: RecoilMetadata,
        final_states: Vec<u32>,
        model: StaticModelProvider,
    ) -> Result<Self, RecoilError> {
        metadata.validate()?;
        if model.quant_bits() != metadata.quant_bits {
            return Err(RecoilError::Decode(RansError::MalformedMetadata(format!(
                "model quantizes to 2^{} but the metadata records 2^{}",
                model.quant_bits(),
                metadata.quant_bits
            ))));
        }
        // Information-capacity bound, per readiness prefix: the symbols a
        // word prefix is claimed to carry must fit in its bits (plus the
        // per-lane state slack). Without this, hostile metadata could mark
        // a near-empty prefix as a giant ready segment and drive the
        // receiver's output allocation from a handful of received bytes —
        // the streaming analogue of the transmit-header capacity check.
        let n = metadata.quant_bits;
        let min_bits = ((1u64 << n) as f64).log2() - ((1u64 << n) as f64 - 1.0).log2();
        let slack_bits = 48.0 * metadata.ways as f64 + 64.0;
        let fits = |symbols: u64, words: u64| {
            symbols as f64 * min_bits <= (16.0 * words as f64 + slack_bits) * 1.001
        };
        if !fits(metadata.num_symbols, metadata.num_words) {
            return Err(RecoilError::Decode(RansError::MalformedMetadata(format!(
                "symbol count {} impossible for {} bitstream words",
                metadata.num_symbols, metadata.num_words
            ))));
        }
        for (k, s) in metadata.splits.iter().enumerate() {
            if !fits(s.sync_start(), s.offset + 1) {
                return Err(RecoilError::Decode(RansError::MalformedMetadata(format!(
                    "split {k}: {} symbols claimed decodable from a {}-word prefix",
                    s.sync_start(),
                    s.offset + 1
                ))));
            }
        }
        let stream = EncodedStream {
            words: Vec::with_capacity((metadata.num_words as usize).min(MAX_RESERVED_WORDS)),
            final_states,
            num_symbols: metadata.num_symbols,
            ways: metadata.ways,
        };
        stream.validate()?;
        let bounds = metadata.segment_bounds();
        Ok(Self {
            stream,
            metadata,
            model,
            bounds,
            carry: None,
            decoded: 0,
        })
    }

    /// [`IncrementalDecoder::new`], additionally checking that `plan` is a
    /// faithful transmission schedule for the metadata (contiguous word
    /// ranges, segment ranges without overlap or gaps, completions reported
    /// in the right chunk). A sender and receiver agreeing on a malformed
    /// plan would decode segments whose words have not arrived; the plan is
    /// rejected here with [`RecoilError::Decode`].
    pub fn with_plan(
        metadata: RecoilMetadata,
        final_states: Vec<u32>,
        model: StaticModelProvider,
        plan: &ChunkPlan,
    ) -> Result<Self, RecoilError> {
        plan.validate_against(&metadata)?;
        Self::new(metadata, final_states, model)
    }

    /// The metadata this decoder streams against.
    pub fn metadata(&self) -> &RecoilMetadata {
        &self.metadata
    }

    /// Total bitstream bytes the stream declares (2 per word).
    pub fn bytes_expected(&self) -> u64 {
        self.metadata.num_words * 2
    }

    /// Bitstream bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.stream.words.len() as u64 * 2 + self.carry.is_some() as u64
    }

    /// True once the complete bitstream has arrived.
    pub fn is_complete(&self) -> bool {
        self.stream.words.len() as u64 == self.metadata.num_words && self.carry.is_none()
    }

    /// Total number of segments in the metadata.
    pub fn num_segments(&self) -> u64 {
        self.metadata.num_segments()
    }

    /// Segments already decoded by [`IncrementalDecoder::decode_ready_segments`].
    pub fn decoded_segments(&self) -> u64 {
        self.decoded
    }

    /// True once every segment has been decoded.
    pub fn is_finished(&self) -> bool {
        self.decoded == self.num_segments()
    }

    /// Number of fully resident (decodable) segments — always a prefix of
    /// the segment sequence, because segment `m` needs the word prefix up
    /// to `splits[m].offset` and offsets ascend with `m`.
    pub fn ready_segments(&self) -> u64 {
        if self.is_complete() {
            return self.num_segments();
        }
        let have = self.stream.words.len() as u64;
        self.metadata.splits.partition_point(|s| s.offset < have) as u64
    }

    /// Output symbol range `bounds[m] .. bounds[m+1]` of segment `m`.
    pub fn segment_symbols(&self, m: u64) -> Range<usize> {
        self.bounds[m as usize] as usize..self.bounds[m as usize + 1] as usize
    }

    /// Symbols covered by the currently ready segments — the minimum
    /// output-buffer length the next [`IncrementalDecoder::decode_ready_segments`]
    /// call needs. Receivers size their output from this (which grows only
    /// as real bytes arrive) rather than from the declared total.
    pub fn ready_symbols(&self) -> usize {
        self.bounds[self.ready_segments() as usize] as usize
    }

    /// Appends arriving bitstream bytes (any length, including odd slices;
    /// the dangling byte is held until its partner arrives). Bytes beyond
    /// the declared stream size are rejected with [`RecoilError::Decode`].
    pub fn push_bytes(&mut self, mut bytes: &[u8]) -> Result<(), RecoilError> {
        if self.bytes_received() + bytes.len() as u64 > self.bytes_expected() {
            return Err(RecoilError::Decode(RansError::MalformedStream(format!(
                "stream overrun: {} bytes pushed into a {}-byte bitstream",
                self.bytes_received() + bytes.len() as u64,
                self.bytes_expected()
            ))));
        }
        if let Some(lo) = self.carry.take() {
            match bytes.split_first() {
                Some((&hi, rest)) => {
                    self.stream.words.push(u16::from_le_bytes([lo, hi]));
                    bytes = rest;
                }
                None => {
                    self.carry = Some(lo);
                    return Ok(());
                }
            }
        }
        let mut pairs = bytes.chunks_exact(2);
        for pair in &mut pairs {
            self.stream
                .words
                .push(u16::from_le_bytes([pair[0], pair[1]]));
        }
        self.carry = pairs.remainder().first().copied();
        Ok(())
    }

    /// Decodes every segment that became resident since the last call,
    /// through `backend`, into the matching (absolutely indexed) region of
    /// `out`. The buffer must hold at least
    /// [`IncrementalDecoder::ready_symbols`] entries — a full
    /// `num_symbols` buffer always works, but a receiver may grow it with
    /// readiness instead. Returns the symbol range newly written — empty
    /// when nothing new is ready.
    ///
    /// The backend's segment-range entry point receives the current word
    /// prefix; outputs are bit-identical to a buffered full decode of the
    /// complete stream.
    pub fn decode_ready_segments<S: CodecSymbol>(
        &mut self,
        backend: &dyn DecodeBackend,
        out: &mut [S],
    ) -> Result<Range<usize>, RecoilError> {
        if !backend.is_available() {
            return Err(RecoilError::BackendUnavailable {
                backend: backend.name(),
            });
        }
        let ready = self.ready_segments();
        if ready <= self.decoded {
            let at = self.bounds[self.decoded as usize] as usize;
            return Ok(at..at);
        }
        let req = DecodeRequest {
            stream: &self.stream,
            metadata: &self.metadata,
            model: &self.model,
        };
        S::run_backend_segments(backend, &req, self.decoded..ready, out)?;
        let range =
            self.bounds[self.decoded as usize] as usize..self.bounds[ready as usize] as usize;
        self.decoded = ready;
        Ok(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Codec, Encoded, PooledBackend, ScalarBackend};
    use crate::combine::try_combine_splits;
    use crate::planner::{plan_chunks, ChunkPlan, PlannedChunk};

    fn sample(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 23) as u8)
            .collect()
    }

    fn encode(data: &[u8], segments: u64) -> Encoded {
        Codec::builder()
            .max_segments(segments)
            .build()
            .unwrap()
            .encode(data)
            .unwrap()
    }

    fn stream_bytes(enc: &Encoded) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(enc.container.stream.words.len() * 2);
        for w in &enc.container.stream.words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes
    }

    fn incr_for(enc: &Encoded, meta: &RecoilMetadata) -> IncrementalDecoder {
        IncrementalDecoder::new(
            meta.clone(),
            enc.container.stream.final_states.clone(),
            enc.model.clone(),
        )
        .unwrap()
    }

    #[test]
    fn streamed_decode_matches_buffered_at_any_granularity() {
        let data = sample(120_000, 1);
        let enc = encode(&data, 16);
        let bytes = stream_bytes(&enc);
        for piece in [1usize, 3, 997, 8192, bytes.len().max(1)] {
            let mut incr = incr_for(&enc, &enc.container.metadata);
            let mut out = vec![0u8; data.len()];
            let mut covered = 0usize;
            for chunk in bytes.chunks(piece) {
                incr.push_bytes(chunk).unwrap();
                let r = incr
                    .decode_ready_segments(&ScalarBackend, &mut out)
                    .unwrap();
                assert_eq!(r.start, covered, "ranges are contiguous");
                covered = r.end;
                // Already-decoded symbols are final and correct.
                assert_eq!(&out[..covered], &data[..covered], "piece {piece}");
            }
            assert!(incr.is_complete() && incr.is_finished());
            assert_eq!(out, data, "piece {piece}");
        }
    }

    #[test]
    fn readiness_follows_split_offsets() {
        let data = sample(200_000, 2);
        let enc = encode(&data, 8);
        let meta = &enc.container.metadata;
        let mut incr = incr_for(&enc, meta);
        assert_eq!(incr.ready_segments(), 0);
        let bytes = stream_bytes(&enc);
        // One byte short of the first split's words: nothing ready.
        let first_need = (meta.splits[0].offset as usize + 1) * 2;
        incr.push_bytes(&bytes[..first_need - 1]).unwrap();
        assert_eq!(incr.ready_segments(), 0);
        incr.push_bytes(&bytes[first_need - 1..first_need]).unwrap();
        assert_eq!(incr.ready_segments(), 1);
        // Everything but the last byte: all interior segments, not the final.
        incr.push_bytes(&bytes[first_need..bytes.len() - 1])
            .unwrap();
        assert_eq!(incr.ready_segments(), meta.num_segments() - 1);
        incr.push_bytes(&bytes[bytes.len() - 1..]).unwrap();
        assert_eq!(incr.ready_segments(), meta.num_segments());
    }

    #[test]
    fn combined_tier_streams_identically() {
        let data = sample(150_000, 3);
        let enc = encode(&data, 64);
        let small = try_combine_splits(&enc.container.metadata, 5).unwrap();
        let bytes = stream_bytes(&enc);
        let mut incr = incr_for(&enc, &small);
        let mut out = vec![0u8; data.len()];
        for chunk in bytes.chunks(4096) {
            incr.push_bytes(chunk).unwrap();
            incr.decode_ready_segments(&PooledBackend::new(3), &mut out)
                .unwrap();
        }
        assert!(incr.is_finished());
        assert_eq!(out, data);
    }

    #[test]
    fn empty_and_tiny_streams_finish() {
        for len in [0usize, 1, 2, 33] {
            let data = sample(len, 4);
            let enc = encode(&data, 4);
            let bytes = stream_bytes(&enc);
            let mut incr = incr_for(&enc, &enc.container.metadata);
            let mut out = vec![0u8; len];
            incr.push_bytes(&bytes).unwrap();
            incr.decode_ready_segments(&ScalarBackend, &mut out)
                .unwrap();
            assert!(incr.is_finished(), "len {len}");
            assert_eq!(out, data, "len {len}");
        }
    }

    #[test]
    fn overrun_is_a_typed_decode_error() {
        let data = sample(10_000, 5);
        let enc = encode(&data, 4);
        let bytes = stream_bytes(&enc);
        let mut incr = incr_for(&enc, &enc.container.metadata);
        incr.push_bytes(&bytes).unwrap();
        assert!(matches!(incr.push_bytes(&[0]), Err(RecoilError::Decode(_))));
    }

    #[test]
    fn malformed_chunk_plans_are_rejected() {
        let data = sample(100_000, 6);
        let enc = encode(&data, 8);
        let meta = &enc.container.metadata;
        let good = plan_chunks(meta, 4096);
        assert!(good.validate_against(meta).is_ok());
        IncrementalDecoder::with_plan(
            meta.clone(),
            enc.container.stream.final_states.clone(),
            enc.model.clone(),
            &good,
        )
        .unwrap();

        let reject = |plan: &ChunkPlan, what: &str| {
            let got = IncrementalDecoder::with_plan(
                meta.clone(),
                enc.container.stream.final_states.clone(),
                enc.model.clone(),
                plan,
            );
            assert!(
                matches!(got, Err(RecoilError::Decode(_))),
                "{what}: expected RecoilError::Decode, got {got:?}"
            );
        };

        // Overlapping segment ranges.
        let mut overlap = good.clone();
        overlap.chunks.last_mut().unwrap().segments.start = 0;
        reject(&overlap, "overlapping segments");

        // A gap in the segment coverage.
        let mut gap = good.clone();
        let last = gap.chunks.last_mut().unwrap();
        last.segments.end -= 1;
        reject(&gap, "segment gap");

        // Word ranges that skip bytes.
        let mut skip = good.clone();
        skip.chunks.first_mut().unwrap().words.end -= 1;
        reject(&skip, "word gap");

        // A segment reported complete before its words arrived.
        let mut early = good.clone();
        let (head, tail) = (early.chunks[0].clone(), early.chunks.len());
        if tail > 1 {
            early.chunks[0] = PlannedChunk {
                words: head.words.clone(),
                segments: head.segments.start..meta.num_segments(),
            };
            early.chunks.truncate(1);
            early.chunks.push(PlannedChunk {
                words: head.words.end..meta.num_words,
                segments: meta.num_segments()..meta.num_segments(),
            });
            reject(&early, "premature completion");
        }

        // An empty plan.
        reject(&ChunkPlan { chunks: Vec::new() }, "empty plan");
    }

    #[test]
    fn plan_chunks_aligns_to_split_boundaries() {
        let data = sample(300_000, 7);
        let enc = encode(&data, 32);
        let meta = &enc.container.metadata;
        let plan = plan_chunks(meta, 8 * 1024);
        plan.validate_against(meta).unwrap();
        assert!(
            plan.len() > 4,
            "expected several chunks, got {}",
            plan.len()
        );
        // Most chunks end exactly at a segment-completion boundary.
        let aligned = plan
            .chunks
            .iter()
            .filter(|c| !c.segments.is_empty())
            .count();
        assert!(
            aligned * 2 > plan.len(),
            "{aligned} of {} aligned",
            plan.len()
        );
        // Tiny targets and huge targets stay valid.
        plan_chunks(meta, 1).validate_against(meta).unwrap();
        plan_chunks(meta, usize::MAX / 4)
            .validate_against(meta)
            .unwrap();
        // Huge target ⇒ single chunk completing everything.
        assert_eq!(plan_chunks(meta, usize::MAX / 4).len(), 1);
    }

    #[test]
    fn hostile_capacity_claims_rejected_at_construction() {
        use crate::metadata::{LaneInit, SplitPoint};
        let enc = encode(&sample(10_000, 9), 4);
        let model = enc.model.clone();
        let states = enc.container.stream.final_states.clone();
        let ways = enc.container.metadata.ways;

        // A header-only attack: giant declared stream, no splits. The
        // whole-stream capacity bound rejects it before any allocation.
        let whole = RecoilMetadata {
            ways,
            quant_bits: 11,
            num_symbols: u64::MAX / 2,
            num_words: 4,
            splits: vec![],
        };
        assert!(matches!(
            IncrementalDecoder::new(whole, states.clone(), model.clone()),
            Err(RecoilError::Decode(_))
        ));

        // A prefix attack: structurally valid metadata whose first split
        // claims ~2^40 symbols become ready after a 1-word prefix. Without
        // the per-split bound, a streaming receiver would size its output
        // from two received bytes.
        let huge_pos = (1u64 << 40) * ways as u64;
        let prefix = RecoilMetadata {
            ways,
            quant_bits: 11,
            num_symbols: huge_pos + ways as u64 + 2,
            num_words: u64::MAX / 32,
            splits: vec![SplitPoint {
                offset: 0,
                lanes: (0..ways as u64)
                    .map(|l| LaneInit {
                        state: 1,
                        pos: huge_pos + l,
                    })
                    .collect(),
            }],
        };
        prefix.validate().expect("structurally valid on purpose");
        assert!(matches!(
            IncrementalDecoder::new(prefix, states, model),
            Err(RecoilError::Decode(_))
        ));
    }

    #[test]
    fn output_buffer_may_grow_with_readiness() {
        let data = sample(90_000, 10);
        let enc = encode(&data, 8);
        let bytes = stream_bytes(&enc);
        let mut incr = incr_for(&enc, &enc.container.metadata);
        let mut out: Vec<u8> = Vec::new();
        for chunk in bytes.chunks(4096) {
            incr.push_bytes(chunk).unwrap();
            let need = incr.ready_symbols();
            if need > out.len() {
                out.resize(need, 0);
            }
            incr.decode_ready_segments(&ScalarBackend, &mut out)
                .unwrap();
        }
        assert!(incr.is_finished());
        assert_eq!(out, data);
    }

    #[test]
    fn model_mismatch_rejected_at_construction() {
        let data = sample(20_000, 8);
        let enc = encode(&data, 4);
        let wrong = Codec::builder()
            .quant_bits(9)
            .build()
            .unwrap()
            .encode(&data)
            .unwrap()
            .model;
        assert!(matches!(
            IncrementalDecoder::new(
                enc.container.metadata.clone(),
                enc.container.stream.final_states.clone(),
                wrong,
            ),
            Err(RecoilError::Decode(_))
        ));
    }
}
