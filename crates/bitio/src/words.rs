//! Forward-written, backward-read u16 word streams.
//!
//! rANS renormalization (paper Def. 2.2, `b = 16`) writes one u16 word per
//! renorm event during encoding and reads the words back in exactly the
//! reverse order during decoding. Offsets are word indices, as in the
//! paper's split metadata ("Bitstream Offset").

/// Append-only stream of u16 renormalization words.
///
/// The encoder owns one of these; `offset()` before a push is the offset the
/// pushed word will occupy, which is what Recoil records in split metadata.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WordStream {
    words: Vec<u16>,
}

impl WordStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty stream with room for `cap` words.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            words: Vec::with_capacity(cap),
        }
    }

    /// Appends one word and returns the offset it was written at.
    #[inline]
    pub fn push(&mut self, word: u16) -> u64 {
        let at = self.words.len() as u64;
        self.words.push(word);
        at
    }

    /// Number of words written so far (= offset of the next word).
    #[inline]
    pub fn len(&self) -> u64 {
        self.words.len() as u64
    }

    /// True when no words have been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Borrow the words for decoding.
    #[inline]
    pub fn as_slice(&self) -> &[u16] {
        &self.words
    }

    /// Mutable access to the backing vector, for bulk writers: the fast
    /// encode engine appends whole renorm groups at once instead of going
    /// through per-word [`WordStream::push`] calls. The stream stays
    /// append-only by convention — callers must only extend the vector.
    #[inline]
    pub fn vec_mut(&mut self) -> &mut Vec<u16> {
        &mut self.words
    }

    /// Consume the stream, returning the raw words.
    pub fn into_words(self) -> Vec<u16> {
        self.words
    }

    /// Total size in bytes (2 bytes per word), as reported in the tables.
    pub fn byte_len(&self) -> u64 {
        self.words.len() as u64 * 2
    }
}

impl From<Vec<u16>> for WordStream {
    fn from(words: Vec<u16>) -> Self {
        Self { words }
    }
}

/// Cursor reading a word slice from a start offset toward the front.
///
/// `next()` returns the word at the current offset and moves one word toward
/// offset 0 — the decode-side mirror of the encoder's forward writes. Each
/// decoder thread in Recoil owns an independent reader positioned at its
/// split's recorded bitstream offset; readers never mutate the stream, so
/// overlapping tail reads between neighbouring threads (which the
/// Cross-Boundary Phase performs by design) are safe.
#[derive(Debug, Clone, Copy)]
pub struct BackwardWordReader<'a> {
    words: &'a [u16],
    /// Offset of the next word to read, or `None` once the front is passed.
    next: Option<u64>,
}

impl<'a> BackwardWordReader<'a> {
    /// Reader whose first `next()` returns `words[start]`.
    ///
    /// `start` may be `words.len() - 1` (full stream) or any interior split
    /// offset. Panics if `start >= words.len()` on a non-empty request.
    pub fn new(words: &'a [u16], start: u64) -> Self {
        assert!(
            (start as usize) < words.len() || words.is_empty(),
            "start offset {start} out of range for {} words",
            words.len()
        );
        let next = if words.is_empty() { None } else { Some(start) };
        Self { words, next }
    }

    /// Reader positioned at the back of the stream (normal full decode).
    pub fn from_end(words: &'a [u16]) -> Self {
        if words.is_empty() {
            Self { words, next: None }
        } else {
            Self::new(words, words.len() as u64 - 1)
        }
    }

    /// Reader resuming from a saved cursor (`None` = already exhausted) —
    /// the inverse of [`BackwardWordReader::offset`], used when a fast
    /// decode loop hands its raw cursor back to the careful tail path.
    pub fn at(words: &'a [u16], next: Option<u64>) -> Self {
        match next {
            Some(start) => Self::new(words, start),
            None => Self { words, next: None },
        }
    }

    /// Offset of the next word to be read, if any.
    #[inline]
    pub fn offset(&self) -> Option<u64> {
        self.next
    }

    /// Number of words still readable.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.next.map_or(0, |n| n + 1)
    }

    /// Reads one word moving toward the front. `None` once exhausted.
    ///
    /// Deliberately named like `Iterator::next` (it is a consuming cursor),
    /// but not an `Iterator` impl: the decode hot paths need the inherent
    /// method to inline without trait dispatch.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<u16> {
        let at = self.next?;
        let w = self.words[at as usize];
        self.next = at.checked_sub(1);
        Some(w)
    }

    /// Underlying word slice (shared with other readers).
    #[inline]
    pub fn words(&self) -> &'a [u16] {
        self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_reports_offsets() {
        let mut s = WordStream::new();
        assert_eq!(s.push(0xAAAA), 0);
        assert_eq!(s.push(0xBBBB), 1);
        assert_eq!(s.push(0xCCCC), 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.byte_len(), 6);
    }

    #[test]
    fn backward_reader_reverses_writes() {
        let mut s = WordStream::new();
        for w in [1u16, 2, 3, 4, 5] {
            s.push(w);
        }
        let mut r = BackwardWordReader::from_end(s.as_slice());
        let got: Vec<u16> = std::iter::from_fn(|| r.next()).collect();
        assert_eq!(got, vec![5, 4, 3, 2, 1]);
        assert_eq!(r.next(), None);
    }

    #[test]
    fn backward_reader_from_interior_offset() {
        let s: WordStream = vec![10u16, 20, 30, 40].into();
        let mut r = BackwardWordReader::new(s.as_slice(), 2);
        assert_eq!(r.offset(), Some(2));
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.next(), Some(30));
        assert_eq!(r.next(), Some(20));
        assert_eq!(r.next(), Some(10));
        assert_eq!(r.next(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn at_round_trips_offsets() {
        let s: WordStream = vec![10u16, 20, 30].into();
        let mut r = BackwardWordReader::from_end(s.as_slice());
        assert_eq!(r.next(), Some(30));
        let mut resumed = BackwardWordReader::at(s.as_slice(), r.offset());
        assert_eq!(resumed.next(), Some(20));
        let exhausted = BackwardWordReader::at(s.as_slice(), None);
        assert_eq!(exhausted.remaining(), 0);
    }

    #[test]
    fn empty_stream_reader_is_exhausted() {
        let s = WordStream::new();
        let mut r = BackwardWordReader::from_end(s.as_slice());
        assert_eq!(r.next(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_start_panics() {
        let s: WordStream = vec![1u16].into();
        let _ = BackwardWordReader::new(s.as_slice(), 1);
    }

    #[test]
    fn two_readers_share_tail_words() {
        // Mirrors the Cross-Boundary Phase: two threads read overlapping
        // offsets of the same stream independently.
        let s: WordStream = vec![7u16, 8, 9].into();
        let mut a = BackwardWordReader::new(s.as_slice(), 2);
        let mut b = BackwardWordReader::new(s.as_slice(), 2);
        assert_eq!(a.next(), Some(9));
        assert_eq!(b.next(), Some(9));
        assert_eq!(a.next(), Some(8));
        assert_eq!(b.next(), Some(8));
    }
}
