//! Bit-granular writer/reader used by the §4.3 metadata format and the tANS
//! bitstream.
//!
//! Bits are packed LSB-first within each byte: the first bit written lands in
//! bit 0 of byte 0. `write(v, n)` stores the low `n` bits of `v`; `read(n)`
//! returns them in the same order. This matches how the metadata series are
//! specified (a width field followed by fixed-width values) and keeps the
//! reader branch-light.

/// LSB-first bit writer backed by a byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the last byte (0..8); 0 means byte-aligned.
    used: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `n` bits of `v` (`n <= 64`).
    pub fn write(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 64);
        debug_assert!(
            n == 64 || v < (1u64 << n),
            "value {v} does not fit in {n} bits"
        );
        let mut v = if n == 64 { v } else { v & ((1u64 << n) - 1) };
        let mut left = n;
        while left > 0 {
            if self.used == 0 {
                self.bytes.push(0);
            }
            let room = 8 - self.used;
            let take = room.min(left);
            let last = self.bytes.last_mut().expect("just ensured non-empty");
            *last |= ((v & ((1u64 << take) - 1)) as u8) << self.used;
            v >>= take;
            self.used = (self.used + take) % 8;
            left -= take;
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write(bit as u64, 1);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        let full = self.bytes.len() as u64 * 8;
        if self.used == 0 {
            full
        } else {
            full - (8 - self.used as u64)
        }
    }

    /// Finish and return the packed bytes (final partial byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrow the packed bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// LSB-first bit reader over a byte slice.
#[derive(Debug, Clone, Copy)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Reader starting at bit 0 of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads `n` bits (`n <= 64`); returns `None` if the stream is short.
    #[inline]
    pub fn read(&mut self, n: u32) -> Option<u64> {
        debug_assert!(n <= 64);
        // Fast path: one unaligned u64 load covers any `n <= 57` plus the
        // sub-byte offset. This is the hot call of the tANS decoders.
        let byte = (self.pos / 8) as usize;
        if n <= 57 && byte + 8 <= self.bytes.len() {
            let word = u64::from_le_bytes(self.bytes[byte..byte + 8].try_into().expect("8 bytes"));
            let off = (self.pos % 8) as u32;
            self.pos += n as u64;
            // `n == 0` must yield 0 (shift-by-64 is UB-adjacent otherwise).
            let mask = (1u64 << n).wrapping_sub(1);
            return Some(if n == 0 { 0 } else { (word >> off) & mask });
        }
        self.read_slow(n)
    }

    #[cold]
    fn read_slow(&mut self, n: u32) -> Option<u64> {
        if self.pos + n as u64 > self.bytes.len() as u64 * 8 {
            return None;
        }
        let mut out = 0u64;
        let mut got = 0u32;
        while got < n {
            let byte = self.bytes[(self.pos / 8) as usize];
            let off = (self.pos % 8) as u32;
            let room = 8 - off;
            let take = room.min(n - got);
            let chunk = ((byte >> off) & ((1u16 << take) - 1) as u8) as u64;
            out |= chunk << got;
            got += take;
            self.pos += take as u64;
        }
        Some(out)
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read(1).map(|b| b != 0)
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Bits remaining.
    pub fn remaining_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8 - self.pos
    }

    /// Skips to the next byte boundary (no-op if already aligned).
    pub fn align_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Jumps to an absolute bit position (multians decoder threads start at
    /// arbitrary chunk-boundary offsets).
    pub fn set_pos(&mut self, bit: u64) {
        debug_assert!(bit <= self.bytes.len() as u64 * 8);
        self.pos = bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xFFFF, 16);
        w.write(0, 1);
        w.write(0x1234_5678_9ABC_DEF0, 64);
        w.write(1, 1);
        let bits = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), Some(0b101));
        assert_eq!(r.read(16), Some(0xFFFF));
        assert_eq!(r.read(1), Some(0));
        assert_eq!(r.read(64), Some(0x1234_5678_9ABC_DEF0));
        assert_eq!(r.read(1), Some(1));
        assert_eq!(r.bit_pos(), bits);
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 1);
        w.write(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.write(0b11, 2);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn reader_detects_underflow() {
        let mut w = BitWriter::new();
        w.write(0b1010, 4);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // One padded byte is present, so 8 bits are readable but not 9.
        assert_eq!(r.read(8), Some(0b1010));
        assert_eq!(r.read(1), None);
    }

    #[test]
    fn zero_width_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write(0, 0);
        assert_eq!(w.bit_len(), 0);
        w.write(0b1, 1);
        w.write(0, 0);
        assert_eq!(w.bit_len(), 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(0), Some(0));
        assert_eq!(r.read(1), Some(1));
    }

    #[test]
    fn align_byte_skips_padding() {
        let mut w = BitWriter::new();
        w.write(0b1, 1);
        // Writer pads the remainder of the byte with zeros on flush.
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(1), Some(1));
        r.align_byte();
        assert_eq!(r.bit_pos(), 8);
    }

    #[test]
    fn many_single_bits_round_trip() {
        let pattern: Vec<bool> = (0..1000).map(|i| (i * 7) % 3 == 0).collect();
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }
}
