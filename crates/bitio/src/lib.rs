//! Word- and bit-granular I/O primitives shared by every Recoil codec.
//!
//! Two stream shapes appear throughout the paper:
//!
//! * **u16 word streams** (renormalization output, `b = 16` in Table 3).
//!   The encoder appends words at the back; the decoder consumes them from
//!   the back toward the front ([`WordStream`], [`BackwardWordReader`]).
//! * **Bit-packed metadata series** (§4.3) and tANS bitstreams, which need
//!   bit-granular writers/readers ([`BitWriter`], [`BitReader`]).

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

mod bits;
mod words;

pub use bits::{BitReader, BitWriter};
pub use words::{BackwardWordReader, WordStream};
