//! Property tests for the I/O primitives.

use proptest::collection::vec;
use proptest::prelude::*;
use recoil_bitio::{BackwardWordReader, BitReader, BitWriter, WordStream};

proptest! {
    /// Arbitrary (value, width) sequences round-trip through the bit codec.
    #[test]
    fn bit_sequences_round_trip(fields in vec((any::<u64>(), 0u32..=64), 0..200)) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            let v = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.write(v, n);
        }
        let total: u64 = fields.iter().map(|&(_, n)| n as u64).sum();
        prop_assert_eq!(w.bit_len(), total);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            let v = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.read(n), Some(v));
        }
    }

    /// Reading from any set_pos point equals re-reading from scratch.
    #[test]
    fn set_pos_is_consistent(data in vec(any::<u8>(), 1..64), skip in 0u64..256, n in 0u32..32) {
        let mut a = BitReader::new(&data);
        let skip = skip.min(data.len() as u64 * 8);
        a.set_pos(skip);
        let got_a = a.read(n);
        let mut b = BitReader::new(&data);
        let mut left = skip;
        while left > 0 {
            let step = left.min(13) as u32;
            b.read(step).unwrap();
            left -= step as u64;
        }
        prop_assert_eq!(got_a, b.read(n));
    }

    /// The backward reader yields exactly the reversed word sequence from
    /// any interior starting offset.
    #[test]
    fn backward_reader_reverses(words in vec(any::<u16>(), 1..100), start_frac in 0.0f64..1.0) {
        let stream: WordStream = words.clone().into();
        let start = ((words.len() - 1) as f64 * start_frac) as u64;
        let mut r = BackwardWordReader::new(stream.as_slice(), start);
        let got: Vec<u16> = std::iter::from_fn(|| r.next()).collect();
        let expect: Vec<u16> = words[..=start as usize].iter().rev().copied().collect();
        prop_assert_eq!(got, expect);
    }
}
