//! Randomized property tests for the I/O primitives.
//!
//! The registry `proptest` crate is unavailable offline, so these run the
//! same properties over deterministic seeded cases: a small xorshift
//! generator drives the case generation, and every failure message carries
//! the seed for replay.

use recoil_bitio::{BackwardWordReader, BitReader, BitWriter, WordStream};

/// Deterministic xorshift64* generator for case synthesis.
struct Cases(u64);

impl Cases {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Arbitrary (value, width) sequences round-trip through the bit codec.
#[test]
fn bit_sequences_round_trip() {
    for seed in 0..64u64 {
        let mut rng = Cases::new(0xB17C0DE ^ seed);
        let len = rng.below(200) as usize;
        let fields: Vec<(u64, u32)> = (0..len)
            .map(|_| (rng.next_u64(), rng.below(65) as u32))
            .collect();

        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            let v = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.write(v, n);
        }
        let total: u64 = fields.iter().map(|&(_, n)| n as u64).sum();
        assert_eq!(w.bit_len(), total, "seed {seed}");
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            let v = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            assert_eq!(r.read(n), Some(v), "seed {seed}");
        }
    }
}

/// Reading from any set_pos point equals re-reading from scratch.
#[test]
fn set_pos_is_consistent() {
    for seed in 0..128u64 {
        let mut rng = Cases::new(0x5E7905 ^ seed);
        let len = 1 + rng.below(63) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let skip = rng.below(256).min(data.len() as u64 * 8);
        let n = rng.below(32) as u32;

        let mut a = BitReader::new(&data);
        a.set_pos(skip);
        let got_a = a.read(n);
        let mut b = BitReader::new(&data);
        let mut left = skip;
        while left > 0 {
            let step = left.min(13) as u32;
            b.read(step).unwrap();
            left -= step as u64;
        }
        assert_eq!(got_a, b.read(n), "seed {seed} skip {skip} n {n}");
    }
}

/// The backward reader yields exactly the reversed word sequence from any
/// interior starting offset.
#[test]
fn backward_reader_reverses() {
    for seed in 0..128u64 {
        let mut rng = Cases::new(0xBAC4 ^ seed);
        let len = 1 + rng.below(99) as usize;
        let words: Vec<u16> = (0..len).map(|_| rng.next_u64() as u16).collect();
        let start = rng.below(words.len() as u64);

        let stream: WordStream = words.clone().into();
        let mut r = BackwardWordReader::new(stream.as_slice(), start);
        let got: Vec<u16> = std::iter::from_fn(|| r.next()).collect();
        let expect: Vec<u16> = words[..=start as usize].iter().rev().copied().collect();
        assert_eq!(got, expect, "seed {seed} start {start}");
    }
}
