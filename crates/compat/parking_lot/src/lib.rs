//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! small API subset the workspace uses — `Mutex::{new, lock, into_inner}`,
//! `RwLock::{new, read, write, into_inner}` and
//! `Condvar::{new, wait, notify_all, notify_one}` — on top of `std::sync`.
//! Semantics match parking_lot where it matters here: `lock()`/`read()`/
//! `write()` return the guard directly (poisoning is absorbed, as
//! parking_lot has none), and `Condvar::wait` takes the guard by `&mut`.

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive (non-poisoning facade over [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership through a `&mut` borrow, parking_lot-style.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_deref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Reader-writer lock (non-poisoning facade over [`std::sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking while a writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { guard }
    }

    /// Acquires exclusive access, blocking until all guards are released.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { guard }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present entering wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    /// Wakes every thread blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5i32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_share_and_writer_excludes() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_poison_is_absorbed() {
        let l = Arc::new(RwLock::new(0u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        // A panicking writer must not wedge later accessors.
        *l.write() += 1;
        assert_eq!(*l.read(), 1);
    }

    #[test]
    fn condvar_handshake() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
