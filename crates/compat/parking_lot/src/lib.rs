//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! small API subset the workspace uses — `Mutex::{new, lock, into_inner}` and
//! `Condvar::{new, wait, notify_all, notify_one}` — on top of `std::sync`.
//! Semantics match parking_lot where it matters here: `lock()` returns the
//! guard directly (poisoning is absorbed, as parking_lot has none), and
//! `Condvar::wait` takes the guard by `&mut`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive (non-poisoning facade over [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership through a `&mut` borrow, parking_lot-style.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_deref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and blocks until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present entering wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    /// Wakes every thread blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5i32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_handshake() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
