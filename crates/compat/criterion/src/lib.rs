//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no registry access, so this shim implements the
//! subset the workspace benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_function,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros. Measurements are a
//! plain mean over `sample_size` timed runs after one warm-up, printed as
//! `group/name  time  [throughput]`. No statistics, no HTML reports — just
//! enough to keep the bench targets building and producing usable numbers.

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Declared throughput of a benchmark, used to derive rate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Ends the group (printing is per-benchmark; nothing is buffered).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:8.3} GB/s", n as f64 / mean.as_secs_f64() / 1e9)
            }
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:8.3} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
            }
            _ => String::new(),
        };
        println!("{}/{id:<32} {mean:>12.3?}{rate}", self.name);
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        let t0 = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed += t0.elapsed();
        self.iters += self.samples as u64;
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Bytes(1000));
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }
}
