//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! API subset the dataset generators use: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen::<f64>()` and
//! `Rng::gen_range` over `f64` ranges. The generator is xoshiro256++ seeded
//! through splitmix64 — deterministic in the seed, which is all the
//! reproducible dataset generators require (they do their own inverse-CDF
//! sampling on top of uniform doubles).

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derives a generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the generator's "standard" distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let u = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`
    /// (`f64`: uniform in [0, 1)).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc): (f64, f64, f64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&x));
            let y = rng.gen_range(f64::MIN_POSITIVE..=1.0);
            assert!(y > 0.0 && y <= 1.0);
        }
    }
}
