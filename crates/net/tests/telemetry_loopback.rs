//! Loopback tests for the TELEMETRY wire frame and the instruments behind
//! it: a real server, a real client, and assertions that the numbers the
//! wire reports match the numbers the server-side handle sees.

use recoil_core::codec::{EncoderConfig, ScalarBackend};
use recoil_net::raw::{read_frame, write_frame, ReadOutcome};
use recoil_net::{
    FrameType, Hello, NetClient, NetClientConfig, NetConfig, NetServer, NetServerHandle,
    StatsReply, TelemetryReply, CAP_CHUNKED, CAP_TELEMETRY, PROTOCOL_VERSION,
};
use recoil_server::ContentServer;
use recoil_telemetry::{Stage, TelemetryLevel};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn sample(len: usize, seed: u32) -> Vec<u8> {
    (0..len as u32)
        .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 23) as u8)
        .collect()
}

fn start_server(telemetry: TelemetryLevel) -> NetServerHandle {
    NetServer::bind(
        Arc::new(ContentServer::new()),
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            read_timeout: Duration::from_millis(50),
            telemetry,
            ..NetConfig::default()
        },
    )
    .unwrap()
}

/// Raw-socket HELLO exchange with an explicit capability set; returns the
/// connection and the capabilities the server granted.
fn raw_hello_with_caps(addr: std::net::SocketAddr, caps: u32) -> (TcpStream, u32) {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let ours = Hello {
        version: PROTOCOL_VERSION,
        capabilities: caps,
    };
    write_frame(&mut conn, FrameType::Hello, &ours.encode()).unwrap();
    match read_frame(&mut conn).unwrap() {
        ReadOutcome::Frame(FrameType::Hello, payload) => {
            let theirs = Hello::decode(&payload).unwrap();
            (conn, theirs.capabilities)
        }
        other => panic!("expected HELLO reply, got {other:?}"),
    }
}

fn await_reply(conn: &mut TcpStream) -> (FrameType, Vec<u8>) {
    loop {
        match read_frame(conn).unwrap() {
            ReadOutcome::Frame(ty, payload) => return (ty, payload),
            ReadOutcome::Idle => {}
            ReadOutcome::Eof => panic!("server closed before replying"),
        }
    }
}

/// A known request mix against a `Trace`-level server, then the TELEMETRY
/// frame: the reply's counters, histograms, and trace must describe that
/// mix, and must agree with what the server-side handle renders locally.
#[test]
fn telemetry_round_trip_matches_server_side_snapshot() {
    let server = start_server(TelemetryLevel::Trace);
    let data = sample(200_000, 7);
    // The scalar backend keeps the decode deterministic on any host (the
    // auto backend's SIMD paths skip the instrumented span decoder).
    let client = NetClient::connect(server.addr())
        .unwrap()
        .with_backend(ScalarBackend);

    // Mix: 1 publish (dispatch + encode), 1 cache-miss request (dispatch +
    // combine), 2 cache-hit requests (inline), 1 streaming fetch (hit).
    client
        .publish("movie", &data, &EncoderConfig::default())
        .unwrap();
    assert_eq!(client.fetch_and_decode("movie", 8).unwrap(), data);
    assert_eq!(client.fetch_and_decode("movie", 8).unwrap(), data);
    assert_eq!(client.fetch_and_decode("movie", 8).unwrap(), data);
    let streamed = client.fetch_and_decode_streaming("movie", 8).unwrap();
    assert_eq!(streamed.data, data);

    let reply = client.remote_telemetry().unwrap();
    let remote = &reply.snapshot;
    assert_eq!(remote.level, TelemetryLevel::Trace);

    // The mix, as the wire reports it.
    assert_eq!(remote.counter("dispatched_jobs"), Some(2), "publish + miss");
    assert_eq!(remote.hist("encode_ns").map(|h| h.count), Some(1));
    assert_eq!(remote.hist("combine_ns").map(|h| h.count), Some(1));
    assert_eq!(remote.hist("tier_miss_segments").map(|h| h.count), Some(1));
    assert_eq!(
        remote.hist("tier_hit_segments").map(|h| h.count),
        Some(3),
        "two buffered re-fetches and one streamed fetch hit the tier cache"
    );
    assert!(remote.counter("frames_read").unwrap() >= 6);
    assert!(remote.counter("inline_serves").unwrap() >= 3);
    assert!(remote.counter("bytes_read").unwrap() > data.len() as u64);
    assert!(remote.counter("bytes_written").unwrap() > 0);
    assert!(remote.counter("write_flushes").unwrap() >= 5);
    assert_eq!(remote.counter("evictions"), Some(0));
    assert!(remote.hist("dispatch_wait_ns").map(|h| h.count) == Some(2));
    let inline = remote.hist("inline_serve_ns").unwrap();
    assert!(inline.count >= 3);
    assert!(inline.p50() <= inline.p99());
    assert!(inline.p99() <= inline.max);

    // The trace ring (drained into this reply) saw the pipeline stages.
    assert!(!reply.trace.is_empty());
    let stages: Vec<Stage> = reply.trace.iter().map(|(_, ev)| ev.stage).collect();
    for want in [
        Stage::FrameRead,
        Stage::InlineServe,
        Stage::DispatchQueue,
        Stage::DispatchRun,
        Stage::Encode,
        Stage::Combine,
        Stage::WriteFlush,
    ] {
        assert!(stages.contains(&want), "missing {want:?} in {stages:?}");
    }
    // Tickets arrive in ring order.
    assert!(reply.trace.windows(2).all(|w| w[0].0 < w[1].0));

    // The server-side handle renders the same story. Counters that the
    // TELEMETRY exchange itself advances (frames, bytes, flushes) may only
    // grow; the request-mix counters must match exactly.
    let local = server.telemetry().snapshot();
    for name in ["dispatched_jobs", "evictions"] {
        assert_eq!(local.counter(name), remote.counter(name), "{name}");
    }
    for name in [
        "encode_ns",
        "combine_ns",
        "tier_hit_segments",
        "tier_miss_segments",
    ] {
        assert_eq!(
            local.hist(name).map(|h| h.count),
            remote.hist(name).map(|h| h.count),
            "{name}"
        );
    }
    assert!(local.counter("frames_read") >= remote.counter("frames_read"));
    let local_text = local.render_text();
    let remote_text = remote.render_text();
    for line in [
        "recoil_dispatched_jobs 2",
        "# TYPE recoil_inline_serve_ns histogram",
    ] {
        assert!(local_text.contains(line), "local exposition missing {line}");
        assert!(
            remote_text.contains(line),
            "remote exposition missing {line}"
        );
    }

    // The drain consumed the ring: a second exchange reports only the
    // events generated since (the first reply's flush, this request).
    let again = client.remote_telemetry().unwrap();
    assert!(again.trace.len() < reply.trace.len());

    // Client-side instruments captured the streaming breakdown.
    let mine = client.telemetry().snapshot();
    let first = mine.hist("stream_first_segment_ns").unwrap();
    let total = mine.hist("stream_total_ns").unwrap();
    assert_eq!(first.count, 1);
    assert_eq!(total.count, 1);
    assert!(first.max <= total.max);

    server.shutdown();
}

/// Regression test: `queue_depth` and `open_slots` are published at one
/// consistent point in the event loop, so a STATS and a TELEMETRY request
/// pipelined in one write see the same values. (They used to be written
/// from dispatch workers and slab events independently, so the two views
/// could disagree.)
#[test]
fn stats_and_telemetry_report_the_same_gauges() {
    let server = start_server(TelemetryLevel::Counters);
    let (mut conn, caps) = raw_hello_with_caps(server.addr(), CAP_CHUNKED | CAP_TELEMETRY);
    assert_eq!(caps & CAP_TELEMETRY, CAP_TELEMETRY);

    // Both requests in one write: the server parses them back to back off
    // one read burst.
    let mut burst = Vec::new();
    write_frame(&mut burst, FrameType::Stats, &[]).unwrap();
    write_frame(&mut burst, FrameType::Telemetry, &[]).unwrap();
    conn.write_all(&burst).unwrap();

    let (ty, payload) = await_reply(&mut conn);
    assert_eq!(ty, FrameType::StatsReply);
    let stats = StatsReply::decode(&payload).unwrap();
    let (ty, payload) = await_reply(&mut conn);
    assert_eq!(ty, FrameType::TelemetryReply);
    let reply = TelemetryReply::decode(&payload).unwrap();

    assert_eq!(
        Some(stats.stats.queue_depth),
        reply.snapshot.gauge("queue_depth")
    );
    assert_eq!(
        Some(stats.stats.open_slots),
        reply.snapshot.gauge("open_slots")
    );
    // One connection (ours) is holding a slot, and nothing is queued.
    assert_eq!(stats.stats.queue_depth, 0);
    assert_eq!(
        stats.stats.open_slots,
        NetConfig::default().max_connections as u64 - 1
    );

    server.shutdown();
}

/// Capability gating: a peer that did not negotiate CAP_TELEMETRY gets a
/// typed error (and loses the connection), old clients keep their STATS
/// path, and an `Off`-level server still answers the frame — with an `off`
/// snapshot — because the capability is about protocol support, not level.
#[test]
fn telemetry_capability_is_negotiated_not_assumed() {
    let server = start_server(TelemetryLevel::Counters);
    let (mut conn, caps) = raw_hello_with_caps(server.addr(), CAP_CHUNKED);
    assert_eq!(
        caps & CAP_TELEMETRY,
        0,
        "server must not grant what we lack"
    );

    // The legacy surface still works on this connection.
    write_frame(&mut conn, FrameType::Stats, &[]).unwrap();
    let (ty, _) = await_reply(&mut conn);
    assert_eq!(ty, FrameType::StatsReply);

    // TELEMETRY without the capability: typed error, then close.
    write_frame(&mut conn, FrameType::Telemetry, &[]).unwrap();
    let (ty, _) = await_reply(&mut conn);
    assert_eq!(ty, FrameType::Error);

    // A client that skipped the capability fails locally, before the wire.
    let plain = NetClient::connect(server.addr()).unwrap();
    assert!(plain.remote_telemetry().is_ok());

    // An Off-level server still speaks the frame.
    let quiet = start_server(TelemetryLevel::Off);
    let client = NetClient::connect_with(
        quiet.addr(),
        NetClientConfig {
            telemetry: TelemetryLevel::Off,
            ..NetClientConfig::default()
        },
    )
    .unwrap();
    let reply = client.remote_telemetry().unwrap();
    assert_eq!(reply.snapshot.level, TelemetryLevel::Off);
    assert!(reply.trace.is_empty());

    quiet.shutdown();
    server.shutdown();
}
