//! Scale and lifecycle tests for the event-driven server backend: a
//! thousand-plus mostly-idle connections, slow-loris eviction, slab slot
//! reuse across connection churn, graceful shutdown under load, and the
//! poll-fallback backend's round trips.

use recoil_core::codec::{EncoderConfig, ScalarBackend};
use recoil_core::RecoilError;
use recoil_net::raw::{decode_error, read_frame, write_frame, ReadOutcome};
use recoil_net::{FrameType, Hello, NetClient, NetConfig, NetServer, NetServerHandle};
use recoil_server::ContentServer;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sample(len: usize, seed: u32) -> Vec<u8> {
    (0..len as u32)
        .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 23) as u8)
        .collect()
}

fn config(max_segments: u64) -> EncoderConfig {
    EncoderConfig {
        max_segments,
        ..EncoderConfig::default()
    }
}

fn start_server(net: NetConfig) -> NetServerHandle {
    NetServer::bind(Arc::new(ContentServer::new()), "127.0.0.1:0", net).unwrap()
}

/// Opens a raw connection and completes the HELLO exchange, returning a
/// negotiated socket the test controls byte-by-byte.
fn raw_handshake(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_frame(&mut stream, FrameType::Hello, &Hello::ours().encode()).unwrap();
    match read_frame(&mut stream).unwrap() {
        ReadOutcome::Frame(FrameType::Hello, _) => stream,
        other => panic!("expected HELLO reply, got {other:?}"),
    }
}

/// Polls until `cond` holds (the reactor applies closures asynchronously).
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn a_thousand_idle_connections_and_traffic_still_flows() {
    let server = start_server(NetConfig {
        workers: 2,
        max_connections: 1200,
        ..NetConfig::default()
    });
    let addr = server.addr();

    // 1024 negotiated connections that then just sit there. Idle peers
    // between frames have no deadline: none of them may be evicted.
    let idle: Vec<TcpStream> = (0..1024).map(|_| raw_handshake(addr)).collect();
    assert!(server.active_connections() >= 1024);

    // Active traffic threads through the idle crowd, byte-identically.
    let data = sample(200_000, 7);
    let client = NetClient::connect(addr)
        .unwrap()
        .with_backend(ScalarBackend);
    client.publish("movie", &data, &config(32)).unwrap();
    for tier in [1u64, 8, 32] {
        assert_eq!(client.fetch_and_decode("movie", tier).unwrap(), data);
    }
    let stats = client.stats().unwrap();
    assert!(
        stats.stats.active_connections >= 1025,
        "idle connections must stay counted: {}",
        stats.stats.active_connections
    );
    assert_eq!(stats.stats.evicted_connections, 0);
    assert_eq!(stats.stats.rejected_connections, 0);

    // The idle crowd hangs up; the server notices every close.
    drop(idle);
    wait_until("idle connections to close", || {
        server.active_connections() <= 1
    });
    assert_eq!(client.fetch_and_decode("movie", 8).unwrap(), data);
    server.shutdown();
}

#[test]
fn slow_loris_peers_are_evicted_with_a_typed_error() {
    let server = start_server(NetConfig {
        workers: 2,
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    });
    let addr = server.addr();

    // Variant 1: a frame header that never finishes (type byte + half the
    // length field).
    let mut torn_header = raw_handshake(addr);
    torn_header
        .write_all(&[FrameType::Request as u8, 9, 0])
        .unwrap();
    // Variant 2: a complete header promising 100 payload bytes, 3 sent.
    let mut torn_payload = raw_handshake(addr);
    torn_payload
        .write_all(&[FrameType::Request as u8, 100, 0, 0, 0, 1, 2, 3])
        .unwrap();

    for (name, mut stream) in [("torn header", torn_header), ("torn payload", torn_payload)] {
        match read_frame(&mut stream).unwrap() {
            ReadOutcome::Frame(FrameType::Error, payload) => {
                let e = decode_error(&payload);
                assert!(
                    e.to_string().contains("stalled"),
                    "{name}: eviction must say why: {e}"
                );
            }
            other => panic!("{name}: expected a typed ERROR, got {other:?}"),
        }
        // After the courtesy frame the connection drains to clean EOF.
        assert!(matches!(read_frame(&mut stream).unwrap(), ReadOutcome::Eof));
    }

    wait_until("evictions to be counted", || {
        server.content().stats().evicted_connections >= 2
    });
    // Evicted slots are free again and the server still serves.
    let client = NetClient::connect(addr).unwrap();
    let data = sample(50_000, 3);
    client.publish("after", &data, &config(8)).unwrap();
    assert_eq!(client.fetch_and_decode("after", 8).unwrap(), data);
    server.shutdown();
}

#[test]
fn slab_slots_are_reused_across_connection_churn() {
    let server = start_server(NetConfig {
        workers: 2,
        max_connections: 8,
        ..NetConfig::default()
    });
    let addr = server.addr();
    let data = sample(60_000, 11);
    {
        let publisher = NetClient::connect(addr).unwrap();
        publisher.publish("movie", &data, &config(16)).unwrap();
    }
    wait_until("publisher to close", || server.active_connections() == 0);

    // 64 connect → request → disconnect cycles against 8 slots: after the
    // first few accepts, every connection must land in a parked slot and
    // recycle its buffers instead of allocating.
    for i in 0..64 {
        let client = NetClient::connect(addr)
            .unwrap()
            .with_backend(ScalarBackend);
        assert_eq!(
            client.fetch_and_decode("movie", 1 + (i % 16)).unwrap(),
            data
        );
        drop(client);
        wait_until("connection to close", || server.active_connections() == 0);
    }

    let slab = server.slab_stats();
    assert!(
        slab.allocations <= 2,
        "steady-state churn must not allocate slots: {slab:?}"
    );
    assert!(slab.reuses >= 60, "parked slots must be recycled: {slab:?}");
    // The open-slots gauge recovered to the full cap.
    assert_eq!(server.content().stats().open_slots, 8);
    server.shutdown();
}

#[test]
fn graceful_shutdown_with_hundreds_of_connections_mid_stream() {
    let server = start_server(NetConfig {
        workers: 4,
        max_connections: 400,
        chunk_bytes: 2 * 1024,
        ..NetConfig::default()
    });
    let addr = server.addr();
    let data = sample(400_000, 17);
    let client = NetClient::connect(addr).unwrap();
    client.publish("big", &data, &config(64)).unwrap();
    drop(client);

    // A crowd of idle connections plus streaming clients mid-transfer.
    let idle: Vec<TcpStream> = (0..300).map(|_| raw_handshake(addr)).collect();
    let stop = AtomicBool::new(false);
    let ok = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..3usize {
            let (data, stop, ok) = (&data, &stop, &ok);
            s.spawn(move || {
                let client = NetClient::connect(addr)
                    .unwrap()
                    .with_backend(ScalarBackend);
                while !stop.load(Ordering::Relaxed) {
                    match client.fetch_and_decode_streaming("big", 4 + t as u64) {
                        Ok(streamed) => {
                            assert_eq!(streamed.data, *data);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        // Mid-stream shutdown: typed error, never a hang.
                        Err(RecoilError::Net { .. }) => break,
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(150));
        server.shutdown(); // joins the reactor with 300+ connections open
        stop.store(true, Ordering::Relaxed);
    });
    assert!(ok.load(Ordering::Relaxed) > 0);
    drop(idle);
    assert!(NetClient::connect(addr).is_err());
}

#[test]
fn reactor_backend_round_trips_with_few_workers() {
    // This round trip previously exercised the deleted thread-per-connection
    // backend; it now pins the reactor against the same workload shape — a
    // small worker pool and an aggressive progress deadline.
    let server = start_server(NetConfig {
        workers: 3,
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    });
    let data = sample(120_000, 5);
    let client = NetClient::connect(server.addr()).unwrap();
    client.publish("movie", &data, &config(16)).unwrap();
    assert_eq!(client.fetch_and_decode("movie", 16).unwrap(), data);
    // The reactor's slab served the connection: a slot was allocated.
    assert!(server.slab_stats().allocations > 0);
    server.shutdown();
}

#[test]
fn poll_fallback_backend_round_trips() {
    let server = start_server(NetConfig {
        workers: 2,
        poll_fallback: true,
        chunk_bytes: 4 * 1024,
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    });
    let addr = server.addr();
    let data = sample(150_000, 9);
    let client = NetClient::connect(addr)
        .unwrap()
        .with_backend(ScalarBackend);
    client.publish("movie", &data, &config(32)).unwrap();
    assert_eq!(client.fetch_and_decode("movie", 32).unwrap(), data);
    assert_eq!(
        client.fetch_and_decode_streaming("movie", 8).unwrap().data,
        data
    );
    // Level-triggered wakeups still evict a stalled peer.
    let mut loris = raw_handshake(addr);
    loris.write_all(&[FrameType::Stats as u8, 4, 0]).unwrap();
    match read_frame(&mut loris).unwrap() {
        ReadOutcome::Frame(FrameType::Error, payload) => {
            assert!(decode_error(&payload).to_string().contains("stalled"));
        }
        other => panic!("expected a typed ERROR, got {other:?}"),
    }
    server.shutdown();
}
