//! Deterministic adversarial corpus for the frame parser and the chunked
//! transfer path.
//!
//! Three layers of abuse, all seeded and reproducible:
//!
//! 1. **Parser corpus** — `read_frame` over in-memory byte strings:
//!    truncated headers at every cut, length fields at and over the 64 MiB
//!    cap, unknown type bytes, garbage payloads.
//! 2. **Live server corpus** — the same shapes thrown at a real
//!    [`NetServer`] socket: the server must answer with typed ERROR frames
//!    (or close cleanly on mid-frame hangups) and keep serving well-behaved
//!    clients afterwards — never panic.
//! 3. **Hostile server replays** — a fake server replays captured
//!    TRANSMIT/CHUNK exchanges with a corrupted chunk byte, a truncated
//!    chunk stream, or a mid-stream disconnect; both the buffered and the
//!    streaming client paths must fail with a typed [`RecoilError`], never
//!    hang or misdecode.

use recoil_core::codec::EncoderConfig;
use recoil_core::RecoilError;
use recoil_net::raw::{read_frame, write_frame, ReadOutcome};
use recoil_net::{
    FrameType, Hello, NetClient, NetConfig, NetServer, NetServerHandle, MAX_FRAME_LEN,
};
use recoil_server::ContentServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn sample(len: usize, seed: u32) -> Vec<u8> {
    (0..len as u32)
        .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 23) as u8)
        .collect()
}

/// The deterministic corpus: (name, raw bytes as they would hit the parser
/// after HELLO).
fn corpus() -> Vec<(&'static str, Vec<u8>)> {
    let mut entries: Vec<(&'static str, Vec<u8>)> = Vec::new();

    // Unknown frame types, including the extremes.
    for ty in [0x00u8, 0x0B, 0x7F, 0xAB, 0xFF] {
        let mut b = vec![ty];
        b.extend_from_slice(&4u32.to_le_bytes());
        b.extend_from_slice(&[1, 2, 3, 4]);
        entries.push(("unknown type", b));
    }

    // A TELEMETRY request must carry an empty payload.
    let mut fat_telemetry = Vec::new();
    write_frame(&mut fat_telemetry, FrameType::Telemetry, &[1, 2, 3, 4]).unwrap();
    entries.push(("telemetry with unexpected payload", fat_telemetry));

    // Length field exactly at the cap, but the payload never arrives.
    let mut at_cap = vec![FrameType::Request as u8];
    at_cap.extend_from_slice(&MAX_FRAME_LEN.to_le_bytes());
    at_cap.extend_from_slice(&[0; 64]);
    entries.push(("length at cap, truncated payload", at_cap));

    // Length fields over the cap — rejected before any allocation.
    for over in [MAX_FRAME_LEN + 1, u32::MAX / 2, u32::MAX] {
        let mut b = vec![FrameType::Chunk as u8];
        b.extend_from_slice(&over.to_le_bytes());
        entries.push(("length over cap", b));
    }

    // A parseable frame type whose payload is garbage for its codec.
    let mut bad_payload = Vec::new();
    write_frame(&mut bad_payload, FrameType::Request, &[0xFF; 13]).unwrap();
    entries.push(("request with garbage payload", bad_payload));

    // Protocol-violating but well-framed messages from a client.
    for ty in [
        FrameType::PublishOk,
        FrameType::Transmit,
        FrameType::Chunk,
        FrameType::StatsReply,
        FrameType::TelemetryReply,
        FrameType::Error,
    ] {
        let mut b = Vec::new();
        write_frame(&mut b, ty, &[0, 0, 0, 0]).unwrap();
        entries.push(("server-only frame from client", b));
    }

    entries
}

#[test]
fn parser_rejects_the_corpus_without_panicking() {
    for (_what, bytes) in corpus() {
        let mut r = &bytes[..];
        // Drain the reader: every outcome must be a clean value or a typed
        // error, never a panic. (Protocol-violating frames *parse* fine here;
        // the server layer rejects them.)
        while let Ok(ReadOutcome::Frame(..)) = read_frame(&mut r) {}
    }

    // Truncated headers: every strict prefix of a valid frame must fail (or
    // report EOF at the empty cut), never panic.
    let mut valid = Vec::new();
    write_frame(&mut valid, FrameType::Publish, b"0123456789abcdef").unwrap();
    for cut in 0..valid.len() {
        let mut r = &valid[..cut];
        match read_frame(&mut r) {
            Ok(ReadOutcome::Eof) => assert_eq!(cut, 0, "only the empty prefix is EOF"),
            Err(_) => assert!(cut > 0),
            other => panic!("cut {cut}: unexpected {other:?}"),
        }
    }
}

/// Server on an ephemeral loopback port with fast test timeouts.
fn start_server() -> NetServerHandle {
    NetServer::bind(
        Arc::new(ContentServer::new()),
        "127.0.0.1:0",
        NetConfig {
            workers: 3,
            read_timeout: Duration::from_millis(50),
            ..NetConfig::default()
        },
    )
    .unwrap()
}

/// Raw-socket HELLO exchange.
fn raw_hello(addr: SocketAddr) -> TcpStream {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_frame(&mut conn, FrameType::Hello, &Hello::ours().encode()).unwrap();
    match read_frame(&mut conn).unwrap() {
        ReadOutcome::Frame(FrameType::Hello, _) => conn,
        other => panic!("expected HELLO reply, got {other:?}"),
    }
}

/// Reads frames until the server closes the connection, returning whether
/// an ERROR frame was seen on the way out.
fn drain_to_eof(conn: &mut TcpStream) -> bool {
    let mut saw_error = false;
    loop {
        match read_frame(conn) {
            Ok(ReadOutcome::Frame(FrameType::Error, _)) => saw_error = true,
            Ok(ReadOutcome::Frame(..)) | Ok(ReadOutcome::Idle) => {}
            Ok(ReadOutcome::Eof) | Err(_) => return saw_error,
        }
    }
}

#[test]
fn live_server_survives_the_corpus_and_keeps_serving() {
    let server = start_server();
    let data = sample(50_000, 1);
    let client = NetClient::connect(server.addr()).unwrap();
    client
        .publish("survivor", &data, &EncoderConfig::default())
        .unwrap();

    for (what, bytes) in corpus() {
        let mut conn = raw_hello(server.addr());
        conn.write_all(&bytes).unwrap();
        if what.starts_with("length at cap") {
            // The server is now waiting for 64 MiB that will never come;
            // hang up instead of waiting out its stalled-peer budget.
            drop(conn);
        } else {
            // Either a typed ERROR frame or a clean close; the assertion is
            // that the exchange terminates and the server lives on.
            let _ = drain_to_eof(&mut conn);
        }

        // The server still serves a well-behaved client after each entry.
        assert_eq!(
            client.fetch_and_decode("survivor", 8).unwrap(),
            data,
            "server degraded after corpus entry: {what}"
        );
    }

    // Mid-frame disconnects at assorted cuts of a valid REQUEST frame.
    let mut valid = Vec::new();
    write_frame(&mut valid, FrameType::Request, &[9; 40]).unwrap();
    for cut in [1usize, 5, 6, 20, valid.len() - 1] {
        let mut conn = raw_hello(server.addr());
        conn.write_all(&valid[..cut]).unwrap();
        drop(conn);
    }
    assert_eq!(client.fetch_and_decode("survivor", 8).unwrap(), data);
    server.shutdown();
}

/// Captures the full frame sequence (TRANSMIT + CHUNKs) a real server sends
/// for one request, as raw on-the-wire bytes.
fn capture_transmission(name: &str, data: &[u8], chunk_bytes: usize) -> Vec<u8> {
    let server = NetServer::bind(
        Arc::new(ContentServer::new()),
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            chunk_bytes,
            read_timeout: Duration::from_millis(50),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let publisher = NetClient::connect(server.addr()).unwrap();
    publisher
        .publish(name, data, &EncoderConfig::default())
        .unwrap();

    let mut conn = raw_hello(server.addr());
    let mut req = recoil_net::raw::PayloadWriter::new();
    req.name(name);
    req.u64(16);
    write_frame(&mut conn, FrameType::Request, &req.0).unwrap();

    // Read the TRANSMIT + every CHUNK, re-serializing them verbatim.
    let mut raw = Vec::new();
    let mut chunks_left = None;
    loop {
        match read_frame(&mut conn).unwrap() {
            ReadOutcome::Frame(FrameType::Transmit, payload) => {
                let header = recoil_net::TransmitHeader::decode(&payload).unwrap();
                chunks_left = Some(header.chunk_count);
                write_frame(&mut raw, FrameType::Transmit, &payload).unwrap();
            }
            ReadOutcome::Frame(FrameType::Chunk, payload) => {
                write_frame(&mut raw, FrameType::Chunk, &payload).unwrap();
                let left = chunks_left.as_mut().unwrap();
                *left -= 1;
                if *left == 0 {
                    break;
                }
            }
            ReadOutcome::Idle => {}
            other => panic!("unexpected {other:?}"),
        }
    }
    server.shutdown();
    raw
}

/// A fake server that completes HELLO + swallows one REQUEST per
/// connection, then replays `script` verbatim and closes. Serves up to
/// `conns` connections so the client's one-shot retry also sees the replay.
fn hostile_server(script: Vec<u8>, conns: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        for _ in 0..conns {
            let Ok((mut conn, _)) = listener.accept() else {
                return;
            };
            conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            // HELLO negotiation.
            match read_frame(&mut conn) {
                Ok(ReadOutcome::Frame(FrameType::Hello, _)) => {}
                _ => continue,
            }
            if write_frame(&mut conn, FrameType::Hello, &Hello::ours().encode()).is_err() {
                continue;
            }
            // Wait for a REQUEST (the pooled probe connection may be dropped
            // without one; that is fine).
            match read_frame(&mut conn) {
                Ok(ReadOutcome::Frame(FrameType::Request, _)) => {}
                _ => continue,
            }
            let _ = conn.write_all(&script);
            // Half-close and linger briefly so the bytes flush before RST.
            let _ = conn.shutdown(std::net::Shutdown::Write);
            let mut sink = [0u8; 1024];
            while let Ok(n) = conn.read(&mut sink) {
                if n == 0 {
                    break;
                }
            }
        }
    });
    (addr, handle)
}

/// Unblocks any accept slots the hostile server still holds, then joins it.
fn finish_hostile(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    while !handle.is_finished() {
        drop(TcpStream::connect(addr));
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.join().unwrap();
}

/// Flips the last byte of the last non-empty CHUNK body in a captured
/// frame sequence (never a frame header or sequence number).
fn flip_last_chunk_body_byte(raw: &mut [u8]) {
    let mut at = 0usize;
    let mut target = None;
    while at + 5 <= raw.len() {
        let ty = raw[at];
        let len = u32::from_le_bytes(raw[at + 1..at + 5].try_into().unwrap()) as usize;
        let end = at + 5 + len;
        if ty == FrameType::Chunk as u8 && len > 4 {
            target = Some(end - 1);
        }
        at = end;
    }
    raw[target.expect("a chunk with a body")] ^= 0x40;
}

#[test]
fn crc_corrupted_chunk_stream_is_a_typed_error_on_both_paths() {
    let data = sample(120_000, 2);
    let good = capture_transmission("movie", &data, 8 * 1024);
    let mut evil = good.clone();
    flip_last_chunk_body_byte(&mut evil);
    assert_ne!(good, evil);

    for streaming in [false, true] {
        let (addr, handle) = hostile_server(evil.clone(), 4);
        let client = NetClient::connect(addr).unwrap();
        let got = if streaming {
            client
                .fetch_and_decode_streaming("movie", 16)
                .map(|s| s.data)
        } else {
            client.fetch_and_decode("movie", 16)
        };
        match got {
            // The reassembled-payload CRC catches the flip…
            Err(RecoilError::Net { detail }) => {
                assert!(
                    detail.contains("checksum"),
                    "streaming={streaming}: {detail}"
                )
            }
            // …unless (streaming only) the already-dispatched decode of the
            // corrupt segment trips a typed decode error first. Both are
            // clean typed failures; silence or wrong bytes would be the bug.
            Err(RecoilError::Decode(_)) if streaming => {}
            other => panic!("streaming={streaming}: expected CRC failure, got {other:?}"),
        }
        drop(client);
        finish_hostile(addr, handle);
    }
}

#[test]
fn mid_stream_disconnect_is_a_typed_error_not_a_hang() {
    let data = sample(150_000, 3);
    let good = capture_transmission("movie", &data, 4 * 1024);

    // Truncate the replay in the middle of the chunk sequence — the server
    // vanishes after a few chunks.
    let cut = good.len() / 3;
    let truncated = good[..cut].to_vec();

    for streaming in [false, true] {
        let (addr, handle) = hostile_server(truncated.clone(), 4);
        let client = NetClient::connect(addr).unwrap();
        let got = if streaming {
            client
                .fetch_and_decode_streaming("movie", 16)
                .map(|s| s.data)
        } else {
            client.fetch_and_decode("movie", 16)
        };
        assert!(
            matches!(got, Err(RecoilError::Net { .. })),
            "streaming={streaming}: expected typed Net error, got {got:?}"
        );
        drop(client);
        finish_hostile(addr, handle);
    }
}

#[test]
fn tampered_transmit_headers_are_rejected() {
    let data = sample(60_000, 4);
    let good = capture_transmission("movie", &data, 8 * 1024);

    // The TRANSMIT payload begins after the 5-byte frame header; corrupt a
    // byte inside the serialized shrunk metadata (its CRC footer catches
    // it) — offset 40 lands in the metadata blob for this capture.
    let mut evil = good.clone();
    evil[40] ^= 0xFF;
    let (addr, handle) = hostile_server(evil, 4);
    let client = NetClient::connect(addr).unwrap();
    let got = client.fetch_and_decode("movie", 16);
    assert!(got.is_err(), "corrupted header must not decode: {got:?}");
    drop(client);
    finish_hostile(addr, handle);
}
