//! A remote fetch builds its decode tables exactly once.
//!
//! The TRANSMIT header carries the model frequencies, so the client must
//! reconstruct the `StaticModelProvider` (one `DecodeTables::build`) per
//! fetch — and then reuse it for every chunk-driven segment batch of the
//! streaming pipeline. This lives in its own test binary so the
//! process-wide build counter is not disturbed by concurrent tests.

use recoil_core::codec::EncoderConfig;
use recoil_models::decode_table_builds;
use recoil_net::{NetClient, NetConfig, NetServer};
use recoil_server::ContentServer;
use std::sync::Arc;

#[test]
fn one_table_build_per_remote_fetch() {
    let server = NetServer::bind(
        Arc::new(ContentServer::new()),
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            // Small chunks so the streaming fetch decodes in many batches.
            chunk_bytes: 2048,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let data: Vec<u8> = (0..300_000u32)
        .map(|i| ((i.wrapping_mul(747796405)) >> 22) as u8)
        .collect();
    let client = NetClient::connect(server.addr()).unwrap();
    let config = EncoderConfig {
        max_segments: 64,
        ..EncoderConfig::default()
    };
    client.publish("movie", &data, &config).unwrap();

    let before = decode_table_builds();
    let buffered = client.fetch_and_decode("movie", 8).unwrap();
    assert_eq!(buffered, data);
    assert_eq!(
        decode_table_builds() - before,
        1,
        "a buffered fetch builds the transmitted model's tables exactly once"
    );

    let before = decode_table_builds();
    let streamed = client.fetch_and_decode_streaming("movie", 8).unwrap();
    assert_eq!(streamed.data, data);
    assert!(
        streamed.decode_batches > 1,
        "expected a multi-batch streaming decode, got {}",
        streamed.decode_batches
    );
    assert_eq!(
        decode_table_builds() - before,
        1,
        "a streaming fetch builds tables once and reuses them across all \
         {} decode batches",
        streamed.decode_batches
    );

    server.shutdown();
}
