//! Loopback integration tests for the framed TCP transport: real sockets,
//! real threads, byte-identical decodes.

use recoil_core::codec::{EncoderConfig, ScalarBackend};
use recoil_core::RecoilError;
use recoil_net::raw::{read_frame, write_frame, ReadOutcome};
use recoil_net::{FrameType, Hello, NetClient, NetConfig, NetServer, NetServerHandle};
use recoil_server::ContentServer;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn sample(len: usize, seed: u32) -> Vec<u8> {
    (0..len as u32)
        .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 23) as u8)
        .collect()
}

fn config(max_segments: u64) -> EncoderConfig {
    EncoderConfig {
        max_segments,
        ..EncoderConfig::default()
    }
}

/// Server on an ephemeral loopback port with test-sized knobs.
fn start_server(net: NetConfig) -> NetServerHandle {
    NetServer::bind(Arc::new(ContentServer::new()), "127.0.0.1:0", net).unwrap()
}

fn small_net_config() -> NetConfig {
    NetConfig {
        workers: 3,
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    }
}

#[test]
fn loopback_round_trip_at_multiple_capacities() {
    let server = start_server(small_net_config());
    let data = sample(300_000, 1);
    let client = NetClient::connect(server.addr()).unwrap();

    let ok = client.publish("movie", &data, &config(64)).unwrap();
    assert_eq!(ok.segments, 64);
    assert!(ok.stream_bytes > 0);

    // Different capacities: byte-identical decode, scaled metadata.
    let small = client.request("movie", 2).unwrap();
    let large = client.request("movie", 64).unwrap();
    assert_eq!(small.segments, 2);
    assert_eq!(large.segments, 64);
    assert_eq!(small.metadata.num_segments(), 2);
    assert!(small.total_bytes() < large.total_bytes());
    assert_eq!(small.decode_with(&ScalarBackend).unwrap(), data);
    assert_eq!(client.fetch_and_decode("movie", 64).unwrap(), data);

    // A repeated tier is served from the remote cache.
    let again = client.request("movie", 2).unwrap();
    assert!(again.cache_hit);
    assert_eq!(again.combine_nanos, 0);

    // Stats flow over the wire, including the new counters; the connection
    // serving the stats query is itself active.
    let stats = client.stats().unwrap();
    assert_eq!(stats.items, 1);
    assert_eq!(stats.stats.publishes, 1);
    assert!(stats.stats.bytes_served >= small.total_bytes() + large.total_bytes());
    assert!(stats.stats.active_connections >= 1);

    server.shutdown();
}

#[test]
fn empty_payload_round_trips_over_the_wire() {
    let server = start_server(small_net_config());
    let client = NetClient::connect(server.addr()).unwrap();
    client.publish("empty", &[], &config(4)).unwrap();
    let content = client.request("empty", 4).unwrap();
    assert_eq!(content.stream.num_symbols, 0);
    assert!(client.fetch_and_decode("empty", 4).unwrap().is_empty());
}

#[test]
fn remote_errors_come_back_typed() {
    let server = start_server(small_net_config());
    let client = NetClient::connect(server.addr()).unwrap();

    assert!(matches!(
        client.request("nope", 4),
        Err(RecoilError::NotFound { ref name }) if name == "nope"
    ));

    let data = sample(50_000, 2);
    client.publish("x", &data, &config(8)).unwrap();
    assert!(matches!(
        client.publish("x", &data, &config(8)),
        Err(RecoilError::AlreadyPublished { ref name }) if name == "x"
    ));

    // InvalidConfig cannot reconstruct its static field name remotely; it
    // degrades to a Net error carrying the detail.
    match client.request("x", 0) {
        Err(RecoilError::Net { detail }) => assert!(detail.contains("parallel_segments")),
        other => panic!("expected Net error, got {other:?}"),
    }

    // In-band ERROR frames leave the connection synchronized: the pooled
    // connection is reused, not dropped and re-dialed, across all of the
    // error responses above.
    assert_eq!(client.pooled_connections(), 1);
    assert_eq!(client.fetch_and_decode("x", 8).unwrap(), data);
    assert_eq!(client.pooled_connections(), 1);

    // Oversized publishes and oversized names fail client-side with a
    // typed config error before any bytes go out.
    assert!(matches!(
        client.publish(&"n".repeat(70_000), &data, &config(8)),
        Err(RecoilError::InvalidConfig { field: "name", .. })
    ));
    assert!(matches!(
        client.request(&"n".repeat(70_000), 4),
        Err(RecoilError::InvalidConfig { field: "name", .. })
    ));
}

/// Raw-socket HELLO exchange for protocol-violation tests.
fn raw_hello(addr: std::net::SocketAddr) -> TcpStream {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write_frame(&mut conn, FrameType::Hello, &Hello::ours().encode()).unwrap();
    match read_frame(&mut conn).unwrap() {
        ReadOutcome::Frame(FrameType::Hello, _) => conn,
        other => panic!("expected HELLO reply, got {other:?}"),
    }
}

/// Reads frames until the server closes the connection, returning whether
/// an ERROR frame was seen on the way out.
fn drain_to_eof(conn: &mut TcpStream) -> bool {
    let mut saw_error = false;
    loop {
        match read_frame(conn) {
            Ok(ReadOutcome::Frame(FrameType::Error, _)) => saw_error = true,
            Ok(ReadOutcome::Frame(..)) | Ok(ReadOutcome::Idle) => {}
            Ok(ReadOutcome::Eof) | Err(_) => return saw_error,
        }
    }
}

#[test]
fn malformed_frames_are_rejected_and_server_survives() {
    let server = start_server(small_net_config());
    let data = sample(40_000, 3);
    let client = NetClient::connect(server.addr()).unwrap();
    client.publish("x", &data, &config(4)).unwrap();

    // Garbage frame type after a valid HELLO.
    let mut conn = raw_hello(server.addr());
    use std::io::Write;
    conn.write_all(&[0xAB, 4, 0, 0, 0, 1, 2, 3, 4]).unwrap();
    assert!(drain_to_eof(&mut conn), "garbage type must earn an ERROR");

    // Oversized length prefix.
    let mut conn = raw_hello(server.addr());
    let mut bad = vec![FrameType::Request as u8];
    bad.extend_from_slice(&(recoil_net::MAX_FRAME_LEN + 1).to_le_bytes());
    conn.write_all(&bad).unwrap();
    assert!(
        drain_to_eof(&mut conn),
        "oversized frame must earn an ERROR"
    );

    // Truncated frame: promise 100 payload bytes, send 3, hang up.
    let mut conn = raw_hello(server.addr());
    conn.write_all(&[FrameType::Request as u8, 100, 0, 0, 0, 1, 2, 3])
        .unwrap();
    drop(conn);

    // A frame that parses but violates the protocol (client-sent CHUNK).
    let mut conn = raw_hello(server.addr());
    write_frame(&mut conn, FrameType::Chunk, &[0, 0, 0, 0]).unwrap();
    assert!(
        drain_to_eof(&mut conn),
        "unexpected CHUNK must earn an ERROR"
    );

    // HELLO with an unsupported version is rejected with an ERROR frame.
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let future = Hello {
        version: 99,
        capabilities: recoil_net::SUPPORTED_CAPS,
    };
    write_frame(&mut conn, FrameType::Hello, &future.encode()).unwrap();
    assert!(
        drain_to_eof(&mut conn),
        "version mismatch must earn an ERROR"
    );

    // After all that abuse, a well-behaved client still gets served.
    assert_eq!(client.fetch_and_decode("x", 4).unwrap(), data);
    server.shutdown();
}

#[test]
fn concurrent_clients_hammer_one_server() {
    let server = start_server(NetConfig {
        workers: 4,
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    });
    let datasets: Vec<Vec<u8>> = (0..2).map(|i| sample(120_000, 10 + i)).collect();
    let publisher = NetClient::connect(server.addr()).unwrap();
    for (i, data) in datasets.iter().enumerate() {
        publisher
            .publish(&format!("item{i}"), data, &config(32))
            .unwrap();
    }

    let served = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..6usize {
            let addr = server.addr();
            let datasets = &datasets;
            let served = &served;
            s.spawn(move || {
                let client = NetClient::connect(addr)
                    .unwrap()
                    .with_backend(ScalarBackend);
                for r in 0..12 {
                    let item = (t + r) % datasets.len();
                    let tier = [1u64, 4, 16, 1000][(t + r) % 4];
                    let got = client
                        .fetch_and_decode(&format!("item{item}"), tier)
                        .unwrap();
                    assert_eq!(got, datasets[item], "thread {t} round {r}");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(served.load(Ordering::Relaxed), 6 * 12);

    let stats = publisher.stats().unwrap();
    assert_eq!(stats.stats.publishes, 2);
    assert!(stats.stats.requests >= 6 * 12);
    assert!(stats.stats.cache_hits > 0, "repeated tiers must hit");
    server.shutdown();
}

#[test]
fn connection_cap_rejects_with_typed_busy_error() {
    let server = start_server(NetConfig {
        workers: 1,
        max_connections: 1,
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    });
    // The first client parks one negotiated connection in its pool; the
    // server worker stays on it, so the cap is reached.
    let first = NetClient::connect(server.addr()).unwrap();
    assert_eq!(first.pooled_connections(), 1);
    match NetClient::connect(server.addr()) {
        Err(RecoilError::Busy { retry_after_ms }) => {
            assert_eq!(
                retry_after_ms,
                NetConfig::default().busy_retry_after_ms,
                "the shed must carry the configured retry-after hint"
            )
        }
        other => panic!("expected busy rejection, got {other:?}"),
    }
    drop(first);
    server.shutdown();
}

#[test]
fn graceful_shutdown_finishes_inflight_requests() {
    // One publisher + three hammering clients, each holding a keep-alive
    // connection that pins a worker: size the pool for all of them.
    let server = start_server(NetConfig {
        workers: 6,
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    });
    let addr = server.addr();
    let data = sample(400_000, 7);
    let client = NetClient::connect(addr).unwrap();
    client.publish("big", &data, &config(64)).unwrap();

    let stop = AtomicBool::new(false);
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..3usize {
            let addr = server.addr();
            let data = &data;
            let stop = &stop;
            let ok = &ok;
            let failed = &failed;
            s.spawn(move || {
                let client = NetClient::connect(addr)
                    .unwrap()
                    .with_backend(ScalarBackend);
                while !stop.load(Ordering::Relaxed) {
                    match client.fetch_and_decode("big", 1 + t as u64) {
                        // Completed responses are complete: the CRC and
                        // structural checks passed, and the bytes match.
                        Ok(got) => {
                            assert_eq!(got, *data);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        // Once shutdown lands, refusals are clean errors.
                        Err(RecoilError::Net { .. }) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
        // Let the hammering overlap the shutdown.
        std::thread::sleep(Duration::from_millis(100));
        server.shutdown(); // joins all server threads
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        ok.load(Ordering::Relaxed) > 0,
        "some requests must have completed before shutdown"
    );
    // After shutdown the port no longer accepts.
    assert!(NetClient::connect(addr).is_err());
}

#[test]
fn streaming_fetch_is_byte_identical_and_pipelined() {
    // Small chunks force a real multi-chunk pipeline even on smoke-sized
    // payloads.
    let server = start_server(NetConfig {
        workers: 3,
        chunk_bytes: 4 * 1024,
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    });
    let data = sample(400_000, 21);
    let client = NetClient::connect(server.addr()).unwrap();
    client.publish("movie", &data, &config(64)).unwrap();

    for tier in [1u64, 2, 16, 64, 100_000] {
        let buffered = client.fetch_and_decode("movie", tier).unwrap();
        let streamed = client.fetch_and_decode_streaming("movie", tier).unwrap();
        assert_eq!(streamed.data, buffered, "tier {tier}");
        assert_eq!(streamed.data, data, "tier {tier}");
        assert_eq!(streamed.segments, tier.min(64), "tier {tier}");
        assert!(streamed.chunk_count > 1, "tier {tier}: single chunk");
        assert!(streamed.decode_batches >= 1, "tier {tier}");
        assert!(
            streamed.first_segment_nanos <= streamed.total_nanos,
            "tier {tier}"
        );
        // The pipeline's point: with several segments, the first one is
        // decoded before the whole payload has even arrived.
        if tier >= 16 {
            assert!(
                streamed.first_segment_nanos < streamed.transfer_nanos,
                "tier {tier}: first segment at {} ns, transfer ended {} ns",
                streamed.first_segment_nanos,
                streamed.transfer_nanos
            );
        }
    }

    // The empty edge case streams too.
    client.publish("empty", &[], &config(4)).unwrap();
    let empty = client.fetch_and_decode_streaming("empty", 4).unwrap();
    assert!(empty.data.is_empty());
    server.shutdown();
}

#[test]
fn streaming_clients_survive_graceful_shutdown_with_typed_errors() {
    let server = start_server(NetConfig {
        workers: 6,
        chunk_bytes: 2 * 1024,
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    });
    let addr = server.addr();
    let data = sample(500_000, 22);
    let client = NetClient::connect(addr).unwrap();
    client.publish("big", &data, &config(64)).unwrap();

    let stop = AtomicBool::new(false);
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..3usize {
            let data = &data;
            let stop = &stop;
            let ok = &ok;
            let failed = &failed;
            s.spawn(move || {
                let client = NetClient::connect(addr)
                    .unwrap()
                    .with_backend(ScalarBackend);
                while !stop.load(Ordering::Relaxed) {
                    match client.fetch_and_decode_streaming("big", 8 + t as u64) {
                        // Completed streams are complete: CRC verified and
                        // byte-identical.
                        Ok(streamed) => {
                            assert_eq!(streamed.data, *data);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        // Mid-stream shutdown must surface as a typed
                        // error — never a hang, never a partial buffer.
                        Err(RecoilError::Net { .. }) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(100));
        server.shutdown(); // joins all server threads
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        ok.load(Ordering::Relaxed) > 0,
        "some streaming fetches must have completed before shutdown"
    );
    // After shutdown the port refuses new streams outright.
    assert!(NetClient::connect(addr).is_err());
}

#[test]
fn concurrent_streaming_clients_under_the_connection_cap() {
    let server = start_server(NetConfig {
        workers: 5,
        max_connections: 5,
        chunk_bytes: 4 * 1024,
        read_timeout: Duration::from_millis(50),
        ..NetConfig::default()
    });
    let datasets: Vec<Vec<u8>> = (0..2).map(|i| sample(150_000, 30 + i)).collect();
    let publisher = NetClient::connect(server.addr()).unwrap();
    for (i, data) in datasets.iter().enumerate() {
        publisher
            .publish(&format!("item{i}"), data, &config(32))
            .unwrap();
    }

    let served = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let addr = server.addr();
            let datasets = &datasets;
            let served = &served;
            s.spawn(move || {
                let client = NetClient::connect(addr)
                    .unwrap()
                    .with_backend(ScalarBackend);
                for r in 0..8 {
                    let item = (t + r) % datasets.len();
                    let tier = [1u64, 4, 32, 1000][(t + r) % 4];
                    let streamed = client
                        .fetch_and_decode_streaming(&format!("item{item}"), tier)
                        .unwrap();
                    assert_eq!(streamed.data, datasets[item], "thread {t} round {r}");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(served.load(Ordering::Relaxed), 4 * 8);
    server.shutdown();
}

#[test]
fn pooled_connection_survives_and_is_reused() {
    let server = start_server(small_net_config());
    let data = sample(60_000, 9);
    let client = NetClient::connect(server.addr()).unwrap();
    client.publish("x", &data, &config(8)).unwrap();
    for _ in 0..5 {
        assert_eq!(client.fetch_and_decode("x", 8).unwrap(), data);
    }
    // One probe connection, reused serially: the pool never grows past it.
    assert_eq!(client.pooled_connections(), 1);
    server.shutdown();
}
