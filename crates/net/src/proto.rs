//! Typed payloads for each frame in the protocol.
//!
//! Every message has a symmetric `encode` / `decode` pair over the
//! [`PayloadWriter`] / [`PayloadReader`] cursors; `decode` consumes the
//! whole payload (trailing bytes are protocol violations).

use crate::frame::{PayloadReader, PayloadWriter, HELLO_MAGIC, PROTOCOL_VERSION, SUPPORTED_CAPS};
use recoil_core::RecoilError;
use recoil_server::{ServerStats, StoredContent, Transmission};
use recoil_telemetry::{
    HistogramSnapshot, Stage, TelemetryLevel, TelemetrySnapshot, TraceEvent, BUCKETS,
};

/// Version + capability negotiation, first frame in each direction.
///
/// The connection initiator sends its version and capability bits; the
/// acceptor answers with its own version and the **intersection** of
/// capabilities. A version mismatch is rejected with a typed error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the sender speaks.
    pub version: u16,
    /// Capability bitset ([`crate::frame::CAP_CHUNKED`], …).
    pub capabilities: u32,
}

impl Hello {
    /// The hello this build sends.
    pub fn ours() -> Self {
        Self {
            version: PROTOCOL_VERSION,
            capabilities: SUPPORTED_CAPS,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::preallocated(10);
        w.u32(HELLO_MAGIC);
        w.u16(self.version);
        w.u32(self.capabilities);
        w.0
    }

    pub fn decode(payload: &[u8]) -> Result<Self, RecoilError> {
        let mut r = PayloadReader::new(payload);
        if r.u32()? != HELLO_MAGIC {
            return Err(RecoilError::net("bad hello magic"));
        }
        let hello = Self {
            version: r.u16()?,
            capabilities: r.u32()?,
        };
        r.finish()?;
        Ok(hello)
    }
}

/// Client → server: encode `data` under `name` with the given knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishRequest {
    pub name: String,
    pub ways: u32,
    pub max_segments: u64,
    pub quant_bits: u32,
    pub data: Vec<u8>,
}

/// Encodes a publish payload straight from borrowed parts — one buffer,
/// no intermediate copy of `data` (it can be tens of MiB).
pub fn encode_publish(
    name: &str,
    ways: u32,
    max_segments: u64,
    quant_bits: u32,
    data: &[u8],
) -> Vec<u8> {
    let mut w = PayloadWriter::preallocated(data.len() + name.len() + 32);
    w.name(name);
    w.u32(ways);
    w.u64(max_segments);
    w.u32(quant_bits);
    w.bytes(data);
    w.0
}

impl PublishRequest {
    pub fn encode(&self) -> Vec<u8> {
        encode_publish(
            &self.name,
            self.ways,
            self.max_segments,
            self.quant_bits,
            &self.data,
        )
    }

    pub fn decode(payload: &[u8]) -> Result<Self, RecoilError> {
        let mut r = PayloadReader::new(payload);
        let msg = Self {
            name: r.name()?,
            ways: r.u32()?,
            max_segments: r.u64()?,
            quant_bits: r.u32()?,
            data: r.bytes()?.to_vec(),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Server → client: the publish landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishOk {
    /// Parallel segments the planner actually placed (best-effort ≤ max).
    pub segments: u64,
    /// Bitstream payload bytes the item will serve.
    pub stream_bytes: u64,
}

impl PublishOk {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::preallocated(16);
        w.u64(self.segments);
        w.u64(self.stream_bytes);
        w.0
    }

    pub fn decode(payload: &[u8]) -> Result<Self, RecoilError> {
        let mut r = PayloadReader::new(payload);
        let msg = Self {
            segments: r.u64()?,
            stream_bytes: r.u64()?,
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Client → server: serve `name` for a decoder with this much parallelism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentRequest {
    pub name: String,
    /// The client's parallel capacity, straight from the paper's request
    /// header (§3.3).
    pub parallel_segments: u64,
}

impl ContentRequest {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::preallocated(self.name.len() + 10);
        w.name(&self.name);
        w.u64(self.parallel_segments);
        w.0
    }

    pub fn decode(payload: &[u8]) -> Result<Self, RecoilError> {
        let mut r = PayloadReader::new(payload);
        let msg = Self {
            name: r.name()?,
            parallel_segments: r.u64()?,
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Client → server: resume a chunked transfer that died mid-stream.
///
/// `from_word` is how many bitstream words the client already holds (its
/// [`recoil_core::IncrementalDecoder`] received them before the serving
/// node died). The server answers with a fresh [`TransmitHeader`] — the
/// client cross-checks geometry and CRCs against the original — followed
/// by chunks covering **only** words `from_word..`, so no byte feeding an
/// already-decoded segment crosses the wire twice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeRequest {
    pub name: String,
    /// The client's parallel capacity — must match the original request so
    /// the replica serves the identical metadata tier.
    pub parallel_segments: u64,
    /// Complete words already received (a dangling carry byte is dropped by
    /// the client and re-sent by the replica).
    pub from_word: u64,
}

impl ResumeRequest {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::preallocated(self.name.len() + 18);
        w.name(&self.name);
        w.u64(self.parallel_segments);
        w.u64(self.from_word);
        w.0
    }

    pub fn decode(payload: &[u8]) -> Result<Self, RecoilError> {
        let mut r = PayloadReader::new(payload);
        let msg = Self {
            name: r.name()?,
            parallel_segments: r.u64()?,
            from_word: r.u64()?,
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Server → client: everything a remote decoder needs except the bitstream
/// words, which follow as `chunk_count` ordered `Chunk` frames.
///
/// The words' little-endian byte image is protected by `payload_crc`
/// (CRC-32), checked client-side after reassembly; metadata bytes carry
/// their own CRC footer from the core wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransmitHeader {
    /// Post-clamp segment count actually served.
    pub segments: u64,
    /// Whether the shrunk tier came from the server's LRU cache.
    pub cache_hit: bool,
    /// Server-side real-time combine cost (zero on a cache hit).
    pub combine_nanos: u64,
    /// Serialized shrunk metadata (§4.3 wire format, CRC-footered).
    pub metadata: Vec<u8>,
    /// Model quantization level `n`.
    pub quant_bits: u32,
    /// Quantized model frequencies (alphabet size is the length).
    pub freqs: Vec<u16>,
    /// Interleave width `W`.
    pub ways: u32,
    /// Symbol count `N`.
    pub num_symbols: u64,
    /// Per-lane final states (read first when decoding).
    pub final_states: Vec<u32>,
    /// Total bitstream bytes that will arrive chunked (2 × word count).
    pub word_bytes: u64,
    /// CRC-32 of the reassembled word bytes.
    pub payload_crc: u32,
    /// Number of `Chunk` frames that follow.
    pub chunk_count: u32,
}

impl TransmitHeader {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::preallocated(
            64 + self.metadata.len() + self.freqs.len() * 2 + self.final_states.len() * 4,
        );
        w.u64(self.segments);
        w.u8(u8::from(self.cache_hit));
        w.u64(self.combine_nanos);
        w.bytes(&self.metadata);
        w.u32(self.quant_bits);
        debug_assert!(
            self.freqs.len() <= 1 << 16,
            "alphabet exceeds the model cap"
        );
        // xtask: allow(wire-cast): encode path — the quantized alphabet is capped at 2^16 symbols.
        w.u32(self.freqs.len() as u32);
        for &f in &self.freqs {
            w.u16(f);
        }
        w.u32(self.ways);
        w.u64(self.num_symbols);
        for &s in &self.final_states {
            w.u32(s);
        }
        w.u64(self.word_bytes);
        w.u32(self.payload_crc);
        w.u32(self.chunk_count);
        w.0
    }

    pub fn decode(payload: &[u8]) -> Result<Self, RecoilError> {
        let mut r = PayloadReader::new(payload);
        let segments = r.u64()?;
        let cache_hit = r.u8()? != 0;
        let combine_nanos = r.u64()?;
        let metadata = r.bytes()?.to_vec();
        let quant_bits = r.u32()?;
        let alphabet = usize::try_from(r.u32()?)
            .map_err(|_| RecoilError::net("alphabet size exceeds the address space"))?;
        if alphabet > 1 << 16 {
            return Err(RecoilError::net(format!("bad alphabet size {alphabet}")));
        }
        // xtask: allow(wire-capacity): bounded to 2^16 entries (128 KiB) by the check above.
        let mut freqs = Vec::with_capacity(alphabet);
        for _ in 0..alphabet {
            freqs.push(r.u16()?);
        }
        let ways = r.u32()?;
        if ways == 0 || ways > u32::from(u16::MAX) {
            return Err(RecoilError::net(format!("bad lane count {ways}")));
        }
        let num_symbols = r.u64()?;
        let lanes = usize::try_from(ways)
            .map_err(|_| RecoilError::net("lane count exceeds the address space"))?;
        // xtask: allow(wire-capacity): bounded to u16::MAX lanes (256 KiB) by the check above.
        let mut final_states = Vec::with_capacity(lanes);
        for _ in 0..ways {
            final_states.push(r.u32()?);
        }
        let msg = Self {
            segments,
            cache_hit,
            combine_nanos,
            metadata,
            quant_bits,
            freqs,
            ways,
            num_symbols,
            final_states,
            word_bytes: r.u64()?,
            payload_crc: r.u32()?,
            chunk_count: r.u32()?,
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Server → client: counter snapshot plus the published item count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    pub stats: ServerStats,
    /// Items currently published.
    pub items: u64,
}

impl StatsReply {
    pub fn encode(&self) -> Vec<u8> {
        let s = &self.stats;
        let mut w = PayloadWriter::preallocated(96);
        for v in [
            s.publishes,
            s.requests,
            s.cache_hits,
            s.cache_misses,
            s.cache_evictions,
            s.bytes_served,
            s.active_connections,
            s.rejected_connections,
            s.evicted_connections,
            s.queue_depth,
            s.open_slots,
            self.items,
        ] {
            w.u64(v);
        }
        w.0
    }

    pub fn decode(payload: &[u8]) -> Result<Self, RecoilError> {
        let mut r = PayloadReader::new(payload);
        let msg = Self {
            stats: ServerStats {
                publishes: r.u64()?,
                requests: r.u64()?,
                cache_hits: r.u64()?,
                cache_misses: r.u64()?,
                cache_evictions: r.u64()?,
                bytes_served: r.u64()?,
                active_connections: r.u64()?,
                rejected_connections: r.u64()?,
                evicted_connections: r.u64()?,
                queue_depth: r.u64()?,
                open_slots: r.u64()?,
            },
            items: r.u64()?,
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Wire version of the TELEMETRY reply payload. Instruments are *named* on
/// the wire, so new counters or histograms can appear without a version
/// bump; the version only changes if the framing itself does.
pub const TELEMETRY_REPLY_VERSION: u8 = 1;

/// Most named instruments (counters + gauges + histograms each) a reply
/// may carry — a hostile count cannot drive a large allocation.
const TELEMETRY_MAX_SERIES: u16 = 1024;

/// Most trace events a reply may carry (the server ring holds 1024; the
/// cap leaves headroom for bigger rings without a version bump).
const TELEMETRY_MAX_TRACE: u32 = 65_536;

/// Server → client: a full telemetry snapshot — named counters, gauges,
/// histograms (sparse non-zero buckets), and, when the server runs at
/// [`TelemetryLevel::Trace`], the drained event ring.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReply {
    pub snapshot: TelemetrySnapshot,
    /// `(ticket, event)` pairs in ticket order; empty below trace level.
    pub trace: Vec<(u64, TraceEvent)>,
}

impl TelemetryReply {
    pub fn encode(&self) -> Vec<u8> {
        let s = &self.snapshot;
        let mut w = PayloadWriter::new();
        w.u8(TELEMETRY_REPLY_VERSION);
        w.u8(s.level.byte());
        debug_assert!(
            s.counters.len().max(s.gauges.len()).max(s.hists.len())
                <= usize::from(TELEMETRY_MAX_SERIES),
            "snapshot exceeds the wire series cap"
        );
        // xtask: allow(wire-cast): encode path — snapshots carry a fixed small set of named instruments, asserted above.
        w.u16(s.counters.len() as u16);
        for (name, v) in &s.counters {
            w.name(name);
            w.u64(*v);
        }
        // xtask: allow(wire-cast): encode path — see the series-cap assertion above.
        w.u16(s.gauges.len() as u16);
        for (name, v) in &s.gauges {
            w.name(name);
            w.u64(*v);
        }
        // xtask: allow(wire-cast): encode path — see the series-cap assertion above.
        w.u16(s.hists.len() as u16);
        for (name, h) in &s.hists {
            w.name(name);
            w.u64(h.count);
            w.u64(h.sum);
            w.u64(h.max);
            let nonzero = h.buckets.iter().filter(|&&n| n != 0).count();
            // xtask: allow(wire-cast): encode path — at most BUCKETS (64) buckets exist.
            w.u8(nonzero as u8);
            for (b, &n) in h.buckets.iter().enumerate() {
                if n != 0 {
                    // xtask: allow(wire-cast): encode path — bucket indices are < BUCKETS (64).
                    w.u8(b as u8);
                    w.u64(n);
                }
            }
        }
        debug_assert!(
            u32::try_from(self.trace.len()).is_ok_and(|n| n <= TELEMETRY_MAX_TRACE),
            "trace exceeds the wire event cap"
        );
        // xtask: allow(wire-cast): encode path — the server ring is far below the event cap, asserted above.
        w.u32(self.trace.len() as u32);
        for (ticket, ev) in &self.trace {
            w.u64(*ticket);
            w.u64(ev.conn_gen);
            // xtask: allow(wire-cast): encode path — Stage is repr(u8), the cast is its byte value.
            w.u8(ev.stage as u8);
            w.u64(ev.t_ns);
            w.u64(ev.detail);
        }
        w.0
    }

    pub fn decode(payload: &[u8]) -> Result<Self, RecoilError> {
        let mut r = PayloadReader::new(payload);
        let version = r.u8()?;
        if version != TELEMETRY_REPLY_VERSION {
            return Err(RecoilError::net(format!(
                "unsupported telemetry reply version {version}"
            )));
        }
        let level = TelemetryLevel::from_u8(r.u8()?)
            .ok_or_else(|| RecoilError::net("bad telemetry level byte"))?;
        let n_counters = Self::series_count(r.u16()?)?;
        let mut counters = Vec::new();
        for _ in 0..n_counters {
            let name = r.name()?;
            counters.push((name, r.u64()?));
        }
        let n_gauges = Self::series_count(r.u16()?)?;
        let mut gauges = Vec::new();
        for _ in 0..n_gauges {
            let name = r.name()?;
            gauges.push((name, r.u64()?));
        }
        let n_hists = Self::series_count(r.u16()?)?;
        let mut hists = Vec::new();
        for _ in 0..n_hists {
            let name = r.name()?;
            let mut h = HistogramSnapshot {
                count: r.u64()?,
                sum: r.u64()?,
                max: r.u64()?,
                ..HistogramSnapshot::default()
            };
            let nonzero = r.u8()?;
            if usize::from(nonzero) > BUCKETS {
                return Err(RecoilError::net(format!(
                    "bad bucket count {nonzero} in telemetry histogram"
                )));
            }
            for _ in 0..nonzero {
                let b = usize::from(r.u8()?);
                let n = r.u64()?;
                *h.buckets
                    .get_mut(b)
                    .ok_or_else(|| RecoilError::net(format!("bad bucket index {b}")))? = n;
            }
            hists.push((name, h));
        }
        let n_trace = r.u32()?;
        if n_trace > TELEMETRY_MAX_TRACE {
            return Err(RecoilError::net(format!(
                "bad telemetry trace count {n_trace}"
            )));
        }
        let mut trace = Vec::new();
        for _ in 0..n_trace {
            let ticket = r.u64()?;
            let conn_gen = r.u64()?;
            let stage = Stage::from_u8(r.u8()?)
                .ok_or_else(|| RecoilError::net("bad telemetry stage byte"))?;
            trace.push((
                ticket,
                TraceEvent {
                    conn_gen,
                    stage,
                    t_ns: r.u64()?,
                    detail: r.u64()?,
                },
            ));
        }
        r.finish()?;
        Ok(Self {
            snapshot: TelemetrySnapshot {
                level,
                counters,
                gauges,
                hists,
            },
            trace,
        })
    }

    fn series_count(n: u16) -> Result<u16, RecoilError> {
        if n > TELEMETRY_MAX_SERIES {
            return Err(RecoilError::net(format!("bad telemetry series count {n}")));
        }
        Ok(n)
    }
}

/// Encodes the TRANSMIT payload for `(transmission, item)` straight into
/// `w` — byte-for-byte the image [`TransmitHeader::encode`] produces, but
/// built from the stored content without the owned struct (no metadata
/// copy, no freqs or final-states clones), for the reactor's per-request
/// hot path. The payload CRC is the item's memoized whole-stream CRC-32,
/// valid because chunk plans tile the word stream exactly.
pub(crate) fn write_transmit_header(
    w: &mut PayloadWriter,
    transmission: &Transmission,
    item: &StoredContent,
    chunk_count: u32,
) {
    let stream = &item.stream;
    let table = item.model.table();
    w.u64(transmission.tier.segments);
    w.u8(u8::from(transmission.cache_hit));
    w.u64(u64::try_from(transmission.combine_nanos).unwrap_or(u64::MAX));
    w.bytes(transmission.metadata_bytes());
    w.u32(table.quant_bits());
    // xtask: allow(wire-cast): encode path — CdfTable caps the alphabet at 2^16 symbols.
    w.u32(table.alphabet_size() as u32);
    for s in 0..table.alphabet_size() {
        // Quantizer invariant: every frequency is < 2^16, so u16 is exact.
        // xtask: allow(wire-cast): see the quantizer invariant above.
        w.u16(table.freq(s) as u16);
    }
    w.u32(stream.ways);
    w.u64(stream.num_symbols);
    for &s in &stream.final_states {
        w.u32(s);
    }
    w.u64(stream.words.len() as u64 * 2);
    w.u32(item.payload_crc32());
    w.u32(chunk_count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_round_trips() {
        let hello = Hello::ours();
        assert_eq!(Hello::decode(&hello.encode()).unwrap(), hello);

        let publish = PublishRequest {
            name: "movie".into(),
            ways: 32,
            max_segments: 256,
            quant_bits: 11,
            data: (0..1000u32).map(|i| i as u8).collect(),
        };
        assert_eq!(PublishRequest::decode(&publish.encode()).unwrap(), publish);

        let ok = PublishOk {
            segments: 200,
            stream_bytes: 123_456,
        };
        assert_eq!(PublishOk::decode(&ok.encode()).unwrap(), ok);

        let req = ContentRequest {
            name: "movie".into(),
            parallel_segments: 16,
        };
        assert_eq!(ContentRequest::decode(&req.encode()).unwrap(), req);

        let resume = ResumeRequest {
            name: "movie".into(),
            parallel_segments: 16,
            from_word: 123_456,
        };
        assert_eq!(ResumeRequest::decode(&resume.encode()).unwrap(), resume);
        let mut trailing = resume.encode();
        trailing.push(0);
        assert!(ResumeRequest::decode(&trailing).is_err());

        let transmit = TransmitHeader {
            segments: 16,
            cache_hit: true,
            combine_nanos: 12_345,
            metadata: vec![1, 2, 3, 4],
            quant_bits: 11,
            freqs: (0..256u32).map(|i| i as u16).collect(),
            ways: 32,
            num_symbols: 1_000_000,
            final_states: (0..32u32).map(|i| 65_536 + i).collect(),
            word_bytes: 400_000,
            payload_crc: 0xDEAD_BEEF,
            chunk_count: 2,
        };
        assert_eq!(
            TransmitHeader::decode(&transmit.encode()).unwrap(),
            transmit
        );

        let stats = StatsReply {
            stats: ServerStats {
                publishes: 1,
                requests: 2,
                cache_hits: 3,
                cache_misses: 4,
                cache_evictions: 5,
                bytes_served: 6,
                active_connections: 7,
                rejected_connections: 8,
                evicted_connections: 9,
                queue_depth: 10,
                open_slots: 11,
            },
            items: 12,
        };
        assert_eq!(StatsReply::decode(&stats.encode()).unwrap(), stats);

        let mut hist = HistogramSnapshot::default();
        hist.buckets[0] = 2;
        hist.buckets[11] = 5;
        hist.buckets[BUCKETS - 1] = 1;
        hist.count = 8;
        hist.sum = 123_456;
        hist.max = u64::MAX;
        let telemetry = TelemetryReply {
            snapshot: TelemetrySnapshot {
                level: TelemetryLevel::Trace,
                counters: vec![("frames_read".into(), 42), ("evictions".into(), 0)],
                gauges: vec![("queue_depth".into(), 3)],
                hists: vec![("inline_serve_ns".into(), hist)],
            },
            trace: vec![
                (
                    7,
                    TraceEvent {
                        conn_gen: 99,
                        stage: Stage::FrameRead,
                        t_ns: 1_000,
                        detail: 4,
                    },
                ),
                (
                    8,
                    TraceEvent {
                        conn_gen: 99,
                        stage: Stage::WriteFlush,
                        t_ns: 2_000,
                        detail: 512,
                    },
                ),
            ],
        };
        assert_eq!(
            TelemetryReply::decode(&telemetry.encode()).unwrap(),
            telemetry
        );
    }

    #[test]
    fn hostile_telemetry_replies_are_rejected() {
        let good = TelemetryReply::default().encode();
        // Unknown version.
        let mut bad = good.clone();
        bad[0] = 99;
        assert!(TelemetryReply::decode(&bad).is_err());
        // Bad level byte.
        let mut bad = good.clone();
        bad[1] = 7;
        assert!(TelemetryReply::decode(&bad).is_err());
        // Hostile series count (offset 2 is the counter count).
        let mut bad = good.clone();
        bad[2..4].copy_from_slice(&u16::MAX.to_le_bytes());
        assert!(TelemetryReply::decode(&bad).is_err());
        // Trailing garbage.
        let mut bad = good;
        bad.push(0);
        assert!(TelemetryReply::decode(&bad).is_err());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Hello::decode(b"xx").is_err());
        // Wrong magic.
        let mut bad = Hello::ours().encode();
        bad[0] ^= 0xFF;
        assert!(Hello::decode(&bad).is_err());
        // Trailing garbage.
        let mut long = Hello::ours().encode();
        long.push(0);
        assert!(Hello::decode(&long).is_err());
        // Hostile lane count would otherwise drive a huge allocation.
        let transmit = TransmitHeader {
            segments: 1,
            cache_hit: false,
            combine_nanos: 0,
            metadata: vec![],
            quant_bits: 11,
            freqs: vec![],
            ways: 1,
            num_symbols: 0,
            final_states: vec![65_536],
            word_bytes: 0,
            payload_crc: 0,
            chunk_count: 0,
        };
        let mut bytes = transmit.encode();
        // `ways` sits right after segments(8) + hit(1) + nanos(8) +
        // metadata(4) + quant(4) + alphabet count(4) = offset 29.
        bytes[29..33].copy_from_slice(&0u32.to_le_bytes());
        assert!(TransmitHeader::decode(&bytes).is_err());
    }
}
