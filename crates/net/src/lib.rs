//! Framed TCP transport for the content-delivery service (paper §1, §3.3).
//!
//! The paper's use case is inherently remote: "the client requests content,
//! and also attaches its parallel capacity inside the request header; the
//! server receives the request, shrinks down the metadata in real-time, and
//! serves the bitstream and the shrunk metadata to the decoder." This crate
//! puts that exchange on a real socket: a length-prefixed binary protocol
//! over `std::net` TCP, an event-driven [`NetServer`] wrapping the sharded
//! in-process [`ContentServer`], and a pooling [`NetClient`] whose
//! [`NetClient::fetch_and_decode`] turns a remote fetch into one call that
//! ends in decoded bytes.
//!
//! ## Wire protocol
//!
//! Every frame is `[type: u8][len: u32 LE][payload]`; unknown types and
//! payloads over 64 MiB are rejected before allocation. A connection opens
//! with a HELLO exchange (version + capability negotiation), then carries
//! any number of requests:
//!
//! | Frame | Dir | Payload |
//! |---|---|---|
//! | `HELLO` (0x01) | both | magic, protocol version, capability bits |
//! | `PUBLISH` (0x02) | C→S | name, encoder knobs, raw data to encode |
//! | `PUBLISH_OK` (0x03) | S→C | planned segments, bitstream bytes |
//! | `REQUEST` (0x04) | C→S | name, client's `parallel_segments` |
//! | `TRANSMIT` (0x05) | S→C | shrunk metadata, model, stream geometry, payload CRC-32, chunk count |
//! | `CHUNK` (0x06) | S→C | sequence number + one bitstream slice |
//! | `STATS` (0x07) | C→S | *(empty)* |
//! | `STATS_REPLY` (0x08) | S→C | counter snapshot + item count |
//! | `TELEMETRY` (0x09) | C→S | *(empty)*; requires the negotiated `CAP_TELEMETRY` bit |
//! | `TELEMETRY_REPLY` (0x0A) | S→C | full telemetry snapshot (counters, gauges, stage histograms) + drained stage-trace events |
//! | `RESUME` (0x0B) | C→S | name, `parallel_segments`, `from_word`; requires the negotiated `CAP_RESUME` bit |
//! | `ERROR` (0x0E) | both | error code + detail, maps onto [`RecoilError`] |
//!
//! Large bitstreams are **chunked**: `TRANSMIT` carries everything except
//! the words, which follow as ordered `CHUNK` frames; the client verifies a
//! CRC-32 over the reassembled payload (metadata bytes carry their own
//! footer from the core wire format). Typed `ERROR` frames round-trip
//! [`RecoilError`]: `NotFound`/`AlreadyPublished`/`Busy` reconstruct
//! exactly, the rest degrade to [`RecoilError::Net`] with the remote
//! display text.
//!
//! ## Segment resume
//!
//! `RESUME` is `REQUEST` plus a word offset: "serve `name` at this
//! parallelism, but I already hold the first `from_word` complete words."
//! The server replies with the same `TRANSMIT` header an original fetch
//! gets (whole-stream geometry and payload CRC, so the client can
//! cross-check against the header it saw before the failure) whose chunk
//! plan is trimmed to the missing words. Recoil's split metadata is what
//! makes this cheap: segment *m* is decodable once `splits[m].offset + 1`
//! words arrived, so readiness is a strict prefix of the word stream and a
//! byte offset *is* a resume point — no per-segment state to rebuild, no
//! interleaved stream to unpick. The fabric crate's failover path uses
//! this to continue a fetch on a replica mid-stream, byte-identical to an
//! undisturbed fetch, without re-sending segments the client already
//! decoded.
//!
//! ## Fault injection
//!
//! [`NetConfig::fault_plan`] arms a deterministic [`FaultPlan`] on a
//! server: reset every accept, delay or tear each write syscall, or sever
//! connections at a fixed response-byte offset (a mid-stream crash). Plans
//! are plain data with seeded constructors, so the chaos suite and
//! `bench net --chaos` replay the same failures on every run.
//!
//! ## Streaming pipelined decode
//!
//! Chunk boundaries are not arbitrary: the server cuts the bitstream with
//! the **split-aligned chunk plan** ([`recoil_core::plan_chunks`]) for the
//! served metadata tier, so each chunk completes whole decode segments.
//! [`NetClient::fetch_and_decode_streaming`] exploits that: arriving chunks
//! feed a [`recoil_core::IncrementalDecoder`] and every newly resident
//! segment is decoded — through the client's configured backend and its
//! thread pool — while later chunks are still on the wire. A bounded
//! in-flight chunk budget ([`NetClientConfig::streaming_inflight_chunks`])
//! gives backpressure instead of unbounded buffering; the streaming CRC
//! check is preserved, and the decoded bytes are guaranteed byte-identical
//! to the buffered [`NetClient::fetch_and_decode`] path. The returned
//! [`StreamedFetch`] reports time-to-first-segment, transfer, and total
//! latency so callers can see how much decode time the transfer hid.
//!
//! ## Server concurrency model
//!
//! [`NetServer::bind`] starts one **reactor thread** that multiplexes
//! every connection through `recoil-reactor`'s readiness plumbing:
//! edge-triggered epoll (with a portable `poll(2)` fallback behind
//! [`NetConfig::poll_fallback`]), per-connection state in a
//! generation-checked slab whose buffers are parked on close and recycled
//! on the next accept, and a deadline queue for progress timeouts.
//! Connections are **not** pinned to threads: thousands of mostly-idle
//! peers cost one slab slot each. HELLO negotiation, stats snapshots, and
//! cache-hit requests are served inline on the loop with zero per-request
//! allocation; CPU-bound work — the rANS encode behind a `PUBLISH`, the
//! real-time metadata combine behind a tier-cache miss — runs on a small
//! dispatch pool ([`recoil_parallel::ThreadPool`], sized by
//! [`NetConfig::workers`]) and completes back to the loop through a wake
//! pipe.
//!
//! `max_connections` caps open connections (excess accepts get a typed
//! busy error). Timeouts are *progress* deadlines managed by the reactor:
//! a peer that starts a frame must keep bytes flowing within
//! [`NetConfig::read_timeout`] or it is evicted with a typed `ERROR`
//! frame (slow-loris defense, counted in the `evicted_connections`
//! stat); a peer that stops consuming its response is dropped after
//! [`NetConfig::write_timeout`]. Idle connections *between* frames are
//! never timed. Shutdown is graceful: the loop stops accepting, closes
//! idle connections, and lets every in-flight response finish before the
//! threads join.
//!
//! Cache-hit requests resolve through [`ContentServer::fetch_cached`]
//! without leaving the loop; misses go through [`ContentServer::fetch`],
//! the atomic name→(transmission, content) lookup, on a worker. The
//! server's `bytes_served` / `active_connections` /
//! `rejected_connections` / `evicted_connections` counters and the
//! `queue_depth` / `open_slots` gauges surface through the `STATS` frame.
//! The original thread-per-connection backend completed its deprecation
//! cycle and has been removed.
//!
//! ## Observability
//!
//! [`NetConfig::telemetry`] selects a [`recoil_telemetry`] level for the
//! reactor: `Off` (default, near-zero cost), `Counters` (pipeline counters,
//! gauges, and stage histograms; hot-path spans are sampled), or `Trace`
//! (adds a lock-free stage-event ring and times every span). Either side of
//! the wire can hold the instruments: servers expose theirs through the
//! `TELEMETRY` frame ([`NetClient::remote_telemetry`]) when both ends
//! negotiated [`CAP_TELEMETRY`], and clients keep their own handle
//! ([`NetClient::telemetry`]) recording streaming-fetch latencies. Both
//! gauges published over STATS and TELEMETRY are written at one point in
//! the event loop, so the two frames always agree.
//!
//! ## Client
//!
//! [`NetClient`] keeps a small pool of negotiated connections and retries
//! failed calls under a real policy: only idempotent operations (fetch,
//! stats — never PUBLISH over a live connection), a per-call retry budget
//! ([`NetClientConfig::retry_budget`]), jittered exponential backoff, and
//! typed [`RecoilError::Busy`] shed responses honor the server's
//! retry-after hint. A dead pooled connection still gets one immediate
//! free redial (staleness is bookkeeping, not server failure). Decode goes
//! through any [`DecodeBackend`] — AVX-512 → AVX2 → scalar auto-dispatch
//! by default, so a remote fetch-and-decode is:
//!
//! ```no_run
//! use recoil_net::NetClient;
//! let client = NetClient::connect("127.0.0.1:4870")?;
//! let bytes = client.fetch_and_decode("movie", 16)?;
//! # Ok::<(), recoil_core::RecoilError>(())
//! ```
//!
//! [`ContentServer`]: recoil_server::ContentServer
//! [`ContentServer::fetch`]: recoil_server::ContentServer::fetch
//! [`ContentServer::fetch_cached`]: recoil_server::ContentServer::fetch_cached
//! [`RecoilError`]: recoil_core::RecoilError
//! [`RecoilError::Net`]: recoil_core::RecoilError::Net
//! [`DecodeBackend`]: recoil_core::codec::DecodeBackend

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

mod client;
mod fault;
mod frame;
mod proto;
mod server;

pub use client::{
    validate_transmit_header, FetchSession, NetClient, NetClientConfig, RemoteContent,
    StreamedFetch,
};
pub use fault::{splitmix64, FaultPlan};
pub use frame::{
    FrameType, CAP_CHUNKED, CAP_RESUME, CAP_TELEMETRY, HELLO_MAGIC, MAX_FRAME_LEN,
    PROTOCOL_VERSION, SUPPORTED_CAPS,
};
pub use proto::{
    ContentRequest, Hello, PublishOk, PublishRequest, ResumeRequest, StatsReply, TelemetryReply,
    TransmitHeader,
};
pub use recoil_reactor::SlabStats;
pub use server::{NetConfig, NetServer, NetServerHandle};

// Framing internals the integration tests poke at (sending deliberately
// malformed frames requires the raw read/write entry points).
#[doc(hidden)]
pub mod raw {
    pub use crate::frame::{
        append_frame, begin_frame, decode_error, encode_error, end_frame, read_frame, write_frame,
        PayloadReader, PayloadWriter, ReadOutcome,
    };
}
