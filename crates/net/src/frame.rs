//! The length-prefixed binary framing layer.
//!
//! Every frame on a connection is `[type: u8][len: u32 LE][payload]`. The
//! type byte must be a known [`FrameType`] and `len` must not exceed
//! [`MAX_FRAME_LEN`] — both are checked *before* the payload is read, so a
//! garbage or hostile header can never drive an allocation.
//!
//! Reads are timeout-aware: a timeout before the first header byte is an
//! [`ReadOutcome::Idle`] tick (the caller checks its shutdown flag and
//! retries), while a timeout *mid-frame* is retried a bounded number of
//! times and then reported as a stalled peer.

use recoil_core::RecoilError;
use std::io::{ErrorKind, Read, Write};

/// Protocol version spoken by this build; [`Hello`] frames negotiate it.
pub const PROTOCOL_VERSION: u16 = 1;

/// Magic opening every [`Hello`] payload: `"RNET"`.
pub const HELLO_MAGIC: u32 = 0x524E_4554;

/// Capability bit: the peer streams large bitstreams as [`FrameType::Chunk`]
/// frames after a [`FrameType::Transmit`] header.
pub const CAP_CHUNKED: u32 = 1;

/// Capability bit: the peer answers [`FrameType::Telemetry`] requests with
/// a [`FrameType::TelemetryReply`] snapshot. Negotiated, not assumed — an
/// old peer that never learned these frame bytes still handshakes cleanly.
pub const CAP_TELEMETRY: u32 = 2;

/// Capability bit: the peer accepts [`FrameType::Resume`] requests that
/// restart a chunked transfer from a mid-stream word offset. Negotiated,
/// not assumed — a router only attempts segment-resume failover against
/// replicas that advertised it.
pub const CAP_RESUME: u32 = 4;

/// Every capability this build implements.
pub const SUPPORTED_CAPS: u32 = CAP_CHUNKED | CAP_TELEMETRY | CAP_RESUME;

/// Hard ceiling on one frame's payload (64 MiB): bigger payloads must be
/// chunked. Checked before allocating.
pub const MAX_FRAME_LEN: u32 = 1 << 26;

/// How many consecutive read timeouts mid-frame count as a stalled peer.
const MID_FRAME_TIMEOUT_RETRIES: u32 = 120;

/// The frame vocabulary. One byte on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Version + capability negotiation; first frame in each direction.
    Hello = 0x01,
    /// Client → server: encode-and-publish a payload under a name.
    Publish = 0x02,
    /// Server → client: the publish succeeded.
    PublishOk = 0x03,
    /// Client → server: content name + the client's parallel capacity.
    Request = 0x04,
    /// Server → client: shrunk metadata, model, stream geometry; the
    /// bitstream words follow as `Chunk` frames.
    Transmit = 0x05,
    /// One slice of a chunked bitstream payload.
    Chunk = 0x06,
    /// Client → server: ask for the serving counters.
    Stats = 0x07,
    /// Server → client: the counter snapshot.
    StatsReply = 0x08,
    /// Client → server: ask for the full telemetry snapshot (requires the
    /// negotiated [`CAP_TELEMETRY`] capability).
    Telemetry = 0x09,
    /// Server → client: versioned telemetry snapshot — named counters,
    /// gauges, histograms, and (at trace level) the drained event ring.
    TelemetryReply = 0x0A,
    /// Client → server: like `Request`, but resuming a transfer that died
    /// mid-stream — carries the word offset already received, so the
    /// server streams only the remaining chunk-plan suffix (requires the
    /// negotiated [`CAP_RESUME`] capability).
    Resume = 0x0B,
    /// Either direction: a typed error (maps onto [`RecoilError`]).
    Error = 0x0E,
}

impl FrameType {
    /// Parses a wire byte, rejecting unknown types.
    pub fn from_u8(b: u8) -> Result<Self, RecoilError> {
        Ok(match b {
            0x01 => Self::Hello,
            0x02 => Self::Publish,
            0x03 => Self::PublishOk,
            0x04 => Self::Request,
            0x05 => Self::Transmit,
            0x06 => Self::Chunk,
            0x07 => Self::Stats,
            0x08 => Self::StatsReply,
            0x09 => Self::Telemetry,
            0x0A => Self::TelemetryReply,
            0x0B => Self::Resume,
            0x0E => Self::Error,
            other => {
                return Err(RecoilError::net(format!(
                    "unknown frame type 0x{other:02X}"
                )))
            }
        })
    }

    /// The wire byte for this frame type.
    pub fn byte(self) -> u8 {
        // xtask: allow(wire-cast): repr(u8) discriminant read of a fieldless enum, not a wire-derived value.
        self as u8
    }
}

/// What one blocking read attempt produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame.
    Frame(FrameType, Vec<u8>),
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The read timed out before any header byte arrived — the connection
    /// is idle, not broken. Callers poll their shutdown flag and retry.
    Idle,
}

/// True for the error kinds a socket read timeout produces.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Maps an I/O failure into the workspace error type.
pub fn io_err(context: &str, e: std::io::Error) -> RecoilError {
    RecoilError::net(format!("{context}: {e}"))
}

/// Fills `buf`, retrying bounded-many read timeouts (the frame has started,
/// so the bytes are owed; a peer that stalls forever is an error).
fn read_exact_patient(r: &mut impl Read, buf: &mut [u8]) -> Result<(), RecoilError> {
    let mut filled = 0;
    let mut stalls = 0;
    while let Some(rest) = buf.get_mut(filled..).filter(|rest| !rest.is_empty()) {
        match r.read(rest) {
            Ok(0) => return Err(RecoilError::net("connection closed mid-frame")),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MID_FRAME_TIMEOUT_RETRIES {
                    return Err(RecoilError::net("peer stalled mid-frame"));
                }
            }
            Err(e) => return Err(io_err("frame read", e)),
        }
    }
    Ok(())
}

/// Reads one frame, distinguishing idle timeouts and clean EOF from data.
///
/// The type byte and length are validated before the payload allocation:
/// unknown types and oversized lengths fail without reading further.
pub fn read_frame(r: &mut impl Read) -> Result<ReadOutcome, RecoilError> {
    let mut ty = [0u8; 1];
    loop {
        match r.read(&mut ty) {
            Ok(0) => return Ok(ReadOutcome::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Ok(ReadOutcome::Idle),
            Err(e) => return Err(io_err("frame header read", e)),
        }
    }
    let [ty_byte] = ty;
    let ty = FrameType::from_u8(ty_byte)?;
    let mut len = [0u8; 4];
    read_exact_patient(r, &mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(RecoilError::net(format!(
            "oversized frame: {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    // The cap check above bounds this allocation to MAX_FRAME_LEN.
    let len = usize::try_from(len)
        .map_err(|_| RecoilError::net("frame length exceeds the address space"))?;
    let mut payload = vec![0u8; len];
    read_exact_patient(r, &mut payload)?;
    Ok(ReadOutcome::Frame(ty, payload))
}

/// Starts a frame directly inside an in-memory write buffer: appends the
/// type byte and a length placeholder, returning the payload's start
/// offset. The caller appends the payload bytes and then seals the frame
/// with [`end_frame`]. This is how the event-driven server stages
/// responses — straight into the connection's pending-write buffer, no
/// intermediate payload allocation.
pub fn begin_frame(buf: &mut Vec<u8>, ty: FrameType) -> usize {
    buf.push(ty.byte());
    buf.extend_from_slice(&[0u8; 4]);
    buf.len()
}

/// Seals a frame opened with [`begin_frame`] by patching the length field.
/// Fails (leaving the buffer for the caller to roll back) if the payload
/// outgrew [`MAX_FRAME_LEN`] — the peer would kill the connection on its
/// own length check anyway.
pub fn end_frame(buf: &mut [u8], payload_start: usize) -> Result<(), RecoilError> {
    let len = buf
        .len()
        .checked_sub(payload_start)
        .ok_or_else(|| RecoilError::net("frame payload start beyond the buffer"))?;
    let len = u32::try_from(len)
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            RecoilError::net(format!(
                "refusing to send an oversized frame: {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
            ))
        })?;
    payload_start
        .checked_sub(4)
        .and_then(|at| buf.get_mut(at..payload_start))
        .ok_or_else(|| RecoilError::net("frame length slot missing before the payload"))?
        .copy_from_slice(&len.to_le_bytes());
    Ok(())
}

/// Appends one complete frame to an in-memory write buffer.
pub fn append_frame(buf: &mut Vec<u8>, ty: FrameType, payload: &[u8]) -> Result<(), RecoilError> {
    let at = begin_frame(buf, ty);
    buf.extend_from_slice(payload);
    end_frame(buf, at)
}

/// Writes one frame (header + payload) and flushes nothing — TCP buffering
/// plus `TCP_NODELAY` on both ends keeps latency flat.
///
/// Oversized payloads are rejected here, in release builds too: the peer
/// would kill the connection on the length check anyway, so failing before
/// any bytes move gives the caller a useful error instead of a hangup.
pub fn write_frame(w: &mut impl Write, ty: FrameType, payload: &[u8]) -> Result<(), RecoilError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            RecoilError::net(format!(
                "refusing to send an oversized frame: {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                payload.len()
            ))
        })?;
    let [l0, l1, l2, l3] = len.to_le_bytes();
    let header = [ty.byte(), l0, l1, l2, l3];
    w.write_all(&header).map_err(|e| io_err("frame write", e))?;
    w.write_all(payload).map_err(|e| io_err("frame write", e))
}

// ---------------------------------------------------------------------------
// Payload (de)serialization.
// ---------------------------------------------------------------------------

/// Little-endian appenders for payload construction.
pub struct PayloadWriter(pub Vec<u8>);

impl PayloadWriter {
    pub fn new() -> Self {
        Self(Vec::new())
    }
    /// Encode-side pre-allocation; `cap` is always a locally computed
    /// size, never a wire-derived length.
    pub fn preallocated(cap: usize) -> Self {
        // xtask: allow(wire-capacity): encode path — the capacity comes from in-memory data the caller owns.
        Self(Vec::with_capacity(cap))
    }
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Length-prefixed (u32) byte blob. Blobs over `u32::MAX` cannot occur:
    /// every payload is rejected against [`MAX_FRAME_LEN`] (far below
    /// `u32::MAX`) before any byte reaches the wire.
    pub fn bytes(&mut self, v: &[u8]) {
        debug_assert!(
            u32::try_from(v.len()).is_ok(),
            "blob length must fit the u32 prefix"
        );
        // xtask: allow(wire-cast): encode path — oversized payloads are rejected by the MAX_FRAME_LEN check before hitting the wire.
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    /// Length-prefixed (u16) UTF-8 string. Callers validate the length at
    /// the API boundary (`NetClient` rejects names over 65535 bytes); a
    /// longer name here would desync the length prefix.
    pub fn name(&mut self, v: &str) {
        debug_assert!(
            v.len() <= usize::from(u16::MAX),
            "name length must be pre-validated"
        );
        // xtask: allow(wire-cast): encode path — the debug_assert above pins the API contract that names fit u16.
        self.u16(v.len() as u16);
        self.0.extend_from_slice(v.as_bytes());
    }
}

impl Default for PayloadWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Checked little-endian cursor over a received payload.
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> PayloadReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RecoilError> {
        let end = self
            .at
            .checked_add(n)
            .ok_or_else(|| RecoilError::net("truncated frame payload"))?;
        let s = self
            .bytes
            .get(self.at..end)
            .ok_or_else(|| RecoilError::net("truncated frame payload"))?;
        self.at = end;
        Ok(s)
    }

    /// Takes exactly `N` bytes as a fixed array, for `from_le_bytes`.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], RecoilError> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N)?);
        Ok(a)
    }

    pub fn u8(&mut self) -> Result<u8, RecoilError> {
        let [b] = self.array()?;
        Ok(b)
    }
    pub fn u16(&mut self) -> Result<u16, RecoilError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    pub fn u32(&mut self) -> Result<u32, RecoilError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    pub fn u64(&mut self) -> Result<u64, RecoilError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Length-prefixed (u32) byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], RecoilError> {
        let len = usize::try_from(self.u32()?)
            .map_err(|_| RecoilError::net("blob length exceeds the address space"))?;
        self.take(len)
    }

    /// Length-prefixed (u16) UTF-8 string.
    pub fn name(&mut self) -> Result<String, RecoilError> {
        self.name_str().map(str::to_owned)
    }

    /// Length-prefixed (u16) UTF-8 string, borrowed from the payload — the
    /// zero-copy twin of [`PayloadReader::name`] for hot paths that only
    /// need to look the name up.
    pub fn name_str(&mut self) -> Result<&'a str, RecoilError> {
        let len = usize::from(self.u16()?);
        let raw = self.take(len)?;
        std::str::from_utf8(raw).map_err(|_| RecoilError::net("frame name is not valid UTF-8"))
    }

    /// Fails unless the whole payload was consumed — trailing garbage is a
    /// protocol violation, not padding.
    pub fn finish(self) -> Result<(), RecoilError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(RecoilError::net(format!(
                "{} unexpected trailing bytes in frame payload",
                self.bytes.len() - self.at
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Typed error frames.
// ---------------------------------------------------------------------------

/// Encodes a [`RecoilError`] as an `Error` frame payload: `u16 code` plus a
/// length-prefixed detail string. `NotFound` / `AlreadyPublished` carry the
/// content name so the receiving side reconstructs the exact variant.
pub fn encode_error(e: &RecoilError) -> Vec<u8> {
    let (code, detail): (u16, String) = match e {
        RecoilError::NotFound { name } => (1, name.clone()),
        RecoilError::AlreadyPublished { name } => (2, name.clone()),
        RecoilError::InvalidConfig { .. } => (3, e.to_string()),
        RecoilError::BackendUnavailable { .. } => (4, e.to_string()),
        RecoilError::Decode(_) => (5, e.to_string()),
        RecoilError::Wire { detail } => (6, detail.clone()),
        RecoilError::Net { detail } => (7, detail.clone()),
        RecoilError::UnsupportedSymbol { .. } => (8, e.to_string()),
        RecoilError::Busy { retry_after_ms } => (9, retry_after_ms.to_string()),
    };
    let mut w = PayloadWriter::preallocated(2 + 4 + detail.len());
    w.u16(code);
    w.bytes(detail.as_bytes());
    w.0
}

/// Decodes an `Error` frame payload back into a [`RecoilError`].
///
/// Variants with structured fields that cannot round-trip over a string
/// (`InvalidConfig`'s static field name, `Decode`'s `RansError`) come back
/// as [`RecoilError::Net`] carrying the remote display text.
pub fn decode_error(payload: &[u8]) -> RecoilError {
    let mut r = PayloadReader::new(payload);
    let parsed = (|| -> Result<RecoilError, RecoilError> {
        let code = r.u16()?;
        let detail = String::from_utf8_lossy(r.bytes()?).into_owned();
        Ok(match code {
            1 => RecoilError::NotFound { name: detail },
            2 => RecoilError::AlreadyPublished { name: detail },
            6 => RecoilError::Wire { detail },
            7 => RecoilError::Net { detail },
            // The detail is the decimal retry hint; a peer sending garbage
            // degrades to "retry immediately" rather than a parse failure.
            9 => RecoilError::Busy {
                retry_after_ms: detail.parse().unwrap_or(0),
            },
            _ => RecoilError::net(format!("remote error: {detail}")),
        })
    })();
    parsed.unwrap_or_else(|_| RecoilError::net("malformed error frame"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_rans::RansError;

    #[test]
    fn frame_round_trips_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Stats, b"").unwrap();
        write_frame(&mut buf, FrameType::Chunk, b"hello world").unwrap();
        let mut r = &buf[..];
        match read_frame(&mut r).unwrap() {
            ReadOutcome::Frame(FrameType::Stats, p) => assert!(p.is_empty()),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut r).unwrap() {
            ReadOutcome::Frame(FrameType::Chunk, p) => assert_eq!(p, b"hello world"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(read_frame(&mut r).unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn in_place_framing_matches_write_frame() {
        let mut via_writer = Vec::new();
        write_frame(&mut via_writer, FrameType::Chunk, b"payload bytes").unwrap();

        let mut via_buf = Vec::new();
        let at = begin_frame(&mut via_buf, FrameType::Chunk);
        via_buf.extend_from_slice(b"payload bytes");
        end_frame(&mut via_buf, at).unwrap();
        assert_eq!(via_buf, via_writer);

        let mut appended = Vec::new();
        append_frame(&mut appended, FrameType::Chunk, b"payload bytes").unwrap();
        assert_eq!(appended, via_writer);

        // Frames stack in one buffer.
        let at = begin_frame(&mut via_buf, FrameType::Stats);
        end_frame(&mut via_buf, at).unwrap();
        let mut r = &via_buf[..];
        assert!(matches!(
            read_frame(&mut r).unwrap(),
            ReadOutcome::Frame(FrameType::Chunk, p) if p == b"payload bytes"
        ));
        assert!(matches!(
            read_frame(&mut r).unwrap(),
            ReadOutcome::Frame(FrameType::Stats, p) if p.is_empty()
        ));
    }

    #[test]
    fn borrowed_names_match_owned_names() {
        let mut w = PayloadWriter::new();
        w.name("movie");
        let bytes = w.0;
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.name_str().unwrap(), "movie");
        r.finish().unwrap();
        let mut r = PayloadReader::new(&bytes[..3]);
        assert!(r.name_str().is_err());
    }

    #[test]
    fn unknown_type_and_oversized_length_are_rejected() {
        let mut garbage: &[u8] = &[0xAB, 1, 0, 0, 0, 0];
        assert!(read_frame(&mut garbage)
            .unwrap_err()
            .to_string()
            .contains("unknown frame type"));

        let mut huge = vec![FrameType::Publish as u8];
        huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut r = &huge[..];
        assert!(read_frame(&mut r)
            .unwrap_err()
            .to_string()
            .contains("oversized frame"));
    }

    #[test]
    fn truncated_frame_is_a_clean_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Request, b"some payload").unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(
                read_frame(&mut r).is_err(),
                "cut {cut} should fail mid-frame"
            );
        }
    }

    #[test]
    fn payload_reader_checks_bounds_and_trailing_bytes() {
        let mut w = PayloadWriter::new();
        w.name("movie");
        w.u64(42);
        let bytes = w.0;
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.name().unwrap(), "movie");
        assert_eq!(r.u64().unwrap(), 42);
        r.finish().unwrap();

        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.name().unwrap(), "movie");
        assert!(r.finish().is_err(), "trailing bytes must be rejected");

        let mut r = PayloadReader::new(&bytes[..3]);
        assert!(r.name().is_err(), "truncated name must be rejected");
    }

    #[test]
    fn error_frames_reconstruct_the_variants_that_can() {
        let nf = RecoilError::NotFound {
            name: "movie".into(),
        };
        assert_eq!(decode_error(&encode_error(&nf)), nf);
        let ap = RecoilError::AlreadyPublished { name: "x".into() };
        assert_eq!(decode_error(&encode_error(&ap)), ap);
        let wire = RecoilError::wire("metadata checksum mismatch");
        assert_eq!(decode_error(&encode_error(&wire)), wire);
        // Structured variants degrade to Net with the display text.
        let cfg = RecoilError::config("parallel_segments", "must be >= 1");
        match decode_error(&encode_error(&cfg)) {
            RecoilError::Net { detail } => assert!(detail.contains("parallel_segments")),
            other => panic!("{other:?}"),
        }
        let dec = RecoilError::Decode(RansError::BitstreamUnderflow { pos: 3 });
        match decode_error(&encode_error(&dec)) {
            RecoilError::Net { detail } => assert!(detail.contains("position 3")),
            other => panic!("{other:?}"),
        }
        let unsup = RecoilError::UnsupportedSymbol { pos: 42, sym: 200 };
        match decode_error(&encode_error(&unsup)) {
            RecoilError::Net { detail } => {
                assert!(detail.contains("200") && detail.contains("42"));
            }
            other => panic!("{other:?}"),
        }
        // Busy round-trips its retry hint exactly: clients schedule
        // backoff from it, so it must survive the wire.
        let busy = RecoilError::busy(125);
        assert_eq!(decode_error(&encode_error(&busy)), busy);
        // A hostile hint degrades to "retry immediately", not a parse error.
        let mut mangled = encode_error(&busy);
        let at = mangled.len() - 3;
        mangled[at..].copy_from_slice(b"abc");
        assert_eq!(
            decode_error(&mangled),
            RecoilError::Busy { retry_after_ms: 0 }
        );
    }
}
