//! The event-driven `NetServer` backend: every connection multiplexed on
//! one reactor thread, CPU-bound work offloaded to a dispatch pool.
//!
//! Built from `recoil-reactor`'s primitives:
//!
//! - [`Poller`] — edge-triggered epoll (or the portable `poll(2)`
//!   fallback) tells the loop which sockets are ready.
//! - [`Slab`] — per-connection state lives in generation-checked slots
//!   whose buffers are *parked* on close and recycled on the next accept,
//!   so the steady-state accept → serve → close cycle allocates nothing.
//! - [`DeadlineQueue`] — progress deadlines (partial frame in, response
//!   out, post-error drain) are armed lazily and re-validated on expiry
//!   against the connection's `last_progress`, so a busy peer is never
//!   evicted and an idle-between-frames peer is never timed.
//! - [`WakePipe`] — dispatch workers finish a job, push a [`Completion`],
//!   and wake the loop through the pipe.
//!
//! Each connection is a small state machine:
//!
//! ```text
//!            accept
//!              │
//!              ▼
//!         Handshake ──HELLO ok──▶ Write(HELLO) ─┐
//!              │                                │
//!              ▼                                ▼
//!   (violation) ERROR          ┌──────────▶ ReadFrame ◀───────────┐
//!              │               │               │                  │
//!              ▼               │     ┌─────────┼─────────┐        │
//!            Write             │   STATS     REQUEST  PUBLISH     │
//!              │               │  (inline)  cache-hit? │          │
//!              ▼               │     │      yes│  no│  │          │
//!            Drain             │     │         │    ▼  ▼          │
//!              │               │     │         │  Dispatching     │
//!              ▼               │     │         │  (worker runs    │
//!            close             │     ▼         ▼   encode/combine)│
//!                              │   Write ◀── Write ◀──completion  │
//!                              │     │ (chunks stream in 64 KiB   │
//!                              │     │  coalesced refills)        │
//!                              └─────┴────────────────────────────┘
//! ```
//!
//! HELLO negotiation, stats snapshots, and cache-hit requests are served
//! inline on the loop with zero per-request allocation (responses are
//! framed straight into the connection's pending-write buffer, chunk plans
//! reuse the connection's `ChunkPlan`); only publishes (rANS encode) and
//! cache-miss requests (real-time metadata combine) touch a worker.
//!
//! Edge-triggered discipline: sockets are registered once with
//! `READ | WRITE` interest and never modified — an event is only a hint,
//! and [`pump`] always reads/writes until `WouldBlock` before returning,
//! so no edge is ever left unconsumed. Under the level-triggered fallback
//! the loop instead keeps the registered interest matched to the phase.

use super::NetConfig;
use crate::frame::{
    append_frame, begin_frame, encode_error, end_frame, io_err, FrameType, PayloadReader,
    PayloadWriter, CAP_CHUNKED, CAP_RESUME, CAP_TELEMETRY, MAX_FRAME_LEN, PROTOCOL_VERSION,
    SUPPORTED_CAPS,
};
use crate::proto::{self, Hello, PublishOk, PublishRequest, StatsReply, TelemetryReply};
use parking_lot::{Condvar, Mutex};
use recoil_core::{plan_chunks_into, ChunkPlan, EncoderConfig, RecoilError};
use recoil_parallel::ThreadPool;
use recoil_reactor::{DeadlineQueue, Event, Interest, Poller, Slab, SlabStats, Token, WakePipe};
use recoil_server::{ContentServer, StoredContent, Transmission};
use recoil_telemetry::{Stage, Telemetry};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::mem;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::ops::Range;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reserved token for the listening socket.
const LISTENER: Token = Token(u64::MAX);
/// Reserved token for the wake pipe's read end.
const WAKE: Token = Token(u64::MAX - 1);
/// Chunk frames are coalesced into the write buffer up to this many pending
/// bytes per refill, bounding a streaming connection's memory to roughly
/// this plus one chunk frame.
const WRITE_HIGH_WATER: usize = 64 * 1024;
/// Stack scratch per read syscall.
const READ_CHUNK: usize = 16 * 1024;
/// How long a half-closed connection may take to drain to EOF so a final
/// ERROR frame actually reaches the peer (dropping a socket with unread
/// inbound data would RST away our own queued bytes).
const DRAIN_BUDGET: Duration = Duration::from_millis(250);
/// Poll cap while rejected connections are still draining in the morgue
/// (they are not registered with the poller).
const MORGUE_TICK: Duration = Duration::from_millis(25);
/// Poll cap during shutdown so the exit condition is re-checked promptly.
const SHUTDOWN_TICK: Duration = Duration::from_millis(50);
/// Parked buffers larger than this are shrunk before reuse, so one huge
/// publish does not pin its buffer forever.
const PARKED_BUFFER_CAP: usize = 64 * 1024;

/// State shared between the event loop, the dispatch workers, and the
/// owning handle.
struct Shared {
    content: Arc<ContentServer>,
    config: NetConfig,
    /// Pre-clamped words per chunk frame.
    chunk_words: usize,
    shutdown: AtomicBool,
    /// Abrupt-death flag ([`super::NetServerHandle::kill`]): the loop
    /// severs every connection without draining and exits immediately,
    /// mimicking a crashed node for failover tests.
    killed: AtomicBool,
    /// Set only after the event loop has been joined — workers must keep
    /// draining the queue while the loop is still dispatching.
    jobs_closed: AtomicBool,
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    completions: Mutex<Vec<Completion>>,
    waker: recoil_reactor::Waker,
    active: AtomicUsize,
    slab_allocations: AtomicU64,
    slab_reuses: AtomicU64,
    /// Pipeline telemetry (level fixed at bind; `Off` reduces every
    /// instrument to one branch).
    telemetry: Arc<Telemetry>,
    /// Mirror of the locked job queue's length, written under the job lock
    /// on every push/pop, so the event loop publishes the queue-depth gauge
    /// at its own consistent point without taking the job lock.
    queue_len: AtomicU64,
}

impl Shared {
    fn push_job(&self, job: Job) {
        let token = job.token();
        let mut jobs = self.jobs.lock();
        jobs.push_back(job);
        let depth = jobs.len() as u64;
        self.queue_len.store(depth, Ordering::Relaxed);
        self.jobs_cv.notify_one();
        drop(jobs);
        let tel = &self.telemetry;
        if tel.counters_enabled() {
            tel.counters.dispatched_jobs.bump();
            tel.trace(Stage::DispatchQueue, token.0, depth);
        }
    }
}

/// CPU-bound work shipped to a dispatch worker.
enum Job {
    /// The whole read buffer is *lent* to the worker (the payload can be
    /// tens of MiB; slicing it out would copy): `payload` locates the
    /// publish body, `consumed` is dropped when the buffer comes back so
    /// pipelined bytes behind the frame survive.
    Publish {
        token: Token,
        buf: Vec<u8>,
        payload: Range<usize>,
        consumed: usize,
        queued_at: Instant,
    },
    /// A request whose tier missed the cache: the combine runs off-loop.
    Fetch {
        token: Token,
        name: String,
        parallel_segments: u64,
        /// Complete words the peer already holds (RESUME); zero for a
        /// fresh REQUEST.
        from_word: u64,
        queued_at: Instant,
    },
}

impl Job {
    fn token(&self) -> Token {
        match self {
            Job::Publish { token, .. } | Job::Fetch { token, .. } => *token,
        }
    }

    fn queued_at(&self) -> Instant {
        match self {
            Job::Publish { queued_at, .. } | Job::Fetch { queued_at, .. } => *queued_at,
        }
    }
}

enum Reply {
    /// Pre-framed response bytes, appended to the write buffer verbatim.
    Framed(Vec<u8>),
    /// A served transmission to stage as TRANSMIT + chunked stream,
    /// skipping the first `from_word` words the peer already holds.
    Stream(Transmission, Arc<StoredContent>, u64),
}

struct Completion {
    token: Token,
    /// The lent read buffer coming home (publish jobs only).
    buf: Option<(Vec<u8>, usize)>,
    reply: Reply,
    close_after: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the client's HELLO.
    Handshake,
    /// Between or inside a request frame.
    ReadFrame,
    /// A worker owns the request; the loop ignores the socket until the
    /// completion arrives.
    Dispatching,
    /// Flushing `write_buf` (and refilling it from the chunk plan).
    Write,
    /// Half-closed after a fatal error; reading to EOF so the final frame
    /// lands.
    Drain,
}

/// Per-connection state. Slab-parked on close: buffers and the chunk plan
/// keep their capacity for the next accept, only the socket is dropped.
struct Conn {
    stream: Option<TcpStream>,
    phase: Phase,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Interest currently registered (level-triggered fallback only; the
    /// edge-triggered path registers `READ_WRITE` once and never modifies).
    interest: Interest,
    close_after_write: bool,
    /// The content being chunk-streamed, if any.
    item: Option<Arc<StoredContent>>,
    plan: ChunkPlan,
    next_chunk: usize,
    last_progress: Instant,
    /// The deadline currently armed in the queue, if any.
    armed: Option<Instant>,
    drain_deadline: Instant,
    /// Capabilities negotiated in this connection's HELLO (zero until the
    /// handshake completes). Gates capability-bound frames like TELEMETRY.
    caps: u32,
    /// When the current pending write first hit the socket phase — the
    /// write-flush histogram measures from here to the buffer draining.
    write_started: Option<Instant>,
    /// Completed flush bursts on this connection — the sampling phase for
    /// the write-flush span (timed 1-in-8 at `Counters`, always at
    /// `Trace`; the `write_flushes` counter itself stays exact).
    flushes: u64,
    /// Response bytes written over this connection's lifetime — the
    /// fault plan's `kill_after_write_bytes` trigger point.
    written_total: u64,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Self {
            stream: Some(stream),
            phase: Phase::Handshake,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            interest: Interest::NONE,
            close_after_write: false,
            item: None,
            plan: ChunkPlan { chunks: Vec::new() },
            next_chunk: 0,
            last_progress: now,
            armed: None,
            drain_deadline: now,
            caps: 0,
            write_started: None,
            flushes: 0,
            written_total: 0,
        }
    }

    /// Re-arms a parked slot for a fresh socket, reusing its buffers.
    fn reset_for(&mut self, stream: TcpStream, now: Instant) {
        self.stream = Some(stream);
        self.phase = Phase::Handshake;
        self.read_buf.clear();
        self.write_buf.clear();
        self.write_pos = 0;
        self.interest = Interest::NONE;
        self.close_after_write = false;
        self.item = None;
        self.next_chunk = 0;
        self.last_progress = now;
        self.armed = None;
        self.drain_deadline = now;
        self.caps = 0;
        self.write_started = None;
        self.written_total = 0;
    }

    /// Parks the slot: drops the socket (closing it) and any streamed
    /// item, keeps the buffers — capped so one huge publish does not pin
    /// its buffer forever.
    fn park(&mut self) {
        self.stream = None;
        self.item = None;
        self.read_buf.clear();
        self.read_buf.shrink_to(PARKED_BUFFER_CAP);
        self.write_buf.clear();
        self.write_buf.shrink_to(PARKED_BUFFER_CAP);
        self.plan.chunks.clear();
        self.write_pos = 0;
        self.next_chunk = 0;
        self.close_after_write = false;
        self.armed = None;
        self.caps = 0;
        self.write_started = None;
    }

    /// The progress deadline this phase wants, if any. Idle connections
    /// *between* frames are deliberately deadline-free — only a peer that
    /// owes bytes (mid-handshake, mid-frame, mid-response, mid-drain) is
    /// timed.
    fn desired_deadline(&self, read_timeout: Duration, write_timeout: Duration) -> Option<Instant> {
        match self.phase {
            Phase::Handshake | Phase::ReadFrame if !self.read_buf.is_empty() => {
                Some(self.last_progress + read_timeout)
            }
            Phase::Handshake | Phase::ReadFrame | Phase::Dispatching => None,
            Phase::Write => Some(self.last_progress + write_timeout),
            Phase::Drain => Some(self.drain_deadline),
        }
    }

    /// The poller interest this phase wants (level-triggered fallback).
    fn desired_interest(&self) -> Interest {
        match self.phase {
            Phase::Handshake | Phase::ReadFrame | Phase::Drain => Interest::READ,
            Phase::Write => Interest::WRITE,
            Phase::Dispatching => Interest::NONE,
        }
    }
}

/// What one pump of a connection decided.
struct Pumped {
    fate: Fate,
    /// Jobs handed to the dispatch pool during this pump (0 or 1).
    dispatched: usize,
}

enum Fate {
    Keep,
    Close,
}

impl Pumped {
    fn keep(dispatched: usize) -> Self {
        Self {
            fate: Fate::Keep,
            dispatched,
        }
    }
    fn close(dispatched: usize) -> Self {
        Self {
            fate: Fate::Close,
            dispatched,
        }
    }
}

/// Tries to parse one frame header + payload from the front of `buf`.
/// `Ok(Some((ty, end)))` means a complete frame occupies `buf[..end]`
/// (payload at `buf[5..end]`); `Ok(None)` means more bytes are needed.
/// The type byte and length are validated as soon as they arrive, before
/// any payload accumulates.
fn parse_frame(buf: &[u8]) -> Result<Option<(FrameType, usize)>, RecoilError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let ty = FrameType::from_u8(buf[0])?;
    if buf.len() < 5 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[1..5].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(RecoilError::net(format!(
            "oversized frame: {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
        )));
    }
    let end = 5 + len as usize;
    if buf.len() < end {
        return Ok(None);
    }
    Ok(Some((ty, end)))
}

/// Frames `payload` straight into the pending-write buffer and enters
/// `Write`. Control payloads staged here (HELLO, STATS, ERROR) are far
/// below the frame cap.
fn stage_payload(conn: &mut Conn, ty: FrameType, payload: &[u8], close_after: bool) {
    append_frame(&mut conn.write_buf, ty, payload)
        .expect("staged control frames are far below the frame cap");
    conn.close_after_write |= close_after;
    conn.phase = Phase::Write;
}

fn stage_error(conn: &mut Conn, e: &RecoilError, close_after: bool) {
    stage_payload(conn, FrameType::Error, &encode_error(e), close_after);
}

/// Stages a served transmission: TRANSMIT header framed in place (no
/// owned header struct, no metadata/freqs/final-states copies), then the
/// chunk plan queued for coalesced streaming from the `Write` phase.
///
/// A non-zero `from_word` (RESUME) trims the plan to the words the peer is
/// missing: split metadata makes word-stream readiness a strict prefix, so
/// a resuming client continues exactly where the dead node stopped. The
/// header keeps whole-stream geometry and CRC (the client cross-checks
/// them against the header it saw before the failure); only `chunk_count`
/// reflects the trim, and chunk sequence numbers restart at zero over the
/// trimmed plan.
fn stage_transmission(
    conn: &mut Conn,
    shared: &Shared,
    transmission: Transmission,
    item: Arc<StoredContent>,
    from_word: u64,
) {
    plan_chunks_into(
        transmission.metadata(),
        shared.chunk_words * 2,
        &mut conn.plan,
    );
    if from_word > 0 {
        let total = item.stream.words.len() as u64;
        if from_word > total {
            stage_error(
                conn,
                &RecoilError::net(format!(
                    "resume offset {from_word} is beyond the stream ({total} words)"
                )),
                true,
            );
            return;
        }
        conn.plan.chunks.retain(|c| c.words.end > from_word);
        if let Some(first) = conn.plan.chunks.first_mut() {
            if first.words.start < from_word {
                first.words.start = from_word;
            }
        }
    }
    let at = begin_frame(&mut conn.write_buf, FrameType::Transmit);
    let mut w = PayloadWriter(mem::take(&mut conn.write_buf));
    proto::write_transmit_header(&mut w, &transmission, &item, conn.plan.len() as u32);
    conn.write_buf = w.0;
    if end_frame(&mut conn.write_buf, at).is_err() {
        // A tier whose metadata outgrows the frame cap is unservable on
        // this wire; roll the header back and report instead.
        conn.write_buf.truncate(at - 5);
        stage_error(
            conn,
            &RecoilError::net("transmit header exceeds the frame cap"),
            true,
        );
        return;
    }
    conn.item = Some(item);
    conn.next_chunk = 0;
    conn.phase = Phase::Write;
    // Eager first fill: small streams land whole in the buffer (clearing
    // `item` so pipelined follow-up requests can batch behind them); big
    // streams stop at the high-water mark and refill from `Write`.
    fill_chunks(conn);
    if conn.next_chunk == conn.plan.chunks.len() {
        conn.item = None;
    }
}

/// Refills the drained write buffer with the next chunk frames, up to the
/// high-water mark. Chunk frame sizes are pre-clamped by
/// `NetConfig::effective_chunk_words`.
fn fill_chunks(conn: &mut Conn) {
    let Conn {
        item,
        plan,
        write_buf,
        next_chunk,
        ..
    } = conn;
    let item = item.as_ref().expect("chunks only stream with a live item");
    let words = &item.stream.words;
    while *next_chunk < plan.chunks.len() && write_buf.len() < WRITE_HIGH_WATER {
        let chunk = &plan.chunks[*next_chunk];
        let at = begin_frame(write_buf, FrameType::Chunk);
        write_buf.extend_from_slice(&(*next_chunk as u32).to_le_bytes());
        for &w in &words[chunk.words.start as usize..chunk.words.end as usize] {
            write_buf.extend_from_slice(&w.to_le_bytes());
        }
        end_frame(write_buf, at).expect("chunk frames are pre-clamped to the frame cap");
        *next_chunk += 1;
    }
}

/// Validates the client's HELLO and stages the negotiated reply (or a
/// typed rejection). Exact error texts match the legacy backend.
fn handle_hello(conn: &mut Conn, ty: FrameType, end: usize) {
    if ty != FrameType::Hello {
        let e = RecoilError::net(format!("expected HELLO, got {ty:?}"));
        stage_error(conn, &e, true);
        return;
    }
    let hello = match Hello::decode(&conn.read_buf[5..end]) {
        Ok(h) => h,
        Err(e) => {
            stage_error(conn, &e, true);
            return;
        }
    };
    conn.read_buf.drain(..end);
    if hello.version != PROTOCOL_VERSION {
        let e = RecoilError::net(format!(
            "unsupported protocol version {} (server speaks {PROTOCOL_VERSION})",
            hello.version
        ));
        stage_error(conn, &e, true);
        return;
    }
    let negotiated = Hello {
        version: PROTOCOL_VERSION,
        capabilities: hello.capabilities & SUPPORTED_CAPS,
    };
    if negotiated.capabilities & CAP_CHUNKED == 0 {
        stage_error(
            conn,
            &RecoilError::net("peer lacks the chunked-streaming capability"),
            true,
        );
        return;
    }
    conn.caps = negotiated.capabilities;
    conn.phase = Phase::ReadFrame;
    stage_payload(conn, FrameType::Hello, &negotiated.encode(), false);
}

enum Handled {
    Continue,
    Dispatched,
}

/// What an inline REQUEST/RESUME parse decided. The trailing `u64` on the
/// serve variants is `from_word` (zero for a fresh REQUEST).
enum ReqAction {
    Stream(Transmission, Arc<StoredContent>, u64),
    Offload(String, u64, u64),
    Fail(RecoilError, bool),
}

/// Parses a REQUEST (two fields) or RESUME (three fields) payload and
/// resolves it against the tier cache.
fn request_action(shared: &Shared, payload: &[u8], resume: bool) -> ReqAction {
    let mut r = PayloadReader::new(payload);
    let parsed = r
        .name_str()
        .and_then(|name| Ok((name, r.u64()?)))
        .and_then(|(name, segs)| {
            let from_word = if resume { r.u64()? } else { 0 };
            r.finish()?;
            Ok((name, segs, from_word))
        });
    match parsed {
        Err(e) => ReqAction::Fail(e, true),
        Ok((name, parallel_segments, from_word)) => {
            match shared.content.fetch_cached(name, parallel_segments) {
                Ok(Some((tx, item))) => ReqAction::Stream(tx, item, from_word),
                Ok(None) => ReqAction::Offload(name.to_owned(), parallel_segments, from_word),
                Err(e) => ReqAction::Fail(e, false),
            }
        }
    }
}

/// Whether the dispatch queue is at its depth cap — offloads are shed with
/// a typed busy error rather than queueing unboundedly behind a slow pool.
fn queue_full(shared: &Shared) -> bool {
    shared.queue_len.load(Ordering::Relaxed) >= shared.config.max_queue_depth as u64
}

/// Stages the typed busy error (retry-after hint included) and counts the
/// shed. The connection stays open: the request was never started, so the
/// peer may retry on this socket after the hint.
fn stage_busy(conn: &mut Conn, shared: &Shared) {
    let tel = &shared.telemetry;
    if tel.counters_enabled() {
        tel.counters.busy_rejections.bump();
    }
    stage_error(
        conn,
        &RecoilError::busy(shared.config.busy_retry_after_ms),
        false,
    );
}

/// Handles one complete request frame at the front of `read_buf`.
fn handle_frame(
    conn: &mut Conn,
    token: Token,
    shared: &Shared,
    ty: FrameType,
    end: usize,
) -> Handled {
    match ty {
        FrameType::Publish => {
            if queue_full(shared) {
                conn.read_buf.drain(..end);
                stage_busy(conn, shared);
                return Handled::Continue;
            }
            // The encode is CPU-bound: lend the whole read buffer to a
            // worker rather than copying a potentially huge payload out.
            let buf = mem::take(&mut conn.read_buf);
            conn.phase = Phase::Dispatching;
            shared.push_job(Job::Publish {
                token,
                buf,
                payload: 5..end,
                consumed: end,
                queued_at: Instant::now(),
            });
            Handled::Dispatched
        }
        FrameType::Request | FrameType::Resume => {
            let resume = ty == FrameType::Resume;
            let action = if resume && conn.caps & CAP_RESUME == 0 {
                ReqAction::Fail(
                    RecoilError::net("resume capability was not negotiated"),
                    true,
                )
            } else {
                request_action(shared, &conn.read_buf[5..end], resume)
            };
            conn.read_buf.drain(..end);
            match action {
                ReqAction::Stream(tx, item, from_word) => {
                    stage_transmission(conn, shared, tx, item, from_word);
                    Handled::Continue
                }
                ReqAction::Offload(name, parallel_segments, from_word) => {
                    if queue_full(shared) {
                        stage_busy(conn, shared);
                        return Handled::Continue;
                    }
                    conn.phase = Phase::Dispatching;
                    shared.push_job(Job::Fetch {
                        token,
                        name,
                        parallel_segments,
                        from_word,
                        queued_at: Instant::now(),
                    });
                    Handled::Dispatched
                }
                ReqAction::Fail(e, close) => {
                    stage_error(conn, &e, close);
                    Handled::Continue
                }
            }
        }
        FrameType::Stats => {
            conn.read_buf.drain(..end);
            let reply = StatsReply {
                stats: shared.content.stats(),
                items: shared.content.len() as u64,
            };
            stage_payload(conn, FrameType::StatsReply, &reply.encode(), false);
            Handled::Continue
        }
        FrameType::Telemetry => {
            let well_formed = end == 5;
            conn.read_buf.drain(..end);
            if conn.caps & CAP_TELEMETRY == 0 {
                let e = RecoilError::net("telemetry capability was not negotiated");
                stage_error(conn, &e, true);
                return Handled::Continue;
            }
            if !well_formed {
                let e = RecoilError::net("telemetry request carries an unexpected payload");
                stage_error(conn, &e, true);
                return Handled::Continue;
            }
            let tel = &shared.telemetry;
            // Draining is consuming: each buffered trace event is delivered
            // to exactly one TELEMETRY response.
            let trace = if tel.trace_enabled() {
                tel.drain_trace()
            } else {
                Vec::new()
            };
            let reply = TelemetryReply {
                snapshot: tel.snapshot(),
                trace,
            };
            stage_payload(conn, FrameType::TelemetryReply, &reply.encode(), false);
            Handled::Continue
        }
        other => {
            let e = RecoilError::net(format!("unexpected {other:?} frame from client"));
            stage_error(conn, &e, true);
            Handled::Continue
        }
    }
}

/// Per-`pump` instrument tallies, kept in plain locals on the stack and
/// flushed to the sharded counters once per call — one atomic add per
/// counter per socket wakeup instead of per frame, which keeps the
/// `Counters` level within noise of `Off` on the pipelined hot path.
#[derive(Default)]
struct PumpTally {
    frames: u64,
    inline: u64,
    bytes_read: u64,
    bytes_written: u64,
}

/// Drives one connection until it blocks: parse and serve every complete
/// frame, read until `WouldBlock`, flush and refill until `WouldBlock`.
/// This *must* exhaust the socket in both directions before returning —
/// under edge-triggered polling an unconsumed edge never fires again.
fn pump(conn: &mut Conn, token: Token, shared: &Shared) -> Pumped {
    let mut tally = PumpTally::default();
    let out = pump_inner(conn, token, shared, &mut tally);
    let tel = &shared.telemetry;
    if tel.counters_enabled() {
        let c = &tel.counters;
        if tally.frames > 0 {
            c.frames_read.add(tally.frames);
        }
        if tally.inline > 0 {
            c.inline_serves.add(tally.inline);
        }
        if tally.bytes_read > 0 {
            c.bytes_read.add(tally.bytes_read);
        }
        if tally.bytes_written > 0 {
            c.bytes_written.add(tally.bytes_written);
        }
    }
    out
}

fn pump_inner(conn: &mut Conn, token: Token, shared: &Shared, tally: &mut PumpTally) -> Pumped {
    let mut scratch = [0u8; READ_CHUNK];
    let mut dispatched = 0;
    // Armed fault schedule, if any (chaos testing only; a faultless server
    // pays one `Option` check per pump). The write delay sleeps on the
    // event-loop thread — faulted nodes are slow for *everyone*, which is
    // exactly the failure shape being simulated.
    let fault = shared.config.fault_plan.as_ref();
    let kill_after = fault.and_then(|f| f.kill_after_write_bytes);
    let write_delay = fault.and_then(|f| f.write_delay);
    let torn_bytes = fault.and_then(|f| f.torn_write_bytes);
    loop {
        match conn.phase {
            Phase::Handshake | Phase::ReadFrame => match parse_frame(&conn.read_buf) {
                Err(e) => stage_error(conn, &e, true),
                Ok(Some((ty, end))) => {
                    let tel = &shared.telemetry;
                    tally.frames += 1;
                    if tel.trace_enabled() {
                        tel.trace(Stage::FrameRead, token.0, u64::from(ty.byte()));
                    }
                    if conn.phase == Phase::Handshake {
                        handle_hello(conn, ty, end);
                    } else {
                        // Span timing needs two clock reads, which are not
                        // cheap on every host (~40 ns each here): `Counters`
                        // samples 1 frame in 32 (the histogram stays
                        // statistically sound at serving rates), `Trace`
                        // times every frame.
                        let sampled = tel.counters_enabled()
                            && (tel.trace_enabled() || tally.frames & 31 == 1);
                        let started = sampled.then(Instant::now);
                        if let Handled::Dispatched = handle_frame(conn, token, shared, ty, end) {
                            dispatched += 1;
                            return Pumped::keep(dispatched);
                        }
                        // Anything that went straight from a parsed frame to
                        // staged response bytes was served inline on the
                        // event loop, without touching the dispatch pool.
                        if conn.phase == Phase::Write {
                            tally.inline += 1;
                            if let Some(t0) = started {
                                let ns = elapsed_ns(t0);
                                tel.hists.inline_serve_ns.record(ns);
                                tel.trace(Stage::InlineServe, token.0, ns);
                            }
                        }
                    }
                    // Response batching: if the response landed whole in
                    // the write buffer and another complete request is
                    // already pipelined behind it, keep parsing — the
                    // whole burst then flushes in one write.
                    if conn.phase == Phase::Write
                        && conn.item.is_none()
                        && !conn.close_after_write
                        && conn.write_buf.len() < WRITE_HIGH_WATER
                        && matches!(parse_frame(&conn.read_buf), Ok(Some(_)))
                    {
                        conn.phase = Phase::ReadFrame;
                    }
                }
                Ok(None) => {
                    let mut s = conn.stream.as_ref().expect("live conn has a stream");
                    match s.read(&mut scratch) {
                        Ok(0) => return Pumped::close(dispatched),
                        Ok(n) => {
                            conn.read_buf.extend_from_slice(&scratch[..n]);
                            conn.last_progress = Instant::now();
                            tally.bytes_read += n as u64;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            return Pumped::keep(dispatched)
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => return Pumped::close(dispatched),
                    }
                }
            },
            Phase::Dispatching => return Pumped::keep(dispatched),
            Phase::Write => {
                if conn.write_started.is_none() {
                    let tel = &shared.telemetry;
                    if tel.counters_enabled() && (tel.trace_enabled() || conn.flushes & 7 == 0) {
                        conn.write_started = Some(Instant::now());
                    }
                }
                loop {
                    while conn.write_pos < conn.write_buf.len() {
                        if let Some(d) = write_delay {
                            std::thread::sleep(d);
                        }
                        let mut slice_end = torn_bytes.map_or(conn.write_buf.len(), |cap| {
                            (conn.write_pos + cap.max(1)).min(conn.write_buf.len())
                        });
                        if let Some(at) = kill_after {
                            // Never write past the kill offset: the cut is
                            // byte-exact, so seeded chaos runs are
                            // reproducible down to the torn frame.
                            let room = at.saturating_sub(conn.written_total) as usize;
                            slice_end = slice_end.min(conn.write_pos + room);
                        }
                        let mut s = conn.stream.as_ref().expect("live conn has a stream");
                        match s.write(&conn.write_buf[conn.write_pos..slice_end]) {
                            Ok(0) => return Pumped::close(dispatched),
                            Ok(n) => {
                                conn.write_pos += n;
                                conn.written_total += n as u64;
                                conn.last_progress = Instant::now();
                                tally.bytes_written += n as u64;
                                if kill_after.is_some_and(|at| conn.written_total >= at) {
                                    // Fault: die abruptly mid-frame, no drain.
                                    return Pumped::close(dispatched);
                                }
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                return Pumped::keep(dispatched)
                            }
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(_) => return Pumped::close(dispatched),
                        }
                    }
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                    if conn.item.is_some() && conn.next_chunk < conn.plan.chunks.len() {
                        fill_chunks(conn);
                        continue;
                    }
                    break;
                }
                // The staged response (header + every chunk) is fully on the
                // wire: count the burst, and close out the flush span when
                // this burst was one of the sampled ones.
                {
                    let tel = &shared.telemetry;
                    if tel.counters_enabled() {
                        conn.flushes = conn.flushes.wrapping_add(1);
                        tel.counters.write_flushes.bump();
                        if let Some(t0) = conn.write_started.take() {
                            let ns = elapsed_ns(t0);
                            tel.hists.write_flush_ns.record(ns);
                            tel.trace(Stage::WriteFlush, token.0, ns);
                        }
                    } else {
                        conn.write_started = None;
                    }
                }
                conn.item = None;
                if conn.close_after_write {
                    conn.close_after_write = false;
                    let s = conn.stream.as_ref().expect("live conn has a stream");
                    let _ = s.shutdown(Shutdown::Write);
                    conn.drain_deadline = Instant::now() + DRAIN_BUDGET;
                    conn.phase = Phase::Drain;
                    continue;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    // The in-flight response above was fully written.
                    return Pumped::close(dispatched);
                }
                conn.phase = Phase::ReadFrame;
            }
            Phase::Drain => {
                let mut s = conn.stream.as_ref().expect("live conn has a stream");
                loop {
                    match s.read(&mut scratch) {
                        Ok(0) => return Pumped::close(dispatched),
                        Ok(_) => {}
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            return Pumped::keep(dispatched)
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => return Pumped::close(dispatched),
                    }
                }
            }
        }
    }
}

/// A rejected over-cap connection draining its courtesy ERROR frame. Not
/// registered with the poller — the loop drives the morgue on a short
/// tick until each socket flushes + reaches EOF or its deadline passes.
struct Doomed {
    stream: TcpStream,
    bytes: Vec<u8>,
    written: usize,
    half_closed: bool,
    deadline: Instant,
}

/// One best-effort push on a doomed socket; `false` means done (or given
/// up) and the socket can drop.
fn drive_doomed(d: &mut Doomed) -> bool {
    if Instant::now() >= d.deadline {
        return false;
    }
    while d.written < d.bytes.len() {
        let mut s = &d.stream;
        match s.write(&d.bytes[d.written..]) {
            Ok(0) => return false,
            Ok(n) => d.written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if !d.half_closed {
        d.half_closed = true;
        let _ = d.stream.shutdown(Shutdown::Write);
    }
    let mut buf = [0u8; 1024];
    loop {
        let mut s = &d.stream;
        match s.read(&mut buf) {
            Ok(0) => return false,
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    wake: Arc<WakePipe>,
    listener: Option<TcpListener>,
    conns: Slab<Conn>,
    deadlines: DeadlineQueue,
    morgue: Vec<Doomed>,
    events: Vec<Event>,
    expired: Vec<Token>,
    /// Jobs dispatched whose completions have not come back yet.
    in_flight: usize,
}

impl EventLoop {
    fn run(&mut self) {
        loop {
            if self.shared.killed.load(Ordering::Acquire) {
                self.kill_now();
                return;
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                self.begin_shutdown();
                self.process_completions();
                if self.conns.is_empty() && self.in_flight == 0 && self.morgue.is_empty() {
                    return;
                }
            }
            let timeout = self.poll_timeout();
            let mut events = mem::take(&mut self.events);
            if self.poller.wait(&mut events, timeout).is_err() {
                events.clear();
                std::thread::sleep(Duration::from_millis(5));
            }
            self.events = events;
            let events = mem::take(&mut self.events);
            for ev in &events {
                match ev.token {
                    LISTENER => self.accept_ready(),
                    WAKE => self.process_completions(),
                    token => self.pump_token(token),
                }
            }
            self.events = events;
            self.publish_gauges();
            self.drive_morgue();
            self.check_deadlines();
        }
    }

    /// Publishes `queue_depth` and `open_slots` from one consistent point
    /// per loop iteration, to both the legacy STATS gauges on
    /// [`ContentServer`] and the telemetry gauges — so a STATS and a
    /// TELEMETRY request served in the same burst always agree.
    fn publish_gauges(&self) {
        let depth = self.shared.queue_len.load(Ordering::Relaxed);
        let open = self.conns.open_slots() as u64;
        self.shared.content.set_queue_depth(depth);
        self.shared.content.set_open_slots(open);
        let tel = &self.shared.telemetry;
        if tel.counters_enabled() {
            tel.gauges.queue_depth.set(depth);
            tel.gauges.open_slots.set(open);
        }
    }

    /// How long the poller may sleep: until the next deadline, capped when
    /// unpolled work (morgue, shutdown drain) needs a tick.
    fn poll_timeout(&mut self) -> Option<Duration> {
        let now = Instant::now();
        let mut timeout = self
            .deadlines
            .next_deadline()
            .map(|d| d.saturating_duration_since(now));
        if !self.morgue.is_empty() {
            timeout = Some(timeout.map_or(MORGUE_TICK, |t| t.min(MORGUE_TICK)));
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            timeout = Some(timeout.map_or(SHUTDOWN_TICK, |t| t.min(SHUTDOWN_TICK)));
        }
        timeout
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        if self
            .shared
            .config
            .fault_plan
            .as_ref()
            .is_some_and(|f| f.rst_on_accept)
        {
            // Fault: accept, then drop without reading the peer's HELLO.
            // The unread inbound bytes turn the close into an RST.
            return;
        }
        let now = Instant::now();
        if self.conns.len() >= self.shared.config.max_connections {
            self.reject(stream, now);
            return;
        }
        let fd = stream.as_raw_fd();
        let mut stream = Some(stream);
        let token = self.conns.insert_with(|parked| {
            let stream = stream.take().expect("insert_with runs its closure once");
            match parked {
                Some(mut conn) => {
                    conn.reset_for(stream, now);
                    conn
                }
                None => Conn::new(stream, now),
            }
        });
        let Some(token) = token else {
            // Lost a race past the length check; reject after all.
            if let Some(stream) = stream {
                self.reject(stream, now);
            }
            return;
        };
        // Edge-triggered: register both directions once, never modify —
        // zero epoll_ctl calls on the steady path. Level-triggered: track
        // the phase's interest precisely to avoid busy-wakeups.
        let interest = if self.poller.is_edge_triggered() {
            Interest::READ_WRITE
        } else {
            Interest::READ
        };
        if self.poller.register(fd, token, interest).is_err() {
            self.conns.remove_with(token, |mut conn| {
                conn.park();
                Some(conn)
            });
            return;
        }
        if let Some(conn) = self.conns.get_mut(token) {
            conn.interest = interest;
        }
        self.shared.content.connection_opened();
        self.shared.active.fetch_add(1, Ordering::Relaxed);
        self.publish_slab_stats();
        self.pump_token(token);
    }

    /// Rejects an over-cap connection with a typed busy error (code +
    /// retry-after hint, so backoff-aware clients pace themselves), then
    /// parks it in the morgue until the frame flushes and the peer hangs
    /// up.
    fn reject(&mut self, stream: TcpStream, now: Instant) {
        self.shared.content.connection_rejected();
        let tel = &self.shared.telemetry;
        if tel.counters_enabled() {
            tel.counters.busy_rejections.bump();
        }
        let e = RecoilError::busy(self.shared.config.busy_retry_after_ms);
        let mut bytes = Vec::new();
        append_frame(&mut bytes, FrameType::Error, &encode_error(&e))
            .expect("busy errors are far below the frame cap");
        let mut doomed = Doomed {
            stream,
            bytes,
            written: 0,
            half_closed: false,
            deadline: now + DRAIN_BUDGET,
        };
        if drive_doomed(&mut doomed) {
            self.morgue.push(doomed);
        }
    }

    fn drive_morgue(&mut self) {
        self.morgue.retain_mut(drive_doomed);
    }

    fn pump_token(&mut self, token: Token) {
        let Self { conns, shared, .. } = self;
        let Some(conn) = conns.get_mut(token) else {
            return;
        };
        let pumped = pump(conn, token, shared);
        self.in_flight += pumped.dispatched;
        match pumped.fate {
            Fate::Keep => self.after_pump(token),
            Fate::Close => self.close_conn(token),
        }
    }

    /// Post-pump bookkeeping: lazily arm the phase's deadline and (on the
    /// level-triggered fallback) sync the registered interest.
    fn after_pump(&mut self, token: Token) {
        let read_timeout = self.shared.config.read_timeout;
        let write_timeout = self.shared.config.write_timeout;
        let edge = self.poller.is_edge_triggered();
        enum Arm {
            Keep,
            Clear,
            Set(Instant),
        }
        let (arm, modify) = {
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            let arm = match conn.desired_deadline(read_timeout, write_timeout) {
                None => {
                    if conn.armed.take().is_some() {
                        Arm::Clear
                    } else {
                        Arm::Keep
                    }
                }
                // Armed lazily: set once at phase entry, re-validated
                // against `last_progress` on expiry instead of being
                // re-pushed on every pump.
                Some(d) => {
                    if conn.armed.is_none() {
                        conn.armed = Some(d);
                        Arm::Set(d)
                    } else {
                        Arm::Keep
                    }
                }
            };
            let modify = if edge {
                None
            } else {
                let want = conn.desired_interest();
                if want != conn.interest {
                    conn.interest = want;
                    conn.stream.as_ref().map(|s| (s.as_raw_fd(), want))
                } else {
                    None
                }
            };
            (arm, modify)
        };
        match arm {
            Arm::Keep => {}
            Arm::Clear => self.deadlines.clear(token),
            Arm::Set(d) => self.deadlines.set(token, d),
        }
        if let Some((fd, want)) = modify {
            let _ = self.poller.modify(fd, token, want);
        }
    }

    fn close_conn(&mut self, token: Token) {
        let Some(conn) = self.conns.get(token) else {
            return;
        };
        if let Some(stream) = conn.stream.as_ref() {
            let _ = self.poller.deregister(stream.as_raw_fd());
        }
        self.conns.remove_with(token, |mut conn| {
            conn.park();
            Some(conn)
        });
        self.deadlines.clear(token);
        self.shared.content.connection_closed();
        self.shared.active.fetch_sub(1, Ordering::Relaxed);
        self.publish_slab_stats();
    }

    fn process_completions(&mut self) {
        // Drain the pipe *before* taking the vec: a worker that pushes
        // after the take but before the drain still leaves a byte behind,
        // whereas the reverse order would lose its wakeup.
        self.wake.drain();
        let completions = mem::take(&mut *self.shared.completions.lock());
        for completion in completions {
            self.in_flight -= 1;
            self.apply_completion(completion);
        }
    }

    fn apply_completion(&mut self, completion: Completion) {
        let token = completion.token;
        {
            let Self { conns, shared, .. } = self;
            // Generation-checked: a completion for a connection that died
            // while its job ran resolves to nothing.
            let Some(conn) = conns.get_mut(token) else {
                return;
            };
            if let Some((mut buf, consumed)) = completion.buf {
                // The lent read buffer comes home; drop the handled frame
                // but keep any pipelined bytes queued behind it.
                buf.drain(..consumed);
                conn.read_buf = buf;
            }
            conn.close_after_write |= completion.close_after;
            match completion.reply {
                Reply::Framed(bytes) => {
                    conn.write_buf.extend_from_slice(&bytes);
                    conn.phase = Phase::Write;
                }
                Reply::Stream(tx, item, from_word) => {
                    stage_transmission(conn, shared, tx, item, from_word)
                }
            }
        }
        self.pump_token(token);
    }

    fn check_deadlines(&mut self) {
        let now = Instant::now();
        let mut expired = mem::take(&mut self.expired);
        expired.clear();
        self.deadlines.expired(now, &mut expired);
        for &token in &expired {
            self.handle_expiry(token, now);
        }
        self.expired = expired;
    }

    /// A deadline fired. Deadlines are armed once at phase entry, so the
    /// connection may have made progress since: re-validate against the
    /// phase's *current* desired deadline and only evict a peer that has
    /// genuinely stalled past its timeout.
    fn handle_expiry(&mut self, token: Token, now: Instant) {
        let read_timeout = self.shared.config.read_timeout;
        let write_timeout = self.shared.config.write_timeout;
        enum Action {
            Nothing,
            Rearm(Instant),
            EvictRead,
            EvictWrite,
            Drop,
        }
        let action = {
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            conn.armed = None;
            match conn.desired_deadline(read_timeout, write_timeout) {
                None => Action::Nothing,
                Some(d) if d > now => {
                    conn.armed = Some(d);
                    Action::Rearm(d)
                }
                Some(_) => match conn.phase {
                    Phase::Handshake | Phase::ReadFrame => Action::EvictRead,
                    Phase::Write => Action::EvictWrite,
                    Phase::Drain => Action::Drop,
                    Phase::Dispatching => Action::Nothing,
                },
            }
        };
        match action {
            Action::Nothing => {}
            Action::Rearm(d) => self.deadlines.set(token, d),
            Action::EvictRead => {
                // Consume anything already queued in the kernel before
                // judging the peer: if the event loop itself fell behind,
                // the bytes are here and the peer is innocent.
                self.pump_token(token);
                let now = Instant::now();
                let stalled = self.conns.get(token).is_some_and(|c| {
                    matches!(c.phase, Phase::Handshake | Phase::ReadFrame)
                        && c.desired_deadline(read_timeout, write_timeout)
                            .is_some_and(|d| d <= now)
                });
                if stalled {
                    // Slow loris: the peer started a frame (or the
                    // handshake) and stopped feeding it. Tell it why,
                    // then drain out.
                    self.shared.content.connection_evicted();
                    self.note_eviction(token);
                    if let Some(conn) = self.conns.get_mut(token) {
                        stage_error(conn, &RecoilError::net("peer stalled mid-frame"), true);
                    }
                    self.pump_token(token);
                }
            }
            Action::EvictWrite => {
                // The peer stopped consuming its response; nothing more
                // can be said on a jammed pipe.
                self.shared.content.connection_evicted();
                self.note_eviction(token);
                self.close_conn(token);
            }
            Action::Drop => self.close_conn(token),
        }
    }

    fn note_eviction(&self, token: Token) {
        let tel = &self.shared.telemetry;
        if tel.counters_enabled() {
            tel.counters.evictions.bump();
            tel.trace(Stage::Evict, token.0, 0);
        }
    }

    /// Abrupt death ([`super::NetServerHandle::kill`]): drop the listener
    /// and sever every connection without draining its response or saying
    /// goodbye — in-flight transfers cut off mid-frame, like a crashed
    /// process.
    fn kill_now(&mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        let mut tokens = Vec::new();
        self.conns.collect_tokens(&mut tokens);
        for token in tokens {
            self.close_conn(token);
        }
        self.morgue.clear();
    }

    /// Stops accepting and closes every connection not owed a response;
    /// connections mid-response (or mid-dispatch) finish first.
    fn begin_shutdown(&mut self) {
        let Some(listener) = self.listener.take() else {
            return;
        };
        let _ = self.poller.deregister(listener.as_raw_fd());
        drop(listener);
        let mut tokens = Vec::new();
        self.conns.collect_tokens(&mut tokens);
        for token in tokens {
            let idle = self.conns.get(token).is_some_and(|c| {
                matches!(c.phase, Phase::Handshake | Phase::ReadFrame | Phase::Drain)
            });
            if idle {
                self.close_conn(token);
            }
        }
    }

    /// Mirrors the slab's allocation/reuse tallies into `Shared` for the
    /// handle. The `open_slots` gauge is *not* published here — that
    /// happens once per loop iteration in [`Self::publish_gauges`] so the
    /// STATS and TELEMETRY views stay consistent.
    fn publish_slab_stats(&self) {
        let stats = self.conns.stats();
        self.shared
            .slab_allocations
            .store(stats.allocations, Ordering::Relaxed);
        self.shared
            .slab_reuses
            .store(stats.reuses, Ordering::Relaxed);
    }
}

/// One dispatch worker: pop a job, run it, push the completion, wake the
/// loop. Exits only when the handle closes the queue *after* joining the
/// event loop, so no job is ever stranded.
fn dispatch_worker(shared: &Shared) {
    let mut jobs = shared.jobs.lock();
    loop {
        if let Some(job) = jobs.pop_front() {
            shared.queue_len.store(jobs.len() as u64, Ordering::Relaxed);
            drop(jobs);
            let tel = &shared.telemetry;
            if tel.counters_enabled() {
                let wait = elapsed_ns(job.queued_at());
                tel.hists.dispatch_wait_ns.record(wait);
                tel.trace(Stage::DispatchRun, job.token().0, wait);
            }
            let completion = run_job(shared, job);
            shared.completions.lock().push(completion);
            shared.waker.wake();
            jobs = shared.jobs.lock();
        } else if shared.jobs_closed.load(Ordering::Acquire) {
            return;
        } else {
            shared.jobs_cv.wait(&mut jobs);
        }
    }
}

/// Saturating nanoseconds since `t0`, sized for histogram/trace fields.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn error_frame(e: &RecoilError) -> Vec<u8> {
    let mut bytes = Vec::new();
    append_frame(&mut bytes, FrameType::Error, &encode_error(e))
        .expect("error frames are far below the frame cap");
    bytes
}

fn run_job(shared: &Shared, job: Job) -> Completion {
    match job {
        Job::Publish {
            token,
            buf,
            payload,
            consumed,
            queued_at: _,
        } => {
            let started = shared.telemetry.counters_enabled().then(Instant::now);
            let (reply, close_after) = publish_reply(shared, &buf[payload]);
            // The encode_ns histogram is recorded by ContentServer::publish
            // (successful encodes only); this trace covers the whole job.
            if let Some(t0) = started {
                shared
                    .telemetry
                    .trace(Stage::Encode, token.0, elapsed_ns(t0));
            }
            Completion {
                token,
                buf: Some((buf, consumed)),
                reply,
                close_after,
            }
        }
        Job::Fetch {
            token,
            name,
            parallel_segments,
            from_word,
            queued_at: _,
        } => match shared.content.fetch(&name, parallel_segments) {
            Ok((tx, item)) => {
                // The combine-vs-hit histograms live in ContentServer (which
                // times the combine itself); here we only leave the trace
                // breadcrumb with the measured cost.
                if shared.telemetry.counters_enabled() {
                    let ns = u64::try_from(tx.combine_nanos).unwrap_or(u64::MAX);
                    shared.telemetry.trace(Stage::Combine, token.0, ns);
                }
                Completion {
                    token,
                    buf: None,
                    reply: Reply::Stream(tx, item, from_word),
                    close_after: false,
                }
            }
            Err(e) => Completion {
                token,
                buf: None,
                reply: Reply::Framed(error_frame(&e)),
                close_after: false,
            },
        },
    }
}

/// PUBLISH off the loop: decode, encode-and-store, frame the verdict.
/// Application failures (duplicate name, bad config) are in-band and keep
/// the connection; a malformed frame is a protocol violation and closes it.
fn publish_reply(shared: &Shared, payload: &[u8]) -> (Reply, bool) {
    let msg = match PublishRequest::decode(payload) {
        Ok(m) => m,
        Err(e) => return (Reply::Framed(error_frame(&e)), true),
    };
    let config = EncoderConfig {
        ways: msg.ways,
        max_segments: msg.max_segments,
        quant_bits: msg.quant_bits,
        ..EncoderConfig::default()
    };
    match shared.content.publish(&msg.name, &msg.data, &config) {
        Ok(item) => {
            let ok = PublishOk {
                segments: item.metadata.num_segments(),
                stream_bytes: item.stream.payload_bytes(),
            };
            let mut bytes = Vec::new();
            append_frame(&mut bytes, FrameType::PublishOk, &ok.encode())
                .expect("publish-ok frames are far below the frame cap");
            (Reply::Framed(bytes), false)
        }
        Err(e) => (Reply::Framed(error_frame(&e)), false),
    }
}

/// Starts the reactor backend on an already-bound listener.
pub(super) fn bind(
    content: Arc<ContentServer>,
    listener: TcpListener,
    config: NetConfig,
) -> Result<ReactorHandle, RecoilError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("set_nonblocking", e))?;
    let mut poller = if config.poll_fallback {
        Poller::with_poll_fallback()
    } else {
        Poller::new()
    }
    .map_err(|e| io_err("create poller", e))?;
    let wake = WakePipe::new().map_err(|e| io_err("create wake pipe", e))?;
    poller
        .register(listener.as_raw_fd(), LISTENER, Interest::READ)
        .map_err(|e| io_err("register listener", e))?;
    poller
        .register(wake.read_fd(), WAKE, Interest::READ)
        .map_err(|e| io_err("register wake pipe", e))?;

    let chunk_words = config.effective_chunk_words().max(1);
    let workers = config.workers.max(1);
    let max_connections = config.max_connections;
    let telemetry = Arc::new(Telemetry::new(config.telemetry));
    // Hand the same instruments to the content layer so tier-cache and
    // combine metrics land in the snapshot this server exports.
    content.attach_telemetry(Arc::clone(&telemetry));
    let shared = Arc::new(Shared {
        content,
        config,
        chunk_words,
        telemetry,
        shutdown: AtomicBool::new(false),
        killed: AtomicBool::new(false),
        jobs_closed: AtomicBool::new(false),
        jobs: Mutex::new(VecDeque::new()),
        jobs_cv: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        waker: wake.waker(),
        active: AtomicUsize::new(0),
        queue_len: AtomicU64::new(0),
        slab_allocations: AtomicU64::new(0),
        slab_reuses: AtomicU64::new(0),
    });
    shared.content.set_open_slots(max_connections as u64);

    let mut event_loop = EventLoop {
        shared: Arc::clone(&shared),
        poller,
        wake,
        listener: Some(listener),
        conns: Slab::with_capacity(max_connections),
        deadlines: DeadlineQueue::new(),
        morgue: Vec::new(),
        events: Vec::new(),
        expired: Vec::new(),
        in_flight: 0,
    };
    let loop_thread = std::thread::Builder::new()
        .name("recoil-net-serve".into())
        .spawn(move || event_loop.run())
        .map_err(|e| io_err("spawn event loop", e))?;

    let dispatch_shared = Arc::clone(&shared);
    let dispatch_thread = std::thread::Builder::new()
        .name("recoil-net-dispatch".into())
        .spawn(move || {
            // The pool host participates as a worker itself, so `workers`
            // total workers serve the queue.
            let pool = ThreadPool::new(workers - 1);
            pool.run(workers, |_| dispatch_worker(&dispatch_shared));
        })
        .map_err(|e| io_err("spawn dispatch pool", e))?;

    Ok(ReactorHandle {
        shared,
        loop_thread: Some(loop_thread),
        dispatch_thread: Some(dispatch_thread),
    })
}

/// Owner of a running reactor backend.
pub(super) struct ReactorHandle {
    shared: Arc<Shared>,
    loop_thread: Option<std::thread::JoinHandle<()>>,
    dispatch_thread: Option<std::thread::JoinHandle<()>>,
}

impl ReactorHandle {
    pub(super) fn content(&self) -> &Arc<ContentServer> {
        &self.shared.content
    }

    pub(super) fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    pub(super) fn slab_stats(&self) -> SlabStats {
        SlabStats {
            allocations: self.shared.slab_allocations.load(Ordering::Relaxed),
            reuses: self.shared.slab_reuses.load(Ordering::Relaxed),
        }
    }

    pub(super) fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    pub(super) fn shutdown_impl(&mut self) {
        self.stop(false);
    }

    /// Abrupt death: like [`Self::shutdown_impl`], except the event loop
    /// severs every connection instead of draining in-flight responses.
    pub(super) fn kill_impl(&mut self) {
        self.stop(true);
    }

    fn stop(&mut self, kill: bool) {
        if kill {
            self.shared.killed.store(true, Ordering::Release);
        }
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.waker.wake();
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        // Only after the loop is gone can the job queue close: a worker
        // exiting while the loop still dispatches would strand a request.
        self.shared.jobs_closed.store(true, Ordering::Release);
        {
            // Lock-then-notify: a worker between its queue check and its
            // wait would otherwise sleep through the notification.
            let _guard = self.shared.jobs.lock();
        }
        self.shared.jobs_cv.notify_all();
        if let Some(t) = self.dispatch_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;

    #[test]
    fn parse_frame_handles_partial_and_hostile_input() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Stats, b"xyz").unwrap();
        for cut in 0..buf.len() {
            assert!(
                parse_frame(&buf[..cut]).unwrap().is_none(),
                "cut {cut} is incomplete"
            );
        }
        assert_eq!(
            parse_frame(&buf).unwrap(),
            Some((FrameType::Stats, buf.len()))
        );
        // Pipelined trailing bytes do not confuse the parse.
        buf.push(0xFF);
        assert_eq!(
            parse_frame(&buf).unwrap(),
            Some((FrameType::Stats, buf.len() - 1))
        );

        assert!(parse_frame(&[0xABu8])
            .unwrap_err()
            .to_string()
            .contains("unknown frame type"));
        let mut oversized = vec![FrameType::Publish as u8];
        oversized.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(parse_frame(&oversized)
            .unwrap_err()
            .to_string()
            .contains("oversized frame"));
    }
}
