//! The deprecated thread-per-connection backend.
//!
//! One accept loop (its own thread) feeds a bounded connection queue
//! drained by handler workers running on a [`recoil_parallel::ThreadPool`]
//! — one long-lived worker per pool thread, claimed through a single `run`
//! epoch that lasts for the server's lifetime. Each worker handles one
//! connection at a time, frame by frame, so a keep-alive connection pins a
//! worker for its whole lifetime — the scaling wall the reactor backend
//! exists to remove. Kept for one deprecation cycle behind
//! [`NetConfig::legacy_threaded`]; it must keep passing the same
//! integration suites as the reactor until it is deleted.
//!
//! Graceful shutdown flips an atomic flag, wakes the accept loop with a
//! loopback connection, and wakes queue waiters. Workers finish the
//! request they are serving (responses are fully written), then close;
//! read timeouts bound how long an idle keep-alive connection can delay
//! the exit.

use super::NetConfig;
use crate::frame::{
    encode_error, io_err, read_frame, write_frame, FrameType, ReadOutcome, CAP_CHUNKED,
    PROTOCOL_VERSION,
};
use crate::proto::{ContentRequest, Hello, PublishOk, PublishRequest, StatsReply, TransmitHeader};
use parking_lot::{Condvar, Mutex};
use recoil_core::codec::EncoderConfig;
use recoil_core::{plan_chunks, update_crc32, RecoilError};
use recoil_parallel::ThreadPool;
use recoil_server::{ContentServer, StoredContent, Transmission};
use std::collections::VecDeque;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Inner {
    content: Arc<ContentServer>,
    config: NetConfig,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    /// Connections currently inside a handler (the queue holds the rest).
    active: AtomicUsize,
}

impl Inner {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

/// Starts the legacy threaded backend on an already-bound listener.
pub(super) fn bind(
    content: Arc<ContentServer>,
    listener: TcpListener,
    addr: SocketAddr,
    config: NetConfig,
) -> Result<LegacyHandle, RecoilError> {
    let inner = Arc::new(Inner {
        content,
        config,
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        active: AtomicUsize::new(0),
    });
    let serve_inner = Arc::clone(&inner);
    let thread = std::thread::Builder::new()
        .name("recoil-net-serve".into())
        .spawn(move || serve(&serve_inner, listener))
        .map_err(|e| io_err("spawn serve thread", e))?;
    Ok(LegacyHandle {
        addr,
        inner,
        serve_thread: Some(thread),
    })
}

/// Owning handle for the legacy backend; `super::NetServerHandle` wraps it.
pub(super) struct LegacyHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    serve_thread: Option<std::thread::JoinHandle<()>>,
}

impl LegacyHandle {
    pub(super) fn content(&self) -> &Arc<ContentServer> {
        &self.inner.content
    }

    /// Connections currently inside a handler.
    pub(super) fn active_connections(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    pub(super) fn shutdown_impl(&mut self) {
        if !self.inner.shutdown.swap(true, Ordering::AcqRel) {
            // Wake the accept loop with a loopback connection; the flag is
            // already visible, so the accepted socket is dropped at once.
            let _ = TcpStream::connect(self.addr);
            // Wake queue waiters without losing the notification: taking
            // the queue lock orders this notify after any in-progress
            // check-then-wait.
            drop(self.inner.queue.lock());
            self.inner.queue_cv.notify_all();
        }
        if let Some(t) = self.serve_thread.take() {
            let _ = t.join();
        }
    }
}

/// The serve thread: runs the accept loop beside one pool epoch whose
/// tasks are the long-lived connection workers.
fn serve(inner: &Arc<Inner>, listener: TcpListener) {
    let workers = inner.config.workers.max(1);
    let pool = ThreadPool::new(workers - 1);
    let accept_inner = Arc::clone(inner);
    let accept = std::thread::Builder::new()
        .name("recoil-net-accept".into())
        .spawn(move || accept_loop(&listener, &accept_inner))
        .expect("spawn accept thread");
    // Each pool thread claims exactly one index and stays in its worker
    // loop until shutdown, so this single epoch spans the server lifetime.
    pool.run(workers, |_| connection_worker(inner));
    let _ = accept.join();
}

fn accept_loop(listener: &TcpListener, inner: &Inner) {
    loop {
        match listener.accept() {
            Ok((conn, _)) => {
                if inner.shutting_down() {
                    return; // `conn` (usually the wake connection) drops
                }
                let mut queue = inner.queue.lock();
                if inner.active.load(Ordering::Relaxed) + queue.len()
                    >= inner.config.max_connections
                {
                    drop(queue);
                    reject_busy(conn, inner);
                    continue;
                }
                queue.push_back(conn);
                drop(queue);
                inner.queue_cv.notify_one();
            }
            Err(_) => {
                if inner.shutting_down() {
                    return;
                }
                // Transient accept failure (e.g. fd exhaustion): back off.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Tells an over-cap client why it is being dropped (best effort).
///
/// Runs on a short-lived detached thread: the graceful-close drain can take
/// up to ~250 ms against a slow peer, and the accept loop must not stall
/// behind rejected connections.
fn reject_busy(conn: TcpStream, inner: &Inner) {
    inner.content.connection_rejected();
    let write_timeout = inner.config.write_timeout;
    let max_connections = inner.config.max_connections;
    let spawned = std::thread::Builder::new()
        .name("recoil-net-reject".into())
        .spawn(move || {
            let mut conn = conn;
            let _ = conn.set_write_timeout(Some(write_timeout));
            let e = RecoilError::net(format!("server at connection capacity ({max_connections})"));
            let _ = write_frame(&mut conn, FrameType::Error, &encode_error(&e));
            close_gracefully(conn);
        });
    // If the spawn itself fails (fd/thread exhaustion), the connection
    // just drops without the courtesy frame.
    drop(spawned);
}

/// Half-closes and briefly drains the socket so a final frame (usually an
/// ERROR) actually reaches the peer: dropping a socket with unread inbound
/// data sends RST, which discards our own queued outbound bytes.
fn close_gracefully(mut conn: TcpStream) {
    let _ = conn.shutdown(Shutdown::Write);
    let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
    let deadline = Instant::now() + Duration::from_millis(250);
    let mut sink = [0u8; 4096];
    while Instant::now() < deadline {
        match conn.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
}

/// One long-lived worker: pops connections and handles each to completion.
fn connection_worker(inner: &Inner) {
    loop {
        let mut conn = {
            let mut queue = inner.queue.lock();
            loop {
                if let Some(c) = queue.pop_front() {
                    break c;
                }
                if inner.shutting_down() {
                    return;
                }
                inner.queue_cv.wait(&mut queue);
            }
        };
        if inner.shutting_down() {
            continue; // drop unhandled queued connections, then drain out
        }
        inner.active.fetch_add(1, Ordering::Relaxed);
        inner.content.connection_opened();
        let _ = handle_connection(&mut conn, inner);
        close_gracefully(conn);
        inner.content.connection_closed();
        inner.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Sends a typed error frame; failures just end the connection.
fn send_error(conn: &mut TcpStream, e: &RecoilError) {
    let _ = write_frame(conn, FrameType::Error, &encode_error(e));
}

fn handle_connection(conn: &mut TcpStream, inner: &Inner) -> Result<(), RecoilError> {
    let _ = conn.set_nodelay(true);
    conn.set_read_timeout(Some(inner.config.read_timeout))
        .map_err(|e| io_err("set_read_timeout", e))?;
    conn.set_write_timeout(Some(inner.config.write_timeout))
        .map_err(|e| io_err("set_write_timeout", e))?;

    // The first frame must be HELLO; negotiate version and capabilities.
    let hello = loop {
        match read_frame(conn) {
            Ok(ReadOutcome::Frame(FrameType::Hello, payload)) => match Hello::decode(&payload) {
                Ok(h) => break h,
                Err(e) => {
                    send_error(conn, &e);
                    return Err(e);
                }
            },
            Ok(ReadOutcome::Frame(ty, _)) => {
                let e = RecoilError::net(format!("expected HELLO, got {ty:?}"));
                send_error(conn, &e);
                return Err(e);
            }
            Ok(ReadOutcome::Eof) => return Ok(()),
            Ok(ReadOutcome::Idle) => {
                if inner.shutting_down() {
                    return Ok(());
                }
            }
            Err(e) => {
                send_error(conn, &e);
                return Err(e);
            }
        }
    };
    if hello.version != PROTOCOL_VERSION {
        let e = RecoilError::net(format!(
            "unsupported protocol version {} (server speaks {PROTOCOL_VERSION})",
            hello.version
        ));
        send_error(conn, &e);
        return Err(e);
    }
    let negotiated = Hello {
        version: PROTOCOL_VERSION,
        capabilities: hello.capabilities & crate::frame::SUPPORTED_CAPS,
    };
    if negotiated.capabilities & CAP_CHUNKED == 0 {
        let e = RecoilError::net("peer lacks the chunked-streaming capability");
        send_error(conn, &e);
        return Err(e);
    }
    write_frame(conn, FrameType::Hello, &negotiated.encode())?;

    // Request loop: one frame in, one response (possibly chunked) out.
    loop {
        match read_frame(conn) {
            Ok(ReadOutcome::Frame(ty, payload)) => match ty {
                FrameType::Publish => handle_publish(conn, inner, &payload)?,
                FrameType::Request => handle_request(conn, inner, &payload)?,
                FrameType::Stats => handle_stats(conn, inner)?,
                other => {
                    let e = RecoilError::net(format!("unexpected {other:?} frame from client"));
                    send_error(conn, &e);
                    return Err(e);
                }
            },
            Ok(ReadOutcome::Eof) => return Ok(()),
            Ok(ReadOutcome::Idle) => {}
            Err(e) => {
                // Framing violations (garbage type, oversized length) are
                // unrecoverable: report and drop the connection.
                send_error(conn, &e);
                return Err(e);
            }
        }
        if inner.shutting_down() {
            return Ok(()); // the in-flight response above was fully written
        }
    }
}

/// PUBLISH: encode-and-store. Application failures (duplicate name, bad
/// config) are reported in-band; the connection stays usable.
fn handle_publish(conn: &mut TcpStream, inner: &Inner, payload: &[u8]) -> Result<(), RecoilError> {
    let msg = match PublishRequest::decode(payload) {
        Ok(m) => m,
        Err(e) => {
            send_error(conn, &e);
            return Err(e); // malformed frame: protocol violation
        }
    };
    let config = EncoderConfig {
        ways: msg.ways,
        max_segments: msg.max_segments,
        quant_bits: msg.quant_bits,
        ..EncoderConfig::default()
    };
    match inner.content.publish(&msg.name, &msg.data, &config) {
        Ok(item) => write_frame(
            conn,
            FrameType::PublishOk,
            &PublishOk {
                segments: item.metadata.num_segments(),
                stream_bytes: item.stream.payload_bytes(),
            }
            .encode(),
        ),
        Err(e) => {
            send_error(conn, &e);
            Ok(())
        }
    }
}

/// REQUEST: resolve atomically via [`ContentServer::fetch`] and stream the
/// response.
fn handle_request(conn: &mut TcpStream, inner: &Inner, payload: &[u8]) -> Result<(), RecoilError> {
    let msg = match ContentRequest::decode(payload) {
        Ok(m) => m,
        Err(e) => {
            send_error(conn, &e);
            return Err(e);
        }
    };
    match inner.content.fetch(&msg.name, msg.parallel_segments) {
        Ok((transmission, item)) => send_transmission(
            conn,
            &transmission,
            &item,
            inner.config.effective_chunk_words(),
        ),
        Err(e) => {
            send_error(conn, &e);
            Ok(())
        }
    }
}

fn handle_stats(conn: &mut TcpStream, inner: &Inner) -> Result<(), RecoilError> {
    let reply = StatsReply {
        stats: inner.content.stats(),
        items: inner.content.len() as u64,
    };
    write_frame(conn, FrameType::StatsReply, &reply.encode())
}

/// Writes one TRANSMIT header plus the chunked bitstream words.
///
/// Chunk boundaries follow the **split-aligned chunk plan** for the served
/// metadata tier ([`recoil_core::plan_chunks`]): each chunk ends at a
/// segment-completion boundary whenever the target chunk size allows, so a
/// streaming client can decode whole segments the moment a chunk lands.
/// Buffered clients are unaffected — they reassemble by concatenation and
/// never look at the boundaries.
///
/// The word payload is CRC-32'd in a first streaming pass (constant scratch
/// memory — the bitstream is never duplicated), then sent chunk by chunk
/// with sequence numbers.
fn send_transmission(
    conn: &mut TcpStream,
    transmission: &Transmission,
    item: &StoredContent,
    chunk_words: usize,
) -> Result<(), RecoilError> {
    let stream = &item.stream;
    let words = &stream.words;
    let chunk_words = chunk_words.max(1);
    // The plan is built from the *served* tier, so its boundaries match the
    // split offsets the client's metadata will report. `chunk_words` is
    // pre-clamped to the frame budget, bounding every chunk's frame size.
    let plan = plan_chunks(transmission.metadata(), chunk_words * 2);
    let mut scratch = Vec::with_capacity(chunk_words * 2 + 4);

    let mut crc_state = 0xFFFF_FFFFu32;
    for chunk in &plan.chunks {
        scratch.clear();
        for &w in &words[chunk.words.start as usize..chunk.words.end as usize] {
            scratch.extend_from_slice(&w.to_le_bytes());
        }
        crc_state = update_crc32(crc_state, &scratch);
    }
    let payload_crc = crc_state ^ 0xFFFF_FFFF;

    let table = item.model.table();
    let header = TransmitHeader {
        segments: transmission.tier.segments,
        cache_hit: transmission.cache_hit,
        combine_nanos: transmission.combine_nanos.min(u64::MAX as u128) as u64,
        metadata: transmission.metadata_bytes().to_vec(),
        quant_bits: table.quant_bits(),
        // Quantizer invariant: every frequency is < 2^16, so u16 is exact.
        freqs: (0..table.alphabet_size())
            .map(|s| table.freq(s) as u16)
            .collect(),
        ways: stream.ways,
        num_symbols: stream.num_symbols,
        final_states: stream.final_states.clone(),
        word_bytes: words.len() as u64 * 2,
        payload_crc,
        chunk_count: plan.len() as u32,
    };
    write_frame(conn, FrameType::Transmit, &header.encode())?;

    for (seq, chunk) in plan.chunks.iter().enumerate() {
        scratch.clear();
        scratch.extend_from_slice(&(seq as u32).to_le_bytes());
        for &w in &words[chunk.words.start as usize..chunk.words.end as usize] {
            scratch.extend_from_slice(&w.to_le_bytes());
        }
        write_frame(conn, FrameType::Chunk, &scratch)?;
    }
    Ok(())
}
