//! The TCP front end over [`ContentServer`](recoil_server::ContentServer):
//! public configuration and handle types over the event-driven backend.
//!
//! The backend ([`reactor`]) multiplexes every connection on one
//! event-driven thread built from `recoil-reactor`'s readiness plumbing
//! (edge-triggered epoll, slab-pooled connection state, reactor-managed
//! deadlines) and offloads CPU-bound work — encodes on publish, metadata
//! combines on a tier-cache miss — to a small dispatch pool. Connections
//! are *not* pinned to threads, so thousands of mostly-idle peers cost
//! one slab slot each, not a worker.
//!
//! The original thread-per-connection backend finished its deprecation
//! cycle and has been removed; the reactor passes the same integration
//! suites it did.

mod reactor;

use crate::fault::FaultPlan;
use crate::frame::{io_err, MAX_FRAME_LEN};
use recoil_core::RecoilError;
use recoil_reactor::SlabStats;
use recoil_server::ContentServer;
use recoil_telemetry::{Telemetry, TelemetryLevel};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Construction knobs for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Dispatch workers for CPU-bound request work (encoding a publish,
    /// combining metadata on a tier-cache miss).
    ///
    /// Connections are **not** pinned to workers: the reactor backend
    /// serves every connection from one event loop and touches a worker
    /// only for compute-heavy requests, so this sizes compute concurrency,
    /// not connection concurrency.
    pub workers: usize,
    /// Hard cap on concurrently open connections; excess accepts are
    /// rejected with a typed busy error.
    pub max_connections: usize,
    /// Progress deadline while a frame is partially received: a peer that
    /// starts a frame must keep bytes flowing at least this often or be
    /// evicted (slow-loris defense). Idle connections *between* frames are
    /// not subject to it.
    pub read_timeout: Duration,
    /// Progress deadline while a response is being written.
    pub write_timeout: Duration,
    /// Bitstream bytes per [`crate::FrameType::Chunk`] frame.
    pub chunk_bytes: usize,
    /// Force the reactor's portable level-triggered `poll(2)` backend
    /// instead of edge-triggered epoll (tests, exotic targets).
    pub poll_fallback: bool,
    /// How much the pipeline observes itself. `Off` (the default) reduces
    /// every instrument to one branch on the hot path; `Counters` adds
    /// counters, gauges, and latency histograms; `Trace` additionally keeps
    /// the last N stage events in a lock-free ring. Snapshots are served
    /// over the wire via the negotiated TELEMETRY capability and locally
    /// via [`NetServerHandle::telemetry`].
    pub telemetry: TelemetryLevel,
    /// Dispatch-queue depth at which PUBLISH/REQUEST offloads are shed with
    /// a typed busy error instead of queueing unboundedly behind a slow
    /// worker pool.
    pub max_queue_depth: usize,
    /// Retry-after hint (milliseconds) carried in the typed busy error the
    /// server sheds load with; a well-behaved client backs off at least
    /// this long before retrying.
    pub busy_retry_after_ms: u32,
    /// Deterministic fault schedule for chaos testing ([`FaultPlan`]). A
    /// `None` (the default) serves faithfully; a plan makes this node
    /// reset accepts, tear/delay writes, or die mid-stream at a fixed
    /// write offset — reproducibly, for failover tests and chaos benches.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for NetConfig {
    fn default() -> Self {
        let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self {
            workers: cpus.clamp(2, 8),
            max_connections: 64,
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(10),
            chunk_bytes: 256 * 1024,
            poll_fallback: false,
            telemetry: TelemetryLevel::Off,
            max_queue_depth: 1024,
            busy_retry_after_ms: 25,
            fault_plan: None,
        }
    }
}

impl NetConfig {
    /// Chunk size clamped to what one frame can carry (minus the sequence
    /// number) and to whole words.
    fn effective_chunk_words(&self) -> usize {
        (self.chunk_bytes.clamp(2, MAX_FRAME_LEN as usize - 4)) / 2
    }
}

/// The framed TCP server. Constructed via [`NetServer::bind`], which
/// returns the owning [`NetServerHandle`].
pub struct NetServer;

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `content` in background threads. The returned handle owns the
    /// server; dropping it shuts the server down.
    pub fn bind(
        content: Arc<ContentServer>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> Result<NetServerHandle, RecoilError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", e))?;
        let addr = listener.local_addr().map_err(|e| io_err("local_addr", e))?;
        let backend = reactor::bind(content, listener, config)?;
        Ok(NetServerHandle { addr, backend })
    }
}

/// Owner of a running [`NetServer`]; shuts it down when dropped.
pub struct NetServerHandle {
    addr: SocketAddr,
    backend: reactor::ReactorHandle,
}

impl NetServerHandle {
    /// The bound address (with the resolved port for ephemeral binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The content store this server fronts.
    pub fn content(&self) -> &Arc<ContentServer> {
        self.backend.content()
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> usize {
        self.backend.active_connections()
    }

    /// Connection-slot reuse tallies from the reactor's slab: steady-state
    /// accepts recycle parked buffers instead of allocating, and this is
    /// how tests assert it.
    pub fn slab_stats(&self) -> SlabStats {
        self.backend.slab_stats()
    }

    /// The server's telemetry handle — the same instruments the TELEMETRY
    /// wire frame snapshots, for in-process consumers (benches, tests,
    /// `examples/telemetry_dump.rs`).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        self.backend.telemetry()
    }

    /// Stops accepting, lets in-flight requests finish, and joins every
    /// server thread. Idempotent (also runs on drop).
    pub fn shutdown(mut self) {
        self.backend.shutdown_impl();
    }

    /// Kills the node **abruptly**: the listener closes and every open
    /// connection is severed without draining its response or sending an
    /// ERROR frame — in-flight transfers die mid-frame, exactly like a
    /// crashed process (modulo the OS closing its sockets). This is the
    /// failover trigger the fabric's chaos tests exercise; for orderly
    /// teardown use [`NetServerHandle::shutdown`].
    pub fn kill(mut self) {
        self.backend.kill_impl();
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        self.backend.shutdown_impl();
    }
}

impl std::fmt::Debug for NetServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServerHandle")
            .field("addr", &self.addr)
            .field("backend", &"reactor")
            .field("active", &self.active_connections())
            .finish()
    }
}
