//! The pooling TCP client: remote publish / request / stats, and a
//! one-call remote fetch-and-decode through the [`DecodeBackend`]
//! machinery.

use crate::fault::splitmix64;
use crate::frame::{
    decode_error, io_err, read_frame, write_frame, FrameType, ReadOutcome, CAP_CHUNKED, CAP_RESUME,
    CAP_TELEMETRY, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use crate::proto::{
    encode_publish, ContentRequest, Hello, PublishOk, ResumeRequest, StatsReply, TelemetryReply,
    TransmitHeader,
};
use parking_lot::Mutex;
use recoil_core::codec::{DecodeBackend, DecodeRequest, EncoderConfig};
use recoil_core::{
    metadata_from_bytes, update_crc32, IncrementalDecoder, RecoilError, RecoilMetadata,
};
use recoil_models::{CdfTable, StaticModelProvider};
use recoil_rans::EncodedStream;
use recoil_simd::AutoBackend;
use recoil_telemetry::{Stage, Telemetry, TelemetryLevel};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Construction knobs for [`NetClient`].
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Idle connections kept for reuse (checkout prefers these; overflow
    /// connections are simply closed on check-in).
    pub max_pool: usize,
    /// Socket read timeout per attempt (idle poll granularity).
    pub read_timeout: Duration,
    /// Total time to wait for a response to one request — covers the
    /// server's encode on a PUBLISH, so it is generous.
    pub response_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Bounded in-flight budget of the streaming decode pipeline: how many
    /// received-but-not-yet-decoded chunks
    /// [`NetClient::fetch_and_decode_streaming`] buffers before the network
    /// receive loop blocks (backpressure). Memory beyond the output buffer
    /// and the word store stays constant at roughly `budget × chunk size`.
    pub streaming_inflight_chunks: usize,
    /// Client-side observability. Defaults to `Counters` (unlike the
    /// server): the client records only a handful of histogram samples per
    /// *call*, not per hot-loop iteration, so the cost is negligible and
    /// the streaming latency breakdown is available by default through
    /// [`NetClient::telemetry`].
    pub telemetry: TelemetryLevel,
    /// Retries per call after the first attempt, spent only on
    /// **idempotent** operations (fetch, stats, telemetry — never
    /// PUBLISH) for transport failures and typed busy sheds. A stale
    /// pooled connection additionally gets one immediate free redial that
    /// costs no budget.
    pub retry_budget: u32,
    /// First retry backoff; each further retry doubles it (capped by
    /// [`NetClientConfig::retry_max_backoff`]) and jitters the result by
    /// ±50% to decorrelate clients hitting the same overloaded server.
    pub retry_base_backoff: Duration,
    /// Backoff growth cap.
    pub retry_max_backoff: Duration,
    /// Seed for the deterministic backoff jitter sequence (splitmix64), so
    /// tests replay identical schedules.
    pub retry_jitter_seed: u64,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        Self {
            max_pool: 4,
            read_timeout: Duration::from_millis(250),
            response_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(10),
            streaming_inflight_chunks: 4,
            telemetry: TelemetryLevel::Counters,
            retry_budget: 2,
            retry_base_backoff: Duration::from_millis(10),
            retry_max_backoff: Duration::from_millis(250),
            retry_jitter_seed: 0x005E_EDCA_B1E5,
        }
    }
}

/// How one remote operation failed — the distinction drives connection
/// reuse.
enum OpError {
    /// The server reported a typed error **in-band** (an ERROR frame): the
    /// framing is still synchronized, so the connection goes back to the
    /// pool and there is nothing to retry.
    Remote(RecoilError),
    /// The transport or protocol state is broken (I/O failure, unexpected
    /// frame, corrupt payload): the connection is dropped, and idempotent
    /// operations retry once on a fresh dial.
    Transport(RecoilError),
}

impl OpError {
    fn into_inner(self) -> RecoilError {
        match self {
            Self::Remote(e) | Self::Transport(e) => e,
        }
    }
}

/// A remote content fetch, fully received and integrity-checked: the
/// client-side mirror of what [`recoil_server::Transmission`] plus the
/// stored content provide in-process.
#[derive(Debug)]
pub struct RemoteContent {
    /// The reassembled bitstream.
    pub stream: EncodedStream,
    /// Parsed shrunk metadata for this client's capacity.
    pub metadata: RecoilMetadata,
    /// The raw metadata bytes as they crossed the wire.
    pub metadata_bytes: Vec<u8>,
    /// The static model rebuilt from the transmitted frequencies.
    pub model: StaticModelProvider,
    /// Post-clamp segment count the server actually served.
    pub segments: u64,
    /// Whether the server answered from its shrunk-metadata cache.
    pub cache_hit: bool,
    /// Server-side combine cost in nanoseconds (zero on a cache hit).
    pub combine_nanos: u64,
}

impl RemoteContent {
    /// Transfer size: bitstream payload plus metadata, as the paper counts
    /// it (the model is excluded, §5.2).
    pub fn total_bytes(&self) -> u64 {
        self.stream.payload_bytes() + self.metadata_bytes.len() as u64
    }

    /// Decodes through an explicit backend.
    pub fn decode_with(&self, backend: &dyn DecodeBackend) -> Result<Vec<u8>, RecoilError> {
        if !backend.is_available() {
            return Err(RecoilError::BackendUnavailable {
                backend: backend.name(),
            });
        }
        let mut out = vec![0u8; self.stream.num_symbols as usize];
        let req = DecodeRequest {
            stream: &self.stream,
            metadata: &self.metadata,
            model: &self.model,
        };
        backend.decode_u8(&req, &mut out)?;
        Ok(out)
    }
}

/// Result of one [`NetClient::fetch_and_decode_streaming`] call: the decoded
/// bytes plus the pipeline's latency breakdown, so callers can see how much
/// decode time the network transfer hid.
#[derive(Debug, Clone)]
pub struct StreamedFetch {
    /// The decoded content, byte-identical to
    /// [`NetClient::fetch_and_decode`]'s result.
    pub data: Vec<u8>,
    /// Post-clamp segment count the server served.
    pub segments: u64,
    /// Whether the server answered from its shrunk-metadata cache.
    pub cache_hit: bool,
    /// Server-side combine cost in nanoseconds (zero on a cache hit).
    pub combine_nanos: u64,
    /// Transfer size: bitstream payload plus metadata, as the paper counts
    /// it (the model is excluded, §5.2).
    pub total_bytes: u64,
    /// CHUNK frames the transfer arrived in (split-aligned server plan).
    pub chunk_count: u32,
    /// Decode dispatches the pipeline issued (each covering one or more
    /// newly resident segments).
    pub decode_batches: u64,
    /// Nanoseconds from request start until the **first** segment's symbols
    /// were fully decoded — the streaming win: this lands well before the
    /// transfer itself finishes.
    pub first_segment_nanos: u64,
    /// Nanoseconds from request start until the last chunk was received and
    /// the payload CRC verified.
    pub transfer_nanos: u64,
    /// Nanoseconds from request start until every segment was decoded.
    pub total_nanos: u64,
}

/// A client for one [`crate::NetServer`] address, holding a small pool of
/// reusable connections and a decode backend for one-call remote decodes.
pub struct NetClient {
    addr: SocketAddr,
    config: NetClientConfig,
    pool: Mutex<Vec<TcpStream>>,
    backend: Box<dyn DecodeBackend>,
    /// Client-side instruments (streaming latency breakdown lands here).
    telemetry: Arc<Telemetry>,
    /// Capability bits the server granted in the most recent HELLO
    /// exchange; gates [`NetClient::remote_telemetry`].
    server_caps: AtomicU32,
    /// Backoff-jitter sequence state (seeded from the config; one
    /// splitmix64 draw per retry keeps schedules deterministic per seed).
    jitter_state: AtomicU64,
}

impl NetClient {
    /// Connects to `addr` with default config: dials one connection and
    /// completes the HELLO negotiation to fail fast on a bad address or an
    /// incompatible server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, RecoilError> {
        Self::connect_with(addr, NetClientConfig::default())
    }

    /// [`NetClient::connect`] with explicit knobs.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: NetClientConfig,
    ) -> Result<Self, RecoilError> {
        let client = Self::connect_lazy(addr, config)?;
        let probe = client.dial()?;
        client.checkin(probe);
        Ok(client)
    }

    /// [`NetClient::connect_with`] without the probe connection: resolves
    /// the address but does not dial, so construction succeeds even while
    /// the server is down. The first operation dials (and HELLO-checks)
    /// normally. The fabric router uses this to hold clients for nodes
    /// that may be dead right now and come back later.
    pub fn connect_lazy(
        addr: impl ToSocketAddrs,
        config: NetClientConfig,
    ) -> Result<Self, RecoilError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| io_err("resolve", e))?
            .next()
            .ok_or_else(|| RecoilError::net("address resolved to nothing"))?;
        let telemetry = Arc::new(Telemetry::new(config.telemetry));
        let jitter_state = AtomicU64::new(config.retry_jitter_seed);
        Ok(Self {
            addr,
            config,
            pool: Mutex::new(Vec::new()),
            backend: Box::new(AutoBackend::with_threads(
                std::thread::available_parallelism().map_or(1, |p| p.get()),
            )),
            telemetry,
            server_caps: AtomicU32::new(0),
            jitter_state,
        })
    }

    /// Replaces the decode backend used by
    /// [`NetClient::fetch_and_decode`].
    pub fn with_backend(mut self, backend: impl DecodeBackend + 'static) -> Self {
        self.backend = Box::new(backend);
        self
    }

    /// Replaces this client's instrument handle with a shared one, so
    /// several clients can aggregate into a single [`Telemetry`] — the
    /// fabric router injects one handle into every per-node client and
    /// its `retries` counter then reflects the whole fleet.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backend remote fetches decode with.
    pub fn backend(&self) -> &dyn DecodeBackend {
        self.backend.as_ref()
    }

    /// Dials and HELLO-negotiates a fresh connection.
    fn dial(&self) -> Result<TcpStream, RecoilError> {
        let conn = TcpStream::connect(self.addr).map_err(|e| io_err("connect", e))?;
        let _ = conn.set_nodelay(true);
        conn.set_read_timeout(Some(self.config.read_timeout))
            .map_err(|e| io_err("set_read_timeout", e))?;
        conn.set_write_timeout(Some(self.config.write_timeout))
            .map_err(|e| io_err("set_write_timeout", e))?;
        let mut conn = conn;
        write_frame(&mut conn, FrameType::Hello, &Hello::ours().encode())?;
        let (ty, payload) = self.await_frame(&mut conn).map_err(OpError::into_inner)?;
        if ty != FrameType::Hello {
            return Err(RecoilError::net(format!(
                "expected HELLO reply, got {ty:?}"
            )));
        }
        let hello = Hello::decode(&payload)?;
        if hello.version != PROTOCOL_VERSION {
            return Err(RecoilError::net(format!(
                "server speaks protocol version {}, this client speaks {PROTOCOL_VERSION}",
                hello.version
            )));
        }
        if hello.capabilities & CAP_CHUNKED == 0 {
            return Err(RecoilError::net(
                "server did not negotiate the chunked-streaming capability",
            ));
        }
        self.server_caps
            .store(hello.capabilities, Ordering::Relaxed);
        Ok(conn)
    }

    /// This client's own instruments — streaming fetch latency breakdowns
    /// land in `stream_first_segment_ns` / `stream_transfer_ns` /
    /// `stream_total_ns` when [`NetClientConfig::telemetry`] is at least
    /// `Counters`.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Fetches the **server's** telemetry snapshot over the wire (counters,
    /// gauges, histograms, and — at `Trace` level — the drained stage-event
    /// ring). Requires the server to have negotiated the TELEMETRY
    /// capability; servers predating it yield a typed error without
    /// touching the wire.
    pub fn remote_telemetry(&self) -> Result<TelemetryReply, RecoilError> {
        if self.server_caps.load(Ordering::Relaxed) & CAP_TELEMETRY == 0 {
            return Err(RecoilError::net(
                "server did not negotiate the telemetry capability",
            ));
        }
        self.with_conn(true, |client, conn| {
            write_frame(conn, FrameType::Telemetry, &[]).map_err(OpError::Transport)?;
            let (ty, payload) = client.await_frame(conn)?;
            if ty != FrameType::TelemetryReply {
                return Err(OpError::Transport(RecoilError::net(format!(
                    "expected TELEMETRY_REPLY, got {ty:?}"
                ))));
            }
            TelemetryReply::decode(&payload).map_err(OpError::Transport)
        })
    }

    fn checkout(&self) -> Result<(TcpStream, bool), RecoilError> {
        if let Some(conn) = self.pool.lock().pop() {
            return Ok((conn, true));
        }
        Ok((self.dial()?, false))
    }

    fn checkin(&self, conn: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < self.config.max_pool {
            pool.push(conn);
        }
    }

    /// Idle connections currently pooled.
    pub fn pooled_connections(&self) -> usize {
        self.pool.lock().len()
    }

    /// Runs `op` on a pooled (or fresh) connection under the retry policy.
    ///
    /// In-band server errors ([`OpError::Remote`]) leave the connection
    /// synchronized: it goes straight back to the pool. They are terminal,
    /// with one exception: a typed [`RecoilError::Busy`] shed is retried
    /// (idempotent ops only) after honoring the server's retry-after hint.
    /// Transport failures and dial failures drop the connection and are
    /// retried for idempotent operations under jittered exponential
    /// backoff, up to [`NetClientConfig::retry_budget`] retries. A
    /// transport failure on a **pooled** connection — typically a
    /// server-side close while the connection idled — first gets one
    /// immediate free redial: staleness is pool bookkeeping, not server
    /// failure, so it costs neither budget nor backoff.
    fn with_conn<T>(
        &self,
        idempotent: bool,
        op: impl Fn(&Self, &mut TcpStream) -> Result<T, OpError>,
    ) -> Result<T, RecoilError> {
        let budget = if idempotent {
            self.config.retry_budget
        } else {
            0
        };
        let mut spent = 0u32;
        let mut free_redial = idempotent;
        loop {
            // (error, server's retry-after hint, whether a pooled conn died)
            let (err, hint, pool_death) = match self.checkout() {
                Err(e) => (e, None, false),
                Ok((mut conn, from_pool)) => match op(self, &mut conn) {
                    Ok(v) => {
                        self.checkin(conn);
                        return Ok(v);
                    }
                    Err(OpError::Remote(e)) => {
                        self.checkin(conn); // the ERROR frame was a complete response
                        match e {
                            RecoilError::Busy { retry_after_ms } if idempotent => (
                                RecoilError::busy(retry_after_ms),
                                Some(retry_after_ms),
                                false,
                            ),
                            e => return Err(e),
                        }
                    }
                    Err(OpError::Transport(e)) => {
                        drop(conn); // never pool a connection in an unknown state
                        (e, None, from_pool)
                    }
                },
            };
            if pool_death && free_redial {
                free_redial = false;
                self.note_retry();
                continue;
            }
            if spent >= budget {
                return Err(err);
            }
            spent += 1;
            self.note_retry();
            std::thread::sleep(self.backoff_delay(spent - 1, hint));
        }
    }

    fn note_retry(&self) {
        if self.telemetry.counters_enabled() {
            self.telemetry.counters.retries.bump();
        }
    }

    /// Backoff before retry number `retry` (zero-based): base × 2^retry,
    /// capped, jittered to 50–150%, and never below the server's
    /// retry-after hint when one was given.
    fn backoff_delay(&self, retry: u32, retry_after_ms: Option<u32>) -> Duration {
        let exp = self
            .config
            .retry_base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.config.retry_max_backoff);
        let draw = splitmix64(self.jitter_state.fetch_add(1, Ordering::Relaxed));
        let jittered = exp.mul_f64(0.5 + draw as f64 / (u64::MAX as f64));
        match retry_after_ms {
            Some(ms) => jittered.max(Duration::from_millis(u64::from(ms))),
            None => jittered,
        }
    }

    /// Blocks until a non-idle frame arrives (bounded by
    /// `response_timeout`); `Error` frames come back as
    /// [`OpError::Remote`] carrying the decoded [`RecoilError`], anything
    /// that breaks the transport as [`OpError::Transport`].
    fn await_frame(&self, conn: &mut TcpStream) -> Result<(FrameType, Vec<u8>), OpError> {
        await_frame_on(conn, self.config.response_timeout)
    }

    /// Rejects names the u16 length prefix cannot carry, before any bytes
    /// hit the wire.
    fn check_name(name: &str) -> Result<(), RecoilError> {
        if name.len() > u16::MAX as usize {
            return Err(RecoilError::config(
                "name",
                format!(
                    "content name is {} bytes; the wire format caps it at {}",
                    name.len(),
                    u16::MAX
                ),
            ));
        }
        Ok(())
    }

    /// Publishes `data` under `name` on the remote server (the server
    /// encodes). Not retried: a publish is not idempotent.
    pub fn publish(
        &self,
        name: &str,
        data: &[u8],
        config: &EncoderConfig,
    ) -> Result<PublishOk, RecoilError> {
        Self::check_name(name)?;
        // One payload buffer, encoded straight from the borrowed slices.
        let payload = encode_publish(
            name,
            config.ways,
            config.max_segments,
            config.quant_bits,
            data,
        );
        if payload.len() as u64 > MAX_FRAME_LEN as u64 {
            return Err(RecoilError::config(
                "data",
                format!(
                    "publish payload is {} bytes; one frame carries at most {MAX_FRAME_LEN}",
                    payload.len()
                ),
            ));
        }
        self.with_conn(false, move |client, conn| {
            write_frame(conn, FrameType::Publish, &payload).map_err(OpError::Transport)?;
            let (ty, reply) = client.await_frame(conn)?;
            if ty != FrameType::PublishOk {
                return Err(OpError::Transport(RecoilError::net(format!(
                    "expected PUBLISH_OK, got {ty:?}"
                ))));
            }
            PublishOk::decode(&reply).map_err(OpError::Transport)
        })
    }

    /// Requests `name` for a decoder with `parallel_segments` capacity and
    /// receives the full chunked response.
    pub fn request(
        &self,
        name: &str,
        parallel_segments: u64,
    ) -> Result<RemoteContent, RecoilError> {
        Self::check_name(name)?;
        let msg = ContentRequest {
            name: name.to_string(),
            parallel_segments,
        };
        self.with_conn(true, move |client, conn| {
            write_frame(conn, FrameType::Request, &msg.encode()).map_err(OpError::Transport)?;
            let (ty, payload) = client.await_frame(conn)?;
            if ty != FrameType::Transmit {
                return Err(OpError::Transport(RecoilError::net(format!(
                    "expected TRANSMIT, got {ty:?}"
                ))));
            }
            let header = TransmitHeader::decode(&payload).map_err(OpError::Transport)?;
            client.receive_content(conn, header)
        })
    }

    /// One call from name to decoded bytes: remote request, integrity
    /// check, then a local parallel decode through the configured backend.
    pub fn fetch_and_decode(
        &self,
        name: &str,
        parallel_segments: u64,
    ) -> Result<Vec<u8>, RecoilError> {
        self.request(name, parallel_segments)?
            .decode_with(self.backend.as_ref())
    }

    /// Remote serving counters.
    pub fn stats(&self) -> Result<StatsReply, RecoilError> {
        self.with_conn(true, |client, conn| {
            write_frame(conn, FrameType::Stats, &[]).map_err(OpError::Transport)?;
            let (ty, payload) = client.await_frame(conn)?;
            if ty != FrameType::StatsReply {
                return Err(OpError::Transport(RecoilError::net(format!(
                    "expected STATS_REPLY, got {ty:?}"
                ))));
            }
            StatsReply::decode(&payload).map_err(OpError::Transport)
        })
    }

    /// Drains the chunked word payload and rebuilds validated decode
    /// inputs. Any failure here is a transport error: frames were consumed
    /// or corrupt, so the connection is not reusable.
    fn receive_content(
        &self,
        conn: &mut TcpStream,
        header: TransmitHeader,
    ) -> Result<RemoteContent, OpError> {
        self.receive_content_inner(conn, header)
            .map_err(|e| match e {
                // A mid-stream ERROR frame still means desynchronized
                // framing for this op (some chunks may remain unread).
                OpError::Remote(e) | OpError::Transport(e) => OpError::Transport(e),
            })
    }

    fn receive_content_inner(
        &self,
        conn: &mut TcpStream,
        header: TransmitHeader,
    ) -> Result<RemoteContent, OpError> {
        let bad = |msg: String| OpError::Transport(RecoilError::net(msg));
        let (model, metadata) = validate_transmit_header(&header).map_err(OpError::Transport)?;

        // The reservation is capped: `word_bytes` is attacker-controlled,
        // so growth beyond 1 MiB only happens as real chunk bytes arrive
        // (each bounded by the frame cap and the declared total).
        let mut word_le = Vec::with_capacity((header.word_bytes as usize).min(1 << 20));
        let mut crc_state = 0xFFFF_FFFFu32;
        for seq in 0..header.chunk_count {
            let body = self.await_chunk(conn, seq)?;
            if word_le.len() + body.len() > header.word_bytes as usize {
                return Err(bad("chunked payload overruns declared size".into()));
            }
            crc_state = update_crc32(crc_state, &body);
            word_le.extend_from_slice(&body);
        }
        if word_le.len() != header.word_bytes as usize {
            return Err(bad(format!(
                "chunked payload short: {} of {} bytes",
                word_le.len(),
                header.word_bytes
            )));
        }
        if crc_state ^ 0xFFFF_FFFF != header.payload_crc {
            return Err(bad("bitstream payload checksum mismatch".into()));
        }

        let stream = EncodedStream {
            words: word_le
                .chunks_exact(2)
                .map(|b| u16::from_le_bytes(b.try_into().expect("2")))
                .collect(),
            final_states: header.final_states.clone(),
            num_symbols: header.num_symbols,
            ways: header.ways,
        };
        stream
            .validate()
            .map_err(|e| bad(format!("received stream is inconsistent: {e}")))?;
        metadata
            .validate_against(&stream)
            .map_err(|e| bad(format!("received metadata is inconsistent: {e}")))?;

        Ok(RemoteContent {
            stream,
            metadata,
            metadata_bytes: header.metadata,
            model,
            segments: header.segments,
            cache_hit: header.cache_hit,
            combine_nanos: header.combine_nanos,
        })
    }

    /// Reads one CHUNK frame, checks its sequence number, and returns the
    /// body with the 4-byte sequence prefix stripped (zero-copy tail
    /// split).
    fn await_chunk(&self, conn: &mut TcpStream, seq: u32) -> Result<Vec<u8>, OpError> {
        await_chunk_on(conn, self.config.response_timeout, seq)
    }

    /// One call from name to decoded bytes with the network transfer and
    /// the decode **overlapped**: chunks feed an [`IncrementalDecoder`] as
    /// they arrive, and every segment that becomes resident is dispatched
    /// to the configured backend (whose thread pool, if any, decodes the
    /// batch in parallel) while later chunks are still on the wire.
    ///
    /// The pipeline is two stages under a bounded in-flight budget
    /// ([`NetClientConfig::streaming_inflight_chunks`]): the calling thread
    /// receives and CRC-checks chunks, a scoped decoder thread drains them.
    /// When the decoder falls behind, the receive loop blocks on the full
    /// channel — backpressure, not unbounded buffering. The result is
    /// byte-identical to [`NetClient::fetch_and_decode`]; the streaming CRC
    /// over the reassembled payload is still verified, and the call fails
    /// (discarding output) if it mismatches.
    pub fn fetch_and_decode_streaming(
        &self,
        name: &str,
        parallel_segments: u64,
    ) -> Result<StreamedFetch, RecoilError> {
        Self::check_name(name)?;
        let msg = ContentRequest {
            name: name.to_string(),
            parallel_segments,
        };
        self.with_conn(true, move |client, conn| {
            let t0 = Instant::now();
            write_frame(conn, FrameType::Request, &msg.encode()).map_err(OpError::Transport)?;
            let (ty, payload) = client.await_frame(conn)?;
            if ty != FrameType::Transmit {
                return Err(OpError::Transport(RecoilError::net(format!(
                    "expected TRANSMIT, got {ty:?}"
                ))));
            }
            let header = TransmitHeader::decode(&payload).map_err(OpError::Transport)?;
            client
                .receive_streaming(conn, header, t0)
                .map_err(|e| match e {
                    // Mid-stream failures leave unread chunks on the wire:
                    // the connection is desynchronized either way.
                    OpError::Remote(e) | OpError::Transport(e) => OpError::Transport(e),
                })
        })
    }

    /// The streaming receive/decode pipeline behind
    /// [`NetClient::fetch_and_decode_streaming`].
    fn receive_streaming(
        &self,
        conn: &mut TcpStream,
        header: TransmitHeader,
        t0: Instant,
    ) -> Result<StreamedFetch, OpError> {
        let bad = |msg: String| OpError::Transport(RecoilError::net(msg));
        let (model, metadata) = validate_transmit_header(&header).map_err(OpError::Transport)?;
        // Same accounting as `RemoteContent::total_bytes` /
        // `EncodedStream::payload_bytes`: words + final states + fixed
        // stream header, plus the metadata blob.
        let total_bytes = header.word_bytes
            + header.final_states.len() as u64 * 4
            + EncodedStream::HEADER_BYTES
            + header.metadata.len() as u64;
        let incr = IncrementalDecoder::new(metadata, header.final_states.clone(), model)
            .map_err(OpError::Transport)?;
        let backend = self.backend.as_ref();
        if !backend.is_available() {
            return Err(OpError::Transport(RecoilError::BackendUnavailable {
                backend: backend.name(),
            }));
        }

        /// How the receive loop ended when it did not fail outright.
        enum RecvEnd {
            /// Every chunk arrived and the payload CRC verified.
            Complete { transfer_nanos: u64 },
            /// The decoder hung up mid-transfer (its error is authoritative).
            DecoderClosed,
        }

        let budget = self.config.streaming_inflight_chunks.max(1);
        let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(budget);
        let (recv_result, decode_result) = std::thread::scope(|s| {
            let decoder = s.spawn(move || -> Result<(Vec<u8>, u64, u64), RecoilError> {
                let mut incr = incr;
                // Grown with readiness, never from the declared header: a
                // hostile server must actually send bytes to make this
                // allocation happen (the buffered path's invariant).
                let mut out: Vec<u8> = Vec::new();
                let mut first: Option<u64> = None;
                let mut batches = 0u64;
                let mut drain =
                    |incr: &mut IncrementalDecoder, out: &mut Vec<u8>| -> Result<(), RecoilError> {
                        let need = incr.ready_symbols();
                        if need > out.len() {
                            out.resize(need, 0);
                        }
                        let before = incr.decoded_segments();
                        incr.decode_ready_segments(backend, out)?;
                        if incr.decoded_segments() > before {
                            batches += 1;
                            if first.is_none() {
                                first = Some(t0.elapsed().as_nanos() as u64);
                            }
                        }
                        Ok(())
                    };
                while let Ok(body) = rx.recv() {
                    incr.push_bytes(&body)?;
                    drain(&mut incr, &mut out)?;
                }
                // Sender dropped: the transfer finished (possibly with zero
                // chunks for an empty stream) or the receive loop failed.
                drain(&mut incr, &mut out)?;
                if !incr.is_finished() {
                    return Err(RecoilError::net(
                        "bitstream transfer ended before every segment arrived",
                    ));
                }
                Ok((
                    out,
                    first.unwrap_or_else(|| t0.elapsed().as_nanos() as u64),
                    batches,
                ))
            });

            let recv = (|| -> Result<RecvEnd, OpError> {
                let mut crc_state = 0xFFFF_FFFFu32;
                let mut received = 0u64;
                for seq in 0..header.chunk_count {
                    let body = self.await_chunk(conn, seq)?;
                    received += body.len() as u64;
                    if received > header.word_bytes {
                        return Err(bad("chunked payload overruns declared size".into()));
                    }
                    crc_state = update_crc32(crc_state, &body);
                    if tx.send(body).is_err() {
                        return Ok(RecvEnd::DecoderClosed);
                    }
                }
                if received != header.word_bytes {
                    return Err(bad(format!(
                        "chunked payload short: {received} of {} bytes",
                        header.word_bytes
                    )));
                }
                if crc_state ^ 0xFFFF_FFFF != header.payload_crc {
                    return Err(bad("bitstream payload checksum mismatch".into()));
                }
                Ok(RecvEnd::Complete {
                    transfer_nanos: t0.elapsed().as_nanos() as u64,
                })
            })();
            drop(tx); // unblock the decoder's recv loop
            let decode = decoder
                .join()
                .unwrap_or_else(|_| Err(RecoilError::net("streaming decoder thread panicked")));
            (recv, decode)
        });

        match (recv_result, decode_result) {
            // A real transport failure outranks the decoder's secondary
            // "transfer ended early" complaint.
            (Err(e), _) => Err(e),
            // The receive loop stopped because the decoder hit an error;
            // that error is the root cause.
            (Ok(RecvEnd::DecoderClosed), Err(e)) => Err(OpError::Transport(e)),
            (Ok(RecvEnd::DecoderClosed), Ok(_)) => {
                Err(bad("decoder hung up without reporting an error".into()))
            }
            (Ok(RecvEnd::Complete { .. }), Err(e)) => Err(OpError::Transport(e)),
            (Ok(RecvEnd::Complete { transfer_nanos }), Ok((data, first, batches))) => {
                let total_nanos = t0.elapsed().as_nanos() as u64;
                if self.telemetry.counters_enabled() {
                    let h = &self.telemetry.hists;
                    h.stream_first_segment_ns.record(first);
                    h.stream_transfer_ns.record(transfer_nanos);
                    h.stream_total_ns.record(total_nanos);
                    self.telemetry.trace(Stage::StreamFirstSegment, 0, first);
                }
                Ok(StreamedFetch {
                    data,
                    segments: header.segments,
                    cache_hit: header.cache_hit,
                    combine_nanos: header.combine_nanos,
                    total_bytes,
                    chunk_count: header.chunk_count,
                    decode_batches: batches,
                    first_segment_nanos: first,
                    transfer_nanos,
                    total_nanos,
                })
            }
        }
    }

    /// Opens a **dedicated** (never pooled) connection and starts a
    /// chunked fetch of `name`, resuming after the first `from_word`
    /// complete words when non-zero (requires the server to have
    /// negotiated [`CAP_RESUME`]). No retry policy applies: the caller
    /// owns failure handling — this is the primitive the fabric router
    /// builds mid-stream failover on, so a died session must surface
    /// immediately with its partial state still in the caller's hands.
    pub fn start_fetch(
        &self,
        name: &str,
        parallel_segments: u64,
        from_word: u64,
    ) -> Result<FetchSession, RecoilError> {
        Self::check_name(name)?;
        let mut conn = self.dial()?;
        if from_word > 0 && self.server_caps.load(Ordering::Relaxed) & CAP_RESUME == 0 {
            return Err(RecoilError::net(
                "server did not negotiate the resume capability",
            ));
        }
        let (ty, body) = if from_word > 0 {
            let msg = ResumeRequest {
                name: name.to_string(),
                parallel_segments,
                from_word,
            };
            (FrameType::Resume, msg.encode())
        } else {
            let msg = ContentRequest {
                name: name.to_string(),
                parallel_segments,
            };
            (FrameType::Request, msg.encode())
        };
        write_frame(&mut conn, ty, &body)?;
        let (rty, payload) = self.await_frame(&mut conn).map_err(OpError::into_inner)?;
        if rty != FrameType::Transmit {
            return Err(RecoilError::net(format!("expected TRANSMIT, got {rty:?}")));
        }
        let header = TransmitHeader::decode(&payload)?;
        let (model, metadata) = validate_transmit_header(&header)?;
        Ok(FetchSession {
            conn,
            response_timeout: self.config.response_timeout,
            header,
            model,
            metadata,
            next_seq: 0,
        })
    }
}

/// A low-level chunked fetch in progress on its own dedicated connection —
/// the building block failover is driven with. [`NetClient::start_fetch`]
/// sends REQUEST (or RESUME for `from_word > 0`) and validates the
/// TRANSMIT header; the caller then pulls chunk bodies one at a time and
/// feeds them wherever it likes (typically an
/// [`IncrementalDecoder`](recoil_core::IncrementalDecoder)), keeping
/// enough state — words received so far — to resume on another node if
/// this connection dies mid-stream.
pub struct FetchSession {
    conn: TcpStream,
    response_timeout: Duration,
    /// The validated TRANSMIT header. On a resumed serve it still carries
    /// **whole-stream** geometry and payload CRC (for cross-checking
    /// against the pre-failure header); only `chunk_count` is trimmed to
    /// the remaining words.
    pub header: TransmitHeader,
    /// The static model rebuilt from the transmitted frequencies.
    pub model: StaticModelProvider,
    /// Parsed shrunk metadata for the requested capacity.
    pub metadata: RecoilMetadata,
    next_seq: u32,
}

impl FetchSession {
    /// CHUNK frames this session has not received yet.
    pub fn remaining_chunks(&self) -> u32 {
        self.header.chunk_count - self.next_seq
    }

    /// Receives the next CHUNK body (sequence-checked, 4-byte prefix
    /// stripped). Call until [`FetchSession::remaining_chunks`] is zero.
    pub fn next_chunk(&mut self) -> Result<Vec<u8>, RecoilError> {
        let body = await_chunk_on(&mut self.conn, self.response_timeout, self.next_seq)
            .map_err(OpError::into_inner)?;
        self.next_seq += 1;
        Ok(body)
    }
}

impl std::fmt::Debug for FetchSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchSession")
            .field("chunks", &self.header.chunk_count)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

/// The free-function core of [`NetClient::await_frame`], shared with
/// [`FetchSession`] (which outlives the client call that opened it).
fn await_frame_on(
    conn: &mut TcpStream,
    response_timeout: Duration,
) -> Result<(FrameType, Vec<u8>), OpError> {
    let start = Instant::now();
    loop {
        match read_frame(conn).map_err(OpError::Transport)? {
            ReadOutcome::Frame(FrameType::Error, payload) => {
                return Err(OpError::Remote(decode_error(&payload)))
            }
            ReadOutcome::Frame(ty, payload) => return Ok((ty, payload)),
            ReadOutcome::Eof => {
                return Err(OpError::Transport(RecoilError::net(
                    "server closed the connection",
                )))
            }
            ReadOutcome::Idle => {
                if start.elapsed() > response_timeout {
                    return Err(OpError::Transport(RecoilError::net(
                        "timed out waiting for server response",
                    )));
                }
            }
        }
    }
}

/// The free-function core of [`NetClient::await_chunk`], shared with
/// [`FetchSession`].
fn await_chunk_on(
    conn: &mut TcpStream,
    response_timeout: Duration,
    seq: u32,
) -> Result<Vec<u8>, OpError> {
    let bad = |msg: String| OpError::Transport(RecoilError::net(msg));
    let (ty, mut payload) = await_frame_on(conn, response_timeout)?;
    if ty != FrameType::Chunk {
        return Err(bad(format!("expected CHUNK, got {ty:?}")));
    }
    if payload.len() < 4 {
        return Err(bad("chunk frame too short".into()));
    }
    let got_seq = u32::from_le_bytes(payload[..4].try_into().expect("4"));
    if got_seq != seq {
        return Err(bad(format!(
            "chunk sequence mismatch: expected {seq}, got {got_seq}"
        )));
    }
    Ok(payload.split_off(4))
}

/// Validates a TRANSMIT header before any chunk bytes arrive and returns
/// the rebuilt model plus the parsed shrunk metadata — the shared front
/// half of the buffered and streaming receive paths, public so callers
/// driving [`FetchSession`]-level resume (the fabric router) can
/// cross-check a replica's header against the original.
///
/// The checks mirror the container file parser: an information-capacity
/// bound so a hostile header cannot drive the decode-side allocation, the
/// quantizer invariants on the transmitted frequencies, the metadata's own
/// CRC footer, and the metadata's geometry against the header's.
pub fn validate_transmit_header(
    header: &TransmitHeader,
) -> Result<(StaticModelProvider, RecoilMetadata), RecoilError> {
    let bad = |msg: String| RecoilError::net(msg);
    if !header.word_bytes.is_multiple_of(2) {
        return Err(bad("odd bitstream byte count".into()));
    }
    let n = header.quant_bits;
    if n == 0 || n > 16 {
        return Err(bad(format!("bad quantization level {n}")));
    }
    let min_bits = ((1u64 << n) as f64).log2() - ((1u64 << n) as f64 - 1.0).log2();
    let capacity_bits = 8.0 * header.word_bytes as f64 + 16.0 * header.ways as f64;
    if header.num_symbols as f64 * min_bits > capacity_bits * 1.001 + 64.0 {
        return Err(bad(format!(
            "symbol count {} impossible for {} bitstream bytes",
            header.num_symbols, header.word_bytes
        )));
    }

    // Model reconstruction with the container parser's invariants.
    let freqs: Vec<u32> = header.freqs.iter().map(|&f| f as u32).collect();
    if freqs.is_empty() {
        return Err(bad("empty model frequency table".into()));
    }
    let sum: u64 = freqs.iter().map(|&f| f as u64).sum();
    if sum != 1 << n {
        return Err(bad(format!(
            "model frequencies sum to {sum}, expected 2^{n}"
        )));
    }
    if freqs.iter().any(|&f| (f as u64) >= (1u64 << n)) {
        return Err(bad("model frequency reaches 2^n".into()));
    }
    let model = StaticModelProvider::new(CdfTable::from_freqs(freqs, n));

    // Metadata bytes carry their own CRC footer; this parses + checks.
    let metadata = metadata_from_bytes(&header.metadata)?;
    if metadata.ways != header.ways
        || metadata.num_symbols != header.num_symbols
        || metadata.num_words * 2 != header.word_bytes
    {
        return Err(bad(format!(
            "metadata (W={}, N={}, B={}) does not match the transmit header \
             (W={}, N={}, B={})",
            metadata.ways,
            metadata.num_symbols,
            metadata.num_words,
            header.ways,
            header.num_symbols,
            header.word_bytes / 2
        )));
    }
    Ok((model, metadata))
}

impl std::fmt::Debug for NetClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetClient")
            .field("addr", &self.addr)
            .field("pooled", &self.pooled_connections())
            .field("backend", &self.backend.name())
            .finish()
    }
}
