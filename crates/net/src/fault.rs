//! Deterministic fault injection for chaos testing the serve pipeline.
//!
//! A [`FaultPlan`] describes *server-side* misbehavior and is threaded
//! through [`crate::NetConfig::fault_plan`]: the reactor consults it at
//! its accept and write hooks, so a faulted node misbehaves identically
//! on every run — no clocks, no global randomness. Seeded constructors
//! derive their offsets from a caller-supplied seed with splitmix64, so
//! a chaos suite can sweep fault points reproducibly.
//!
//! Client-observed faults (accept-then-RST relays, stalled proxies) live
//! in the fabric crate's chaos proxy; this type covers what only the
//! serving node itself can do: die mid-stream, dribble its writes, and
//! tear frames across arbitrary syscall boundaries.

use std::time::Duration;

/// Deterministic server-side fault schedule. `Default` is a no-fault plan;
/// every field composes independently.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Accept incoming connections and immediately drop them without a
    /// HELLO. The peer has usually already written its HELLO, so the close
    /// lands as an RST (close-with-unread-data), not a graceful FIN.
    pub rst_on_accept: bool,
    /// Abruptly sever each connection once it has written this many
    /// response bytes — no ERROR frame, no drain. From the client's side
    /// the node dies mid-stream (typically mid-CHUNK), which is the
    /// failover trigger the fabric router recovers from.
    pub kill_after_write_bytes: Option<u64>,
    /// Sleep this long before every write syscall. Combined with
    /// [`FaultPlan::torn_write_bytes`] this turns a response into a
    /// mid-frame dribble — the slow-peer shape clients must tolerate.
    pub write_delay: Option<Duration>,
    /// Cap each write syscall to this many bytes, tearing CHUNK frames
    /// (and everything else) across arbitrary boundaries. Exercises the
    /// client's partial-frame reassembly; zero is treated as one.
    pub torn_write_bytes: Option<usize>,
}

impl FaultPlan {
    /// A node that dies after writing exactly `bytes` response bytes.
    pub fn kill_at(bytes: u64) -> Self {
        Self {
            kill_after_write_bytes: Some(bytes),
            ..Self::default()
        }
    }

    /// A node that dies at a seed-derived write offset in
    /// `lo..=hi` — the chaos suite's "kill somewhere mid-transfer".
    pub fn seeded_kill(seed: u64, lo: u64, hi: u64) -> Self {
        let span = hi.saturating_sub(lo).saturating_add(1);
        Self::kill_at(lo + splitmix64(seed) % span.max(1))
    }

    /// A node that accepts and immediately resets every connection.
    pub fn accept_rst() -> Self {
        Self {
            rst_on_accept: true,
            ..Self::default()
        }
    }

    /// A node that writes in `bytes`-sized fragments with `delay` between
    /// them (mid-frame stall + torn boundaries).
    pub fn dribble(bytes: usize, delay: Duration) -> Self {
        Self {
            write_delay: Some(delay),
            torn_write_bytes: Some(bytes),
            ..Self::default()
        }
    }

    /// Whether any fault is armed (a default plan costs nothing per write).
    pub fn is_active(&self) -> bool {
        *self != Self::default()
    }
}

/// The splitmix64 mixer — one deterministic u64 per seed, good enough to
/// spread fault offsets across a sweep without a rand dependency.
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_kill_is_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded_kill(seed, 100, 200);
            let b = FaultPlan::seeded_kill(seed, 100, 200);
            assert_eq!(a, b, "same seed, same plan");
            let at = a.kill_after_write_bytes.unwrap();
            assert!((100..=200).contains(&at), "offset {at} out of range");
        }
        // Different seeds spread across the range.
        let offsets: std::collections::HashSet<u64> = (0..64u64)
            .map(|s| {
                FaultPlan::seeded_kill(s, 0, 1_000_000)
                    .kill_after_write_bytes
                    .unwrap()
            })
            .collect();
        assert!(offsets.len() > 32, "seeds collapse to too few offsets");
    }

    #[test]
    fn default_plan_is_inactive() {
        assert!(!FaultPlan::default().is_active());
        assert!(FaultPlan::kill_at(1).is_active());
        assert!(FaultPlan::accept_rst().is_active());
        assert!(FaultPlan::dribble(3, Duration::from_millis(1)).is_active());
    }
}
