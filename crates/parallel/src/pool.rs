//! The persistent worker pool.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Type-erased job: closure pointer plus the shared index counter.
///
/// The raw pointer is only dereferenced between job publication and the
/// epoch's completion handshake, during which [`ThreadPool::run`] keeps the
/// underlying closure alive on the caller's stack.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    tasks: usize,
}

unsafe impl Send for Job {}

struct State {
    /// Job of the current epoch, if one is in flight.
    job: Option<Job>,
    /// Incremented per published job; workers watch it to wake up.
    epoch: u64,
    /// Workers still executing the current epoch's job.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new epoch (or shutdown) is available.
    work_cv: Condvar,
    /// Signals the caller that all workers finished the epoch.
    done_cv: Condvar,
    /// Next task index of the current epoch.
    next: AtomicUsize,
}

/// Persistent pool executing indexed jobs `f(0..tasks)`.
///
/// One job runs at a time (`run` takes `&self` but serializes internally via
/// a mutex-held epoch; concurrent `run` calls queue up). The caller thread
/// participates in the job, so a pool of `k` workers applies `k + 1` threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serializes `run` calls.
    run_lock: Mutex<()>,
}

impl ThreadPool {
    /// Pool with `workers` background threads (0 = run everything inline).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Self {
            shared,
            handles,
            run_lock: Mutex::new(()),
        }
    }

    /// Pool sized to the machine: one worker per logical CPU minus the
    /// participating caller.
    pub fn with_default_parallelism() -> Self {
        let n = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self::new(n.saturating_sub(1))
    }

    /// Number of threads a job effectively runs on (workers + caller).
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Executes `f` for every index in `0..tasks`, returning when all calls
    /// completed. Indices are claimed dynamically, so uneven tasks balance.
    pub fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        if tasks == 0 {
            return;
        }
        if self.handles.is_empty() || tasks == 1 {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let _serialize = self.run_lock.lock();
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the job pointer is only used by workers between this
        // publication and the `active == 0` handshake below, which `run`
        // waits for before returning — `f` outlives every dereference.
        let job = Job {
            f: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f_ref as *const _)
            },
            tasks,
        };
        {
            let mut st = self.shared.state.lock();
            debug_assert!(st.job.is_none() && st.active == 0);
            self.shared.next.store(0, Ordering::Relaxed);
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.handles.len();
            self.shared.work_cv.notify_all();
        }
        // The caller claims indices like any worker.
        loop {
            let i = self.shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            f(i);
        }
        // Wait for every worker to leave the epoch before dropping `f`.
        let mut st = self.shared.state.lock();
        while st.active > 0 {
            self.shared.done_cv.wait(&mut st);
        }
        st.job = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch advanced without a job");
                }
                shared.work_cv.wait(&mut st);
            }
        };
        // SAFETY: see `ThreadPool::run` — the closure outlives this epoch.
        let f = unsafe { &*job.f };
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.tasks {
                break;
            }
            f(i);
        }
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn visits_every_index_exactly_once() {
        let pool = ThreadPool::new(7);
        for tasks in [1usize, 2, 7, 8, 100, 5000] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(tasks, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "tasks={tasks}"
            );
        }
    }

    #[test]
    fn borrows_stack_data() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        pool.run(data.len(), |i| {
            sum.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = ThreadPool::new(0);
        let mut touched = vec![false; 10];
        let cell = std::sync::Mutex::new(&mut touched);
        pool.run(10, |i| {
            cell.lock().unwrap()[i] = true;
        });
        assert!(touched.iter().all(|&t| t));
    }

    #[test]
    fn sequential_runs_reuse_workers() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(17, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 17);
    }

    #[test]
    fn concurrent_run_calls_serialize() {
        let pool = std::sync::Arc::new(ThreadPool::new(4));
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..10 {
                        pool.run(100, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 10 * 100);
    }

    #[test]
    fn uneven_work_balances() {
        // A few heavy tasks among many light ones must not deadlock or drop.
        let pool = ThreadPool::new(8);
        let done = AtomicUsize::new(0);
        pool.run(256, |i| {
            if i % 64 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(4);
        pool.run(8, |_| {});
        drop(pool); // must not hang
    }
}
