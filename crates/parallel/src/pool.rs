//! The persistent worker pool.

use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A captured panic payload from a job closure.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Type-erased job: closure pointer plus the shared index counter.
///
/// The raw pointer is only dereferenced between job publication and the
/// epoch's completion handshake, during which [`ThreadPool::run`] keeps the
/// underlying closure alive on the caller's stack.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    tasks: usize,
}

// SAFETY: `Job` is a raw pointer plus a count. Sending it to workers is
// sound because the pointee is `Sync` (so `&closure` may be shared and
// called across threads) and [`ThreadPool::run`] keeps that closure alive
// on the caller's stack until the epoch's `active == 0` handshake — no
// worker can dereference `f` after it is freed.
unsafe impl Send for Job {}

struct State {
    /// Job of the current epoch, if one is in flight.
    job: Option<Job>,
    /// Incremented per published job; workers watch it to wake up.
    epoch: u64,
    /// Workers still executing the current epoch's job.
    active: usize,
    /// First panic any thread caught while running the current epoch's job;
    /// re-thrown on the caller thread by [`ThreadPool::run`].
    panic: Option<PanicPayload>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new epoch (or shutdown) is available.
    work_cv: Condvar,
    /// Signals the caller that all workers finished the epoch.
    done_cv: Condvar,
    /// Next task index of the current epoch.
    next: AtomicUsize,
}

/// Persistent pool executing indexed jobs `f(0..tasks)`.
///
/// One job runs at a time (`run` takes `&self` but serializes internally via
/// a mutex-held epoch; concurrent `run` calls queue up). The caller thread
/// participates in the job, so a pool of `k` workers applies `k + 1` threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serializes `run` calls.
    run_lock: Mutex<()>,
}

impl ThreadPool {
    /// Pool with `workers` background threads (0 = run everything inline).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Self {
            shared,
            handles,
            run_lock: Mutex::new(()),
        }
    }

    /// Pool sized to the machine: one worker per logical CPU minus the
    /// participating caller.
    pub fn with_default_parallelism() -> Self {
        let n = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self::new(n.saturating_sub(1))
    }

    /// Number of threads a job effectively runs on (workers + caller).
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Executes `f` for every index in `0..tasks`, returning when all calls
    /// completed. Indices are claimed dynamically, so uneven tasks balance.
    ///
    /// # Panics
    ///
    /// If `f` panics on any thread, the first caught panic is re-thrown here
    /// on the caller thread once every worker has left the epoch — the pool
    /// itself stays fully usable. Remaining unclaimed indices of the
    /// panicked job are abandoned (which of them ran is indeterminate, as
    /// with any panic mid-job).
    pub fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        if tasks == 0 {
            return;
        }
        if self.handles.is_empty() || tasks == 1 {
            // Inline execution: a panic unwinds directly through the caller
            // with no shared state to clean up.
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let _serialize = self.run_lock.lock();
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the job pointer is only used by workers between this
        // publication and the `active == 0` handshake below, which `run`
        // waits for before returning — even when unwinding, since caller
        // panics are caught by `drive` and only re-thrown after the
        // handshake — so `f` outlives every dereference.
        let f_static = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f_ref as *const _)
        };
        let job = Job { f: f_static, tasks };
        {
            let mut st = self.shared.state.lock();
            debug_assert!(st.job.is_none() && st.active == 0);
            debug_assert!(st.panic.is_none());
            self.shared.next.store(0, Ordering::Relaxed);
            st.job = Some(job);
            st.epoch += 1;
            st.active = self.handles.len();
            self.shared.work_cv.notify_all();
        }
        // The caller claims indices like any worker.
        drive(&self.shared, f_ref, tasks);
        // Wait for every worker to leave the epoch before dropping `f`.
        let mut st = self.shared.state.lock();
        while st.active > 0 {
            self.shared.done_cv.wait(&mut st);
        }
        st.job = None;
        let panic = st.panic.take();
        drop(st);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

/// Claims and executes indices of the current job until they are exhausted
/// or the closure panics. A panic is caught (`AssertUnwindSafe` is sound
/// here: the closure is not called again after a panic, and `run` keeps it
/// alive until the epoch handshake completes), the first payload is parked
/// in the shared state for `run` to re-throw, and the claim counter is
/// fast-forwarded so every thread drains the epoch quickly instead of
/// grinding through doomed work.
fn drive(shared: &Shared, f: &(dyn Fn(usize) + Sync), tasks: usize) {
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= tasks {
            return;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
            shared.next.store(tasks, Ordering::Relaxed);
            let mut st = shared.state.lock();
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
            return;
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch advanced without a job");
                }
                shared.work_cv.wait(&mut st);
            }
        };
        // SAFETY: see `ThreadPool::run` — the closure outlives this epoch.
        let f = unsafe { &*job.f };
        // `drive` catches job panics, so this decrement always runs: a
        // worker unwinding past it would leave `active` stuck above zero
        // and `run` waiting on `done_cv` forever.
        drive(&shared, f, job.tasks);
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn visits_every_index_exactly_once() {
        let pool = ThreadPool::new(7);
        for tasks in [1usize, 2, 7, 8, 100, 5000] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(tasks, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "tasks={tasks}"
            );
        }
    }

    #[test]
    fn borrows_stack_data() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        pool.run(data.len(), |i| {
            sum.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = ThreadPool::new(0);
        let mut touched = vec![false; 10];
        let cell = std::sync::Mutex::new(&mut touched);
        pool.run(10, |i| {
            cell.lock().unwrap()[i] = true;
        });
        assert!(touched.iter().all(|&t| t));
    }

    #[test]
    fn sequential_runs_reuse_workers() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(17, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 17);
    }

    #[test]
    fn concurrent_run_calls_serialize() {
        let pool = std::sync::Arc::new(ThreadPool::new(4));
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                let total = std::sync::Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..10 {
                        pool.run(100, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 10 * 100);
    }

    #[test]
    fn uneven_work_balances() {
        // A few heavy tasks among many light ones must not deadlock or drop.
        let pool = ThreadPool::new(8);
        let done = AtomicUsize::new(0);
        pool.run(256, |i| {
            if i % 64 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(4);
        pool.run(8, |_| {});
        drop(pool); // must not hang
    }

    /// Runs `f` expecting a panic, returning the payload string if any.
    fn expect_panic(f: impl FnOnce()) -> Option<String> {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the backtrace spam
        let result = std::panic::catch_unwind(AssertUnwindSafe(f));
        std::panic::set_hook(prev);
        result.err().map(|p| {
            p.downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_default()
        })
    }

    #[test]
    fn panicking_job_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        for k in [0usize, 1, 63, 127] {
            let msg = expect_panic(|| {
                pool.run(128, |i| {
                    if i == k {
                        panic!("job failed at {i}");
                    }
                });
            });
            assert_eq!(msg.as_deref(), Some(format!("job failed at {k}").as_str()));
            // The regression this guards: before the catch_unwind hardening,
            // the next `run` (or the panicking one) hung forever because the
            // unwound worker never decremented `State::active`.
            let done = AtomicUsize::new(0);
            pool.run(64, |_| {
                done.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(done.load(Ordering::Relaxed), 64);
        }
    }

    #[test]
    fn every_thread_panicking_still_terminates() {
        let pool = ThreadPool::new(3);
        let msg = expect_panic(|| pool.run(100, |_| panic!("all fail")));
        assert_eq!(msg.as_deref(), Some("all fail"));
        let total = AtomicUsize::new(0);
        pool.run(10, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn inline_path_panics_propagate_too() {
        // Zero-worker pools run inline; the panic must still surface and the
        // pool must stay usable.
        let pool = ThreadPool::new(0);
        let msg = expect_panic(|| pool.run(5, |i| assert!(i != 3, "inline boom")));
        assert!(msg.unwrap().contains("inline boom"));
        let total = AtomicUsize::new(0);
        pool.run(5, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn drop_after_panic_joins_workers() {
        let pool = ThreadPool::new(4);
        let _ = expect_panic(|| pool.run(32, |_| panic!("boom")));
        drop(pool); // workers must still shut down cleanly
    }
}
