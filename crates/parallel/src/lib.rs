//! A small persistent thread pool with scoped jobs.
//!
//! Recoil decoding is embarrassingly parallel across splits (each split
//! thread owns disjoint output and only shares the read-only bitstream), but
//! benchmark loops dispatch thousands of tiny tasks per decode — e.g. the
//! paper's Large variation uses 2176 splits (§5.1). Spawning OS threads per
//! decode would dominate the measurement, so the pool keeps workers parked
//! and hands them an index-claiming job; the caller participates too and
//! blocks until every worker has finished, which is what makes borrowing
//! stack data from the job closure sound.
//!
//! `rayon` is not available in this environment; this is the minimal subset
//! the workspace needs (dynamic index claiming ≈ `par_iter` over `0..n`).

// Audited unsafe crate: every unsafe operation sits in an explicit block.
#![deny(unsafe_op_in_unsafe_fn)]

mod pool;

pub use pool::ThreadPool;

/// Runs `f(0..tasks)` on a freshly scoped set of `threads` OS threads using
/// dynamic index claiming — the no-pool fallback, also used to cross-check
/// the pool in tests.
pub fn scoped_parallel_for<F: Fn(usize) + Sync>(threads: usize, tasks: usize, f: F) {
    if threads <= 1 || tasks <= 1 {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    std::thread::scope(|s| {
        for _ in 0..threads.min(tasks) {
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                f(i);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_for_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        scoped_parallel_for(8, 1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn scoped_for_serial_fallback() {
        let hits: Vec<AtomicUsize> = (0..10).map(|_| AtomicUsize::new(0)).collect();
        scoped_parallel_for(1, 10, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn scoped_for_zero_tasks() {
        scoped_parallel_for(4, 0, |_| panic!("must not run"));
    }
}
