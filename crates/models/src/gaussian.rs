//! Adaptive "hyperprior" models for 16-bit latents (paper §5.1).
//!
//! The paper's div2k experiments push DIV2K images through the mbt2018-mean
//! learned codec and entropy-code the resulting 16-bit latents, "adaptively
//! model[ing] each symbol with different Gaussian distributions using
//! hyperpriors". We reproduce the coding-side structure without the neural
//! network: every symbol position carries a [`LatentSpec`] — a mean and a
//! quantized scale index — and a shared [`GaussianScaleBank`] holds one
//! quantized CDF (plus decode LUT) per scale, exactly like the
//! scale-quantized Gaussian conditionals of hyperprior codecs.
//!
//! Distributions live on a window of `window` values centred on the mean;
//! the data generator clamps samples into the window, mirroring the bounded
//! latent ranges of real learned codecs.

use crate::provider::ModelProvider;
use crate::quantize_counts;

/// Per-position model selector: mean value and index into the scale bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatentSpec {
    /// Centre of the Gaussian in the 16-bit symbol space.
    pub mean: u16,
    /// Index into [`GaussianScaleBank::scales`].
    pub scale_idx: u8,
}

/// One quantized Gaussian: frequencies over the window plus decode LUT.
#[derive(Debug, Clone)]
struct ScaleTable {
    /// `freq << 16 | cdf` per window offset.
    ff: Vec<u32>,
    /// Slot (`0..2^n`) → window offset.
    inv: Vec<u16>,
}

/// Bank of quantized zero-centred Gaussians at geometrically spaced scales.
#[derive(Debug, Clone)]
pub struct GaussianScaleBank {
    n: u32,
    window: usize,
    half: u16,
    scales: Vec<f64>,
    tables: Vec<ScaleTable>,
}

impl GaussianScaleBank {
    /// Builds a bank with `num_scales` scales geometrically spaced over
    /// `[min_scale, max_scale]`, quantized to level `n` on a window of
    /// `window` values (power of two, `window <= 2^n`).
    pub fn build(n: u32, window: usize, num_scales: usize, min_scale: f64, max_scale: f64) -> Self {
        assert!((1..=16).contains(&n));
        assert!(window.is_power_of_two() && window <= 1 << n);
        assert!((1..=256).contains(&num_scales));
        assert!(min_scale > 0.0 && max_scale >= min_scale);
        let scales: Vec<f64> = (0..num_scales)
            .map(|i| {
                if num_scales == 1 {
                    min_scale
                } else {
                    let t = i as f64 / (num_scales - 1) as f64;
                    min_scale * (max_scale / min_scale).powf(t)
                }
            })
            .collect();
        let half = (window / 2) as u16;
        let tables = scales
            .iter()
            .map(|&sigma| Self::build_scale_table(n, window, half, sigma))
            .collect();
        Self {
            n,
            window,
            half,
            scales,
            tables,
        }
    }

    /// Default bank matching the div2k experiments: n=16, 4096-wide window,
    /// 64 scales from 0.4 to 256.
    pub fn default_latent_bank() -> Self {
        Self::build(16, 4096, 64, 0.4, 256.0)
    }

    fn build_scale_table(n: u32, window: usize, half: u16, sigma: f64) -> ScaleTable {
        // Integrate the Gaussian over each integer bin, relative to centre.
        let mut counts = vec![0u64; window];
        let c = half as f64;
        const MASS_SCALE: f64 = (1u64 << 40) as f64;
        for (i, count) in counts.iter_mut().enumerate() {
            let lo = (i as f64 - 0.5 - c) / sigma;
            let hi = (i as f64 + 0.5 - c) / sigma;
            let mass = (phi(hi) - phi(lo)).max(0.0);
            *count = (mass * MASS_SCALE) as u64;
        }
        // Guarantee a nonzero count everywhere so every window value stays
        // encodable even in distribution tails.
        for count in counts.iter_mut() {
            *count = (*count).max(1);
        }
        let freqs = quantize_counts(&counts, n);
        let mut ff = vec![0u32; window];
        let mut inv = vec![0u16; 1 << n];
        let mut acc = 0u32;
        for (i, &f) in freqs.iter().enumerate() {
            ff[i] = (f << 16) | acc;
            for slot in acc..acc + f {
                inv[slot as usize] = i as u16;
            }
            acc += f;
        }
        ScaleTable { ff, inv }
    }

    /// Quantization level.
    #[inline]
    pub fn quant_bits(&self) -> u32 {
        self.n
    }

    /// Window width.
    #[inline]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Half window (offset of the mean inside the window).
    #[inline]
    pub fn half(&self) -> u16 {
        self.half
    }

    /// The scale values.
    pub fn scales(&self) -> &[f64] {
        &self.scales
    }

    /// Index of the scale closest to `sigma` in log space.
    pub fn nearest_scale(&self, sigma: f64) -> u8 {
        let s = sigma.max(1e-9).ln();
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &sc) in self.scales.iter().enumerate() {
            let d = (sc.ln() - s).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best as u8
    }

    /// Encode-side `(freq, cdf)` of window offset `v` under scale `k`.
    #[inline]
    pub fn stats_at(&self, k: u8, v: u16) -> (u32, u32) {
        let e = self.tables[k as usize].ff[v as usize];
        (e >> 16, e & 0xFFFF)
    }

    /// Decode-side lookup under scale `k`: `(window offset, freq, cdf)`.
    #[inline]
    pub fn lookup_at(&self, k: u8, slot: u32) -> (u16, u32, u32) {
        let t = &self.tables[k as usize];
        let v = t.inv[slot as usize];
        let e = t.ff[v as usize];
        (v, e >> 16, e & 0xFFFF)
    }

    /// Smallest mean a spec may use so the window stays inside u16.
    pub fn min_mean(&self) -> u16 {
        self.half
    }

    /// Largest mean a spec may use.
    pub fn max_mean(&self) -> u16 {
        (u16::MAX as usize + 1 - self.window + self.half as usize) as u16
    }
}

/// Per-position adaptive provider: a shared bank plus one spec per position.
pub struct LatentModelProvider {
    bank: std::sync::Arc<GaussianScaleBank>,
    specs: Vec<LatentSpec>,
}

impl LatentModelProvider {
    /// Creates a provider; `specs[pos]` models the symbol at position `pos`.
    pub fn new(bank: std::sync::Arc<GaussianScaleBank>, specs: Vec<LatentSpec>) -> Self {
        let (lo, hi) = (bank.min_mean(), bank.max_mean());
        debug_assert!(specs.iter().all(|s| s.mean >= lo && s.mean <= hi));
        Self { bank, specs }
    }

    /// The shared scale bank.
    pub fn bank(&self) -> &GaussianScaleBank {
        &self.bank
    }

    /// The per-position specs.
    pub fn specs(&self) -> &[LatentSpec] {
        &self.specs
    }

    /// Clamps a raw sample into the coding window of `spec`.
    pub fn clamp_to_window(&self, spec: LatentSpec, raw: i64) -> u16 {
        let lo = spec.mean as i64 - self.bank.half as i64;
        let hi = lo + self.bank.window as i64 - 1;
        raw.clamp(lo, hi) as u16
    }
}

impl ModelProvider for LatentModelProvider {
    #[inline]
    fn quant_bits(&self) -> u32 {
        self.bank.n
    }

    #[inline]
    fn stats(&self, pos: u64, sym: u16) -> (u32, u32) {
        let spec = self.specs[pos as usize];
        let v = (sym as i32 - spec.mean as i32 + self.bank.half as i32) as u16;
        debug_assert!(
            (v as usize) < self.bank.window,
            "symbol outside model window"
        );
        self.bank.stats_at(spec.scale_idx, v)
    }

    #[inline]
    fn lookup(&self, pos: u64, slot: u32) -> (u16, u32, u32) {
        let spec = self.specs[pos as usize];
        let (v, f, c) = self.bank.lookup_at(spec.scale_idx, slot);
        let sym = (spec.mean as i32 + v as i32 - self.bank.half as i32) as u16;
        (sym, f, c)
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ~1.5e-7 — far below one quantization step).
fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn small_bank() -> GaussianScaleBank {
        GaussianScaleBank::build(12, 256, 8, 0.5, 32.0)
    }

    #[test]
    fn bank_tables_are_consistent() {
        let b = small_bank();
        for k in 0..8u8 {
            for slot in 0..(1u32 << 12) {
                let (v, f, c) = b.lookup_at(k, slot);
                assert!(c <= slot && slot < c + f, "scale {k} slot {slot}");
                assert_eq!(b.stats_at(k, v), (f, c));
            }
        }
    }

    #[test]
    fn narrow_scale_concentrates_mass() {
        let b = small_bank();
        let (f_narrow, _) = b.stats_at(0, b.half());
        let (f_wide, _) = b.stats_at(7, b.half());
        assert!(
            f_narrow > 4 * f_wide,
            "narrow centre freq {f_narrow} should dwarf wide {f_wide}"
        );
    }

    #[test]
    fn nearest_scale_is_monotone() {
        let b = small_bank();
        assert_eq!(b.nearest_scale(0.01), 0);
        assert_eq!(b.nearest_scale(1000.0), 7);
        let mid = b.nearest_scale(4.0);
        assert!(mid > 0 && mid < 7);
    }

    #[test]
    fn provider_round_trips_symbols() {
        let bank = Arc::new(small_bank());
        let specs = vec![
            LatentSpec {
                mean: 1000,
                scale_idx: 2,
            },
            LatentSpec {
                mean: 5000,
                scale_idx: 7,
            },
        ];
        let p = LatentModelProvider::new(bank, specs);
        for (pos, mean) in [(0u64, 1000u16), (1, 5000)] {
            for d in [-10i32, -1, 0, 1, 10] {
                let sym = (mean as i32 + d) as u16;
                let (f, c) = p.stats(pos, sym);
                assert!(f > 0);
                let (s2, f2, c2) = p.lookup(pos, c);
                assert_eq!((s2, f2, c2), (sym, f, c));
            }
        }
    }

    #[test]
    fn clamp_keeps_samples_in_window() {
        let bank = Arc::new(small_bank());
        let spec = LatentSpec {
            mean: 200,
            scale_idx: 0,
        };
        let p = LatentModelProvider::new(bank, vec![spec]);
        let lo = p.clamp_to_window(spec, -100_000);
        let hi = p.clamp_to_window(spec, 100_000);
        assert_eq!(lo, 200 - 128);
        assert_eq!(hi, 200 + 127);
        // Both extremes must be encodable.
        assert!(p.stats(0, lo).0 > 0);
        assert!(p.stats(0, hi).0 > 0);
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }
}
