//! Count → frequency quantization.
//!
//! Frequencies must sum to exactly `2^n`, every symbol that occurs must keep
//! a nonzero frequency (or it would be unencodable), and no single frequency
//! may reach `2^n`: the codecs rely on `f <= 2^n - 1` so that the
//! renormalization threshold `f * 2^(32-n)` stays below `2^32` and exactly
//! one u16 word moves per renorm event (paper §4.4 "renormalization always
//! completes in one step").

/// Quantizes `counts` to frequencies summing to `2^n`.
///
/// Returns a frequency table of the same length. Symbols with zero count get
/// zero frequency. If only one symbol occurs, one unit of probability mass is
/// donated to a neighbouring symbol so the `f <= 2^n - 1` invariant holds.
///
/// # Panics
/// If all counts are zero, `n` is out of `1..=16`, or the support is larger
/// than `2^n` (too many distinct symbols to give each a nonzero frequency).
pub fn quantize_counts(counts: &[u64], n: u32) -> Vec<u32> {
    assert!(
        (1..=16).contains(&n),
        "quantization level n={n} out of range 1..=16"
    );
    let target: u64 = 1 << n;
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "cannot quantize an empty distribution");
    let support = counts.iter().filter(|&&c| c > 0).count() as u64;
    assert!(
        support <= target,
        "support {support} exceeds 2^{n}; raise n or shrink the alphabet"
    );

    let mut freqs: Vec<u32> = counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0
            } else {
                // Round-to-nearest proportional share, floored at 1.
                let f = (c as u128 * target as u128 + total as u128 / 2) / total as u128;
                (f as u32).max(1)
            }
        })
        .collect();

    balance_to_target(&mut freqs, counts, target);
    cap_max_frequency(&mut freqs, target);

    debug_assert_eq!(freqs.iter().map(|&f| f as u64).sum::<u64>(), target);
    freqs
}

/// Adjusts `freqs` so they sum to `target`, spending the correction where it
/// costs the least coding efficiency (largest counts absorb deficits; the
/// cheapest over-assigned symbols give mass back).
fn balance_to_target(freqs: &mut [u32], counts: &[u64], target: u64) {
    let sum: u64 = freqs.iter().map(|&f| f as u64).sum();
    if sum < target {
        // Give the missing mass to the most frequent symbols: the relative
        // error added there is smallest.
        let mut order: Vec<usize> = (0..freqs.len()).filter(|&i| counts[i] > 0).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let mut missing = target - sum;
        let mut k = 0;
        while missing > 0 {
            let i = order[k % order.len()];
            freqs[i] += 1;
            missing -= 1;
            k += 1;
        }
    } else if sum > target {
        // Take mass back, preferring symbols whose quantized share most
        // exceeds their proportional share, never dropping below 1.
        let mut excess = sum - target;
        let total: u64 = counts.iter().sum();
        let mut order: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 1).collect();
        // Sort by over-assignment: f/target - c/total, descending.
        order.sort_by(|&a, &b| {
            let oa = freqs[a] as i128 * total as i128 - counts[a] as i128 * target as i128;
            let ob = freqs[b] as i128 * total as i128 - counts[b] as i128 * target as i128;
            ob.cmp(&oa)
        });
        let mut k = 0;
        while excess > 0 {
            let i = order[k % order.len()];
            if freqs[i] > 1 {
                freqs[i] -= 1;
                excess -= 1;
            }
            k += 1;
        }
    }
}

/// Enforces `f <= 2^n - 1` by donating one unit to (or from) a neighbour.
fn cap_max_frequency(freqs: &mut [u32], target: u64) {
    if let Some(i) = freqs.iter().position(|&f| f as u64 >= target) {
        // Only possible when a single symbol holds all the mass.
        freqs[i] = (target - 1) as u32;
        let donee = if i + 1 < freqs.len() { i + 1 } else { i - 1 };
        freqs[donee] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum(f: &[u32]) -> u64 {
        f.iter().map(|&x| x as u64).sum()
    }

    #[test]
    fn sums_to_power_of_two() {
        let counts = [5u64, 10, 1, 0, 100];
        for n in [4, 8, 11, 12, 16] {
            let f = quantize_counts(&counts, n);
            assert_eq!(sum(&f), 1 << n, "n={n}");
        }
    }

    #[test]
    fn present_symbols_keep_nonzero_frequency() {
        let mut counts = vec![0u64; 256];
        counts[3] = 1;
        counts[200] = 1_000_000;
        let f = quantize_counts(&counts, 11);
        assert!(f[3] >= 1);
        assert!(f[200] >= 1);
        assert_eq!(f[0], 0);
    }

    #[test]
    fn single_symbol_is_capped() {
        let counts = [0u64, 42, 0];
        let f = quantize_counts(&counts, 8);
        assert_eq!(f[1], 255);
        assert_eq!(f[2], 1);
        assert_eq!(sum(&f), 256);
    }

    #[test]
    fn single_symbol_at_alphabet_end_donates_left() {
        let counts = [0u64, 0, 7];
        let f = quantize_counts(&counts, 4);
        assert_eq!(f[2], 15);
        assert_eq!(f[1], 1);
    }

    #[test]
    fn proportionality_roughly_holds() {
        let counts = [100u64, 300, 600];
        let f = quantize_counts(&counts, 10);
        let t = 1024.0;
        assert!((f[0] as f64 - 0.1 * t).abs() <= 2.0);
        assert!((f[1] as f64 - 0.3 * t).abs() <= 2.0);
        assert!((f[2] as f64 - 0.6 * t).abs() <= 2.0);
    }

    #[test]
    fn dense_support_at_minimum_n() {
        // 256 present symbols at n = 8: everyone gets exactly 1.
        let counts = vec![1u64; 256];
        let f = quantize_counts(&counts, 8);
        assert!(f.iter().all(|&x| x == 1));
    }

    #[test]
    #[should_panic(expected = "support")]
    fn oversized_support_panics() {
        let counts = vec![1u64; 300];
        let _ = quantize_counts(&counts, 8);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_distribution_panics() {
        let _ = quantize_counts(&[0u64, 0], 8);
    }

    #[test]
    fn heavily_skewed_distribution_balances() {
        let mut counts = vec![1u64; 200];
        counts[0] = u32::MAX as u64 * 16;
        let f = quantize_counts(&counts, 11);
        assert_eq!(sum(&f), 2048);
        assert!(f.iter().take(200).all(|&x| x >= 1));
        assert!(f[0] <= 2047);
    }
}
