//! The static model: quantized PDF `f(s)` and CDF `F(s)` (paper Def. 2.1).

use crate::quantize_counts;
use crate::Histogram;

/// Quantized frequency/cumulative tables for one static distribution.
///
/// `cdf` has one extra entry so that `cdf[s+1] - cdf[s] == freq[s]` and
/// `cdf[alphabet] == 2^n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdfTable {
    n: u32,
    freq: Vec<u32>,
    cdf: Vec<u32>,
}

impl CdfTable {
    /// Builds a table from already-quantized frequencies summing to `2^n`.
    pub fn from_freqs(freqs: Vec<u32>, n: u32) -> Self {
        assert!((1..=16).contains(&n));
        let sum: u64 = freqs.iter().map(|&f| f as u64).sum();
        assert_eq!(sum, 1 << n, "frequencies must sum to 2^n");
        assert!(
            freqs.iter().all(|&f| (f as u64) < (1u64 << n)),
            "no frequency may reach 2^n"
        );
        let mut cdf = Vec::with_capacity(freqs.len() + 1);
        let mut acc = 0u32;
        for &f in &freqs {
            cdf.push(acc);
            acc += f;
        }
        cdf.push(acc);
        Self {
            n,
            freq: freqs,
            cdf,
        }
    }

    /// Counts `data` and quantizes to level `n` over a 256-symbol alphabet.
    pub fn of_bytes(data: &[u8], n: u32) -> Self {
        let h = Histogram::of_bytes(data);
        Self::from_freqs(quantize_counts(h.counts(), n), n)
    }

    /// Counts 16-bit `data` and quantizes to level `n`.
    pub fn of_u16(data: &[u16], alphabet_size: usize, n: u32) -> Self {
        let h = Histogram::of_u16(data, alphabet_size);
        Self::from_freqs(quantize_counts(h.counts(), n), n)
    }

    /// Quantization level `n`.
    #[inline]
    pub fn quant_bits(&self) -> u32 {
        self.n
    }

    /// Alphabet size.
    #[inline]
    pub fn alphabet_size(&self) -> usize {
        self.freq.len()
    }

    /// Quantized frequency `f(s)`; zero for symbols that never occur.
    #[inline]
    pub fn freq(&self, s: usize) -> u32 {
        self.freq[s]
    }

    /// Quantized cumulative frequency `F(s)`.
    #[inline]
    pub fn cdf(&self, s: usize) -> u32 {
        self.cdf[s]
    }

    /// All frequencies.
    pub fn freqs(&self) -> &[u32] {
        &self.freq
    }

    /// Finds the symbol whose CDF interval contains `slot`
    /// (`F(s) <= slot < F(s+1)`, Eq. 2) by binary search.
    ///
    /// The decode hot paths use [`crate::DecodeTables`] instead; this is the
    /// reference lookup they are tested against.
    pub fn symbol_of_slot(&self, slot: u32) -> u16 {
        debug_assert!(slot < (1 << self.n));
        // partition_point returns the first s with cdf[s] > slot; the
        // containing interval starts one position earlier.
        let s = self.cdf.partition_point(|&c| c <= slot) - 1;
        debug_assert!(self.freq[s] > 0);
        s as u16
    }

    /// Ideal compressed size in bits if coded exactly at the quantized
    /// probabilities (used to sanity-check codec output sizes in tests).
    pub fn cross_entropy_bits(&self, counts: &Histogram) -> f64 {
        let total = 1u64 << self.n;
        counts
            .counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| {
                let p = self.freq[s] as f64 / total as f64;
                -(c as f64) * p.log2()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_prefix_sum() {
        let t = CdfTable::from_freqs(vec![1, 3, 4, 8], 4);
        assert_eq!(t.cdf(0), 0);
        assert_eq!(t.cdf(1), 1);
        assert_eq!(t.cdf(2), 4);
        assert_eq!(t.cdf(3), 8);
        assert_eq!(t.freq(3), 8);
    }

    #[test]
    fn slot_lookup_matches_intervals() {
        let t = CdfTable::from_freqs(vec![2, 0, 6, 8], 4);
        assert_eq!(t.symbol_of_slot(0), 0);
        assert_eq!(t.symbol_of_slot(1), 0);
        assert_eq!(t.symbol_of_slot(2), 2);
        assert_eq!(t.symbol_of_slot(7), 2);
        assert_eq!(t.symbol_of_slot(8), 3);
        assert_eq!(t.symbol_of_slot(15), 3);
    }

    #[test]
    fn of_bytes_round_trips_all_slots() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 7) as u8 * 13).collect();
        let t = CdfTable::of_bytes(&data, 11);
        for slot in 0..(1u32 << 11) {
            let s = t.symbol_of_slot(slot) as usize;
            assert!(t.cdf(s) <= slot && slot < t.cdf(s) + t.freq(s));
        }
    }

    #[test]
    #[should_panic(expected = "sum to 2^n")]
    fn wrong_sum_panics() {
        let _ = CdfTable::from_freqs(vec![1, 2], 4);
    }

    #[test]
    #[should_panic(expected = "reach 2^n")]
    fn full_mass_frequency_panics() {
        let _ = CdfTable::from_freqs(vec![16, 0], 4);
    }
}
