//! Decode-side lookup tables (paper §4.4).
//!
//! "We build LUTs for the symbol lookup process shown in equation 2. Here we
//! apply a common optimization: if `sizeof(s) = 8` and `n <= 12`, we pack the
//! symbol, its quantized probability and quantized CDF into a single 32-bit
//! integer." — [`PackedLut`] is that optimization (one gather per symbol in
//! the SIMD kernels); [`WideLut`] is the general fallback (two gathers).

use crate::CdfTable;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`DecodeTables::build`] calls.
///
/// Building the LUTs is the expensive part of standing up a
/// [`crate::StaticModelProvider`] (a `2^n`-entry fill), so it must happen
/// once per content — not once per decode call or per streamed segment
/// batch. This counter exists so regression tests can assert exactly that;
/// see [`decode_table_builds`].
static DECODE_TABLE_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Total [`DecodeTables::build`] calls in this process so far.
///
/// Intended for tests that pin down table-reuse behavior: snapshot before
/// an operation, run it, and assert on the delta. Note the counter is
/// global — such tests should run in their own test binary to avoid
/// counting concurrent builds from unrelated tests.
pub fn decode_table_builds() -> u64 {
    DECODE_TABLE_BUILDS.load(Ordering::Relaxed)
}

/// Bit position of the freq field in a [`PackedLut`] entry
/// (`cdf | freq << 12 | sym << 24`).
pub const PACKED_FREQ_SHIFT: u32 = 12;
pub const PACKED_SYM_SHIFT: u32 = 24;
pub const PACKED_FIELD_MASK: u32 = (1 << 12) - 1;

/// One-gather decode LUT: `2^n` packed entries, valid for 8-bit symbols and
/// `n <= 12`.
#[derive(Debug, Clone)]
pub struct PackedLut {
    n: u32,
    entries: Vec<u32>,
}

impl PackedLut {
    /// Builds the packed LUT; `None` if the table does not qualify
    /// (alphabet > 256 or `n > 12`).
    pub fn build(table: &CdfTable) -> Option<Self> {
        let n = table.quant_bits();
        if n > 12 || table.alphabet_size() > 256 {
            return None;
        }
        let mut entries = vec![0u32; 1 << n];
        for s in 0..table.alphabet_size() {
            let f = table.freq(s);
            if f == 0 {
                continue;
            }
            let base = table.cdf(s);
            debug_assert!(f <= PACKED_FIELD_MASK && base <= PACKED_FIELD_MASK);
            let packed = base | (f << PACKED_FREQ_SHIFT) | ((s as u32) << PACKED_SYM_SHIFT);
            for slot in base..base + f {
                entries[slot as usize] = packed;
            }
        }
        Some(Self { n, entries })
    }

    /// Quantization level.
    #[inline]
    pub fn quant_bits(&self) -> u32 {
        self.n
    }

    /// Raw entries (for SIMD gathers).
    #[inline]
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// Decodes one slot into `(symbol, freq, cdf)`.
    #[inline]
    pub fn lookup(&self, slot: u32) -> (u16, u32, u32) {
        let e = self.entries[slot as usize];
        (
            (e >> PACKED_SYM_SHIFT) as u16,
            (e >> PACKED_FREQ_SHIFT) & PACKED_FIELD_MASK,
            e & PACKED_FIELD_MASK,
        )
    }
}

/// Two-gather decode LUT for the general case (16-bit symbols or `n > 12`):
/// `inv[slot]` maps a slot to its symbol; `ff[sym]` packs
/// `freq << 16 | cdf` (both `< 2^16` because `n <= 16` and `f <= 2^n - 1`).
///
/// `inv` carries one trailing padding entry so SIMD kernels can gather
/// 32 bits at 2-byte offsets without reading past the allocation.
#[derive(Debug, Clone)]
pub struct WideLut {
    n: u32,
    inv: Vec<u16>,
    ff: Vec<u32>,
}

impl WideLut {
    /// Builds the wide LUT for any supported table.
    pub fn build(table: &CdfTable) -> Self {
        let n = table.quant_bits();
        let mut inv = vec![0u16; (1 << n) + 1];
        let mut ff = vec![0u32; table.alphabet_size()];
        for (s, entry) in ff.iter_mut().enumerate() {
            let f = table.freq(s);
            let base = table.cdf(s);
            *entry = (f << 16) | base;
            for slot in base..base + f {
                inv[slot as usize] = s as u16;
            }
        }
        Self { n, inv, ff }
    }

    /// Quantization level.
    #[inline]
    pub fn quant_bits(&self) -> u32 {
        self.n
    }

    /// Slot→symbol table including the trailing padding entry
    /// (for SIMD gathers).
    #[inline]
    pub fn inv(&self) -> &[u16] {
        &self.inv
    }

    /// Per-symbol `freq << 16 | cdf` table (for SIMD gathers).
    #[inline]
    pub fn ff(&self) -> &[u32] {
        &self.ff
    }

    /// Decodes one slot into `(symbol, freq, cdf)`.
    #[inline]
    pub fn lookup(&self, slot: u32) -> (u16, u32, u32) {
        let s = self.inv[slot as usize];
        let e = self.ff[s as usize];
        (s, e >> 16, e & 0xFFFF)
    }

    /// Encode-side stats `(freq, cdf)` for `sym`.
    #[inline]
    pub fn stats(&self, sym: u16) -> (u32, u32) {
        let e = self.ff[sym as usize];
        (e >> 16, e & 0xFFFF)
    }
}

/// The preferred decode structure for a static table.
#[derive(Debug, Clone)]
pub enum DecodeTables {
    /// One-gather packed LUT (8-bit symbols, `n <= 12`).
    Packed(PackedLut),
    /// Two-gather wide LUT (everything else).
    Wide(WideLut),
}

impl DecodeTables {
    /// Builds the best structure for `table`.
    pub fn build(table: &CdfTable) -> Self {
        DECODE_TABLE_BUILDS.fetch_add(1, Ordering::Relaxed);
        match PackedLut::build(table) {
            Some(p) => Self::Packed(p),
            None => Self::Wide(WideLut::build(table)),
        }
    }

    /// Quantization level.
    #[inline]
    pub fn quant_bits(&self) -> u32 {
        match self {
            Self::Packed(p) => p.quant_bits(),
            Self::Wide(w) => w.quant_bits(),
        }
    }

    /// Decodes one slot into `(symbol, freq, cdf)`.
    #[inline]
    pub fn lookup(&self, slot: u32) -> (u16, u32, u32) {
        match self {
            Self::Packed(p) => p.lookup(slot),
            Self::Wide(w) => w.lookup(slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table(n: u32) -> CdfTable {
        let data: Vec<u8> = (0..40_000u32).map(|i| (i * i % 251) as u8).collect();
        CdfTable::of_bytes(&data, n)
    }

    #[test]
    fn packed_matches_reference_lookup() {
        let t = sample_table(11);
        let p = PackedLut::build(&t).expect("qualifies");
        for slot in 0..(1u32 << 11) {
            let (s, f, c) = p.lookup(slot);
            assert_eq!(s, t.symbol_of_slot(slot));
            assert_eq!(f, t.freq(s as usize));
            assert_eq!(c, t.cdf(s as usize));
        }
    }

    #[test]
    fn wide_matches_reference_lookup() {
        let t = sample_table(12);
        let w = WideLut::build(&t);
        for slot in 0..(1u32 << 12) {
            let (s, f, c) = w.lookup(slot);
            assert_eq!(s, t.symbol_of_slot(slot));
            assert_eq!(f, t.freq(s as usize));
            assert_eq!(c, t.cdf(s as usize));
        }
    }

    #[test]
    fn packed_rejected_above_n12() {
        let t = sample_table(13);
        assert!(PackedLut::build(&t).is_none());
        matches!(DecodeTables::build(&t), DecodeTables::Wide(_))
            .then_some(())
            .expect("wide fallback");
    }

    #[test]
    fn packed_rejected_for_16bit_alphabet() {
        let data: Vec<u16> = (0..4096u16).collect();
        let t = CdfTable::of_u16(&data, 4096, 12);
        assert!(PackedLut::build(&t).is_none());
    }

    #[test]
    fn wide_handles_16bit_symbols_at_n16() {
        let data: Vec<u16> = (0..60_000u32).map(|i| (i % 3000) as u16).collect();
        let t = CdfTable::of_u16(&data, 1 << 16, 16);
        let w = WideLut::build(&t);
        for probe in [0u32, 1, 1234, 65_535] {
            let (s, f, c) = w.lookup(probe);
            assert_eq!(s, t.symbol_of_slot(probe));
            assert_eq!(f, t.freq(s as usize));
            assert_eq!(c, t.cdf(s as usize));
        }
    }

    #[test]
    fn wide_stats_match_table() {
        let t = sample_table(11);
        let w = WideLut::build(&t);
        for s in 0..251u16 {
            let (f, c) = w.stats(s);
            assert_eq!(f, t.freq(s as usize));
            assert_eq!(c, t.cdf(s as usize));
        }
    }
}
