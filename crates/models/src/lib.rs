//! Probability models for Recoil's rANS codecs.
//!
//! The paper (Def. 2.1, Table 3) codes each symbol against a PDF/CDF pair
//! quantized to `[0, 2^n]` with `n <= 16`. This crate provides:
//!
//! * [`Histogram`]: symbol counting over 8- or 16-bit alphabets.
//! * [`quantize_counts`]: normalization of counts to frequencies summing to
//!   exactly `2^n`, every present symbol getting a nonzero frequency, and no
//!   frequency reaching `2^n` (so renormalization completes in one step and
//!   packed decode-table entries fit their bit fields).
//! * [`CdfTable`]: the static model — `f(s)`, `F(s)` and slot→symbol lookup.
//! * [`DecodeTables`]: decode-side acceleration structures (§4.4): a packed
//!   single-gather LUT for 8-bit symbols with `n <= 12`, or a wide
//!   two-gather LUT otherwise.
//! * [`GaussianScaleBank`] / [`LatentModelProvider`]: the adaptive
//!   ("hyperprior") per-symbol-index models used for the div2k experiments,
//!   where every symbol index selects its own mean and quantized scale.
//! * [`ModelProvider`]: the interface the codecs consume, keyed by symbol
//!   index so adaptive coding works across Recoil's split boundaries.

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

mod counts;
mod gaussian;
mod lut;
mod provider;
mod quantize;
mod static_model;

pub use counts::Histogram;
pub use gaussian::{GaussianScaleBank, LatentModelProvider, LatentSpec};
pub use lut::{decode_table_builds, DecodeTables, PackedLut, WideLut};
pub use provider::{ModelProvider, StaticModelProvider, Symbol};
pub use quantize::quantize_counts;
pub use static_model::CdfTable;

/// Maximum supported quantization level (`n <= b = 16`, paper §4.4).
pub const MAX_QUANT_BITS: u32 = 16;
