//! The model interface consumed by every codec in the workspace.
//!
//! Models are keyed by the **0-based symbol position** in the uncompressed
//! sequence. Static models ignore the position; the adaptive hyperprior
//! models (paper §5.1, div2k experiments) select a different distribution per
//! position — which is exactly why Recoil's split metadata records symbol
//! indices (paper §3.1, advantage (3)).

use crate::{CdfTable, DecodeTables};

/// Symbol value types the codecs can process (Table 3: 8- or 16-bit).
pub trait Symbol: Copy + Eq + std::fmt::Debug + Send + Sync + 'static {
    /// Widens to the common 16-bit working representation.
    fn to_u16(self) -> u16;
    /// Narrows from the working representation.
    fn from_u16(v: u16) -> Self;
    /// Bits per symbol (for byte accounting).
    const BITS: u32;
}

impl Symbol for u8 {
    #[inline]
    fn to_u16(self) -> u16 {
        self as u16
    }
    #[inline]
    fn from_u16(v: u16) -> Self {
        debug_assert!(v <= u8::MAX as u16);
        v as u8
    }
    const BITS: u32 = 8;
}

impl Symbol for u16 {
    #[inline]
    fn to_u16(self) -> u16 {
        self
    }
    #[inline]
    fn from_u16(v: u16) -> Self {
        v
    }
    const BITS: u32 = 16;
}

/// Supplies per-position quantized statistics to encoders and decoders.
///
/// All positions share one quantization level `n` (`F` totals `2^n`), as in
/// the paper, but the distribution itself may vary by position.
pub trait ModelProvider: Sync {
    /// Quantization level `n` (1..=16).
    fn quant_bits(&self) -> u32;

    /// Encode-side stats `(freq, cdf)` of symbol `sym` at position `pos`.
    fn stats(&self, pos: u64, sym: u16) -> (u32, u32);

    /// Decode-side lookup: the `(symbol, freq, cdf)` whose CDF interval
    /// contains `slot` at position `pos` (Eq. 2).
    fn lookup(&self, pos: u64, slot: u32) -> (u16, u32, u32);
}

/// Position-independent model backed by a [`CdfTable`] plus decode LUTs.
#[derive(Debug, Clone)]
pub struct StaticModelProvider {
    table: CdfTable,
    decode: DecodeTables,
}

impl StaticModelProvider {
    /// Wraps a table, building its decode acceleration structures.
    pub fn new(table: CdfTable) -> Self {
        let decode = DecodeTables::build(&table);
        Self { table, decode }
    }

    /// The underlying table.
    pub fn table(&self) -> &CdfTable {
        &self.table
    }

    /// The decode LUTs (used directly by the SIMD kernels).
    pub fn decode_tables(&self) -> &DecodeTables {
        &self.decode
    }
}

impl ModelProvider for StaticModelProvider {
    #[inline]
    fn quant_bits(&self) -> u32 {
        self.table.quant_bits()
    }

    #[inline]
    fn stats(&self, _pos: u64, sym: u16) -> (u32, u32) {
        let s = sym as usize;
        (self.table.freq(s), self.table.cdf(s))
    }

    #[inline]
    fn lookup(&self, _pos: u64, slot: u32) -> (u16, u32, u32) {
        self.decode.lookup(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_provider_matches_table() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 11) as u8).collect();
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 10));
        assert_eq!(p.quant_bits(), 10);
        for slot in 0..(1u32 << 10) {
            let (s, f, c) = p.lookup(999, slot);
            let (ef, ec) = p.stats(0, s);
            assert_eq!((f, c), (ef, ec));
            assert!(c <= slot && slot < c + f);
        }
    }

    #[test]
    fn symbol_round_trips() {
        assert_eq!(u8::from_u16(200u8.to_u16()), 200);
        assert_eq!(u16::from_u16(40_000u16.to_u16()), 40_000);
        assert_eq!(u8::BITS, 8);
        assert_eq!(<u16 as Symbol>::BITS, 16);
    }
}
