//! [`Fabric`]: a supervisor for N independent content-server nodes.
//!
//! Each node is a full [`NetServer`] on its own ephemeral loopback port
//! with its own [`ContentServer`] store — nothing is shared between
//! nodes, exactly like separate processes on separate hosts. The fabric
//! exists so tests and benches can stand a cluster up in one call and
//! kill member nodes abruptly mid-transfer.

use std::net::SocketAddr;
use std::sync::Arc;

use recoil_core::RecoilError;
use recoil_net::{NetConfig, NetServer, NetServerHandle};
use recoil_server::ContentServer;

/// A running cluster of [`NetServer`] nodes.
///
/// Killed nodes keep their slot (and address) so node indices stay
/// stable for the lifetime of the fabric — a router holding index `i`
/// keeps dialing the same dead port and gets connection-refused, exactly
/// like a crashed remote host.
pub struct Fabric {
    nodes: Vec<Option<NetServerHandle>>,
    addrs: Vec<SocketAddr>,
}

impl Fabric {
    /// Launches one node per config, each on an ephemeral loopback port
    /// with a fresh empty [`ContentServer`].
    pub fn launch_with(configs: Vec<NetConfig>) -> Result<Self, RecoilError> {
        if configs.is_empty() {
            return Err(RecoilError::config(
                "nodes",
                "a fabric needs at least one node",
            ));
        }
        let mut nodes = Vec::with_capacity(configs.len());
        let mut addrs = Vec::with_capacity(configs.len());
        for config in configs {
            let handle = NetServer::bind(Arc::new(ContentServer::new()), "127.0.0.1:0", config)?;
            addrs.push(handle.addr());
            nodes.push(Some(handle));
        }
        Ok(Self { nodes, addrs })
    }

    /// Launches `n` nodes sharing one config.
    pub fn launch(n: usize, config: NetConfig) -> Result<Self, RecoilError> {
        Self::launch_with(vec![config; n])
    }

    /// Number of node slots (live or killed).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the fabric has no node slots (never, post-launch).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The bound address of node `i` (stable even after a kill).
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.addrs[i]
    }

    /// Every node address, in slot order — feed this to
    /// [`crate::FabricRouter::connect`].
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.addrs.clone()
    }

    /// The live handle for node `i`, if it has not been killed.
    pub fn node(&self, i: usize) -> Option<&NetServerHandle> {
        self.nodes[i].as_ref()
    }

    /// True while node `i` is serving.
    pub fn is_alive(&self, i: usize) -> bool {
        self.nodes[i].is_some()
    }

    /// Kills node `i` **abruptly**: open connections are severed without
    /// draining (in-flight transfers die mid-frame) and the port stops
    /// accepting. Idempotent. This is the failover trigger.
    pub fn kill(&mut self, i: usize) {
        if let Some(handle) = self.nodes[i].take() {
            handle.kill();
        }
    }

    /// Orderly shutdown of every remaining node.
    pub fn shutdown(mut self) {
        for node in self.nodes.iter_mut() {
            if let Some(handle) = node.take() {
                handle.shutdown();
            }
        }
    }
}
