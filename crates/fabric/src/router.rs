//! [`FabricRouter`]: client-side placement, promotion, and failover.
//!
//! The router is the fabric's brain and it lives entirely on the client:
//! nodes never talk to each other and hold no cluster state, so a "node"
//! is just a stock [`recoil_net::NetServer`]. Placement is rendezvous
//! hashing (stable under membership change), replication is re-publish
//! (the encoder is deterministic, so replicas are byte-identical), and
//! failover is RESUME at the exact word offset already received — split
//! metadata makes that offset the complete resume state.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use recoil_core::codec::DecodeBackend;
use recoil_core::{update_crc32, EncoderConfig, IncrementalDecoder, RecoilError};
use recoil_net::{splitmix64, NetClient, NetClientConfig, PublishOk, StatsReply};
use recoil_simd::AutoBackend;
use recoil_telemetry::{Telemetry, TelemetryLevel};

/// Construction knobs for [`FabricRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Target holder count for promoted (hot) names, primary included.
    /// Cold names live on their rendezvous primary only.
    pub replicas: usize,
    /// Router-observed fetch count after which a name is hot enough to
    /// promote onto extra replicas.
    pub promote_min_hits: u64,
    /// Run a promotion pass automatically every this many fetches
    /// (0 disables; call [`FabricRouter::rebalance`] manually).
    pub rebalance_interval: u64,
    /// Per-node client knobs (retry policy, timeouts, pool size).
    pub client: NetClientConfig,
    /// Level for the router's shared instruments ([`FabricRouter::telemetry`]).
    pub telemetry: TelemetryLevel,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            replicas: 2,
            promote_min_hits: 8,
            rebalance_interval: 64,
            client: NetClientConfig::default(),
            telemetry: TelemetryLevel::Counters,
        }
    }
}

struct RouterNode {
    addr: SocketAddr,
    client: NetClient,
    healthy: AtomicBool,
}

/// One node's slice of a (possibly failed-over) fetch — the wire-level
/// byte accounting chaos tests assert resume correctness with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchAttempt {
    /// Node index the attempt was served by.
    pub node: usize,
    /// Word offset the attempt resumed from (0 for the first).
    pub from_word: u64,
    /// Bitstream bytes this node actually delivered (whole words).
    pub chunk_bytes: u64,
    /// False when the node died mid-stream and the fetch moved on.
    pub completed: bool,
}

/// A completed (possibly failed-over) fabric fetch.
#[derive(Debug)]
pub struct FabricFetch {
    /// The decoded content — byte-identical to an undisturbed fetch.
    pub data: Vec<u8>,
    /// Segments in the served metadata tier.
    pub segments: u64,
    /// Every node attempt in order; `attempts.len() - failovers` always
    /// equals the number of nodes that declined to even start a stream.
    pub attempts: Vec<FetchAttempt>,
    /// Mid-stream deaths survived during this fetch.
    pub failovers: u32,
    /// Nanoseconds until the first segment was decoded.
    pub first_segment_nanos: u64,
    /// Nanoseconds for the whole fetch, failovers included.
    pub total_nanos: u64,
}

/// Client-side router over a set of fabric nodes.
pub struct FabricRouter {
    nodes: Vec<RouterNode>,
    config: RouterConfig,
    backend: Box<dyn DecodeBackend>,
    /// Shared instruments: injected into every per-node client so
    /// `retries` aggregates fleet-wide next to the router's own
    /// `failovers` / `replica_promotions` counters and `healthy_nodes`
    /// gauge.
    telemetry: Arc<Telemetry>,
    /// Encoder knobs recorded at publish time — what replication
    /// re-publishes with so replicas are byte-identical.
    published: Mutex<HashMap<String, EncoderConfig>>,
    /// Extra holders per name, appended by promotion (primary excluded).
    promoted: Mutex<HashMap<String, Vec<usize>>>,
    /// Router-observed per-name fetch counts driving promotion.
    hits: Mutex<HashMap<String, u64>>,
    fetches: AtomicU64,
    /// Re-entrancy guard: replication fetches must not trigger another
    /// rebalance pass.
    rebalancing: AtomicBool,
}

impl FabricRouter {
    /// Connects one (lazy) [`NetClient`] per node address and probes
    /// reachability: unreachable nodes start out unhealthy rather than
    /// failing construction — a fabric is allowed to be degraded at
    /// router startup. At least one node must answer its probe.
    pub fn connect(addrs: &[SocketAddr], config: RouterConfig) -> Result<Self, RecoilError> {
        if addrs.is_empty() {
            return Err(RecoilError::config(
                "addrs",
                "a router needs at least one node",
            ));
        }
        let telemetry = Arc::new(Telemetry::new(config.telemetry));
        let mut nodes = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            let client = NetClient::connect_lazy(addr, config.client.clone())?
                .with_telemetry(Arc::clone(&telemetry));
            // Plain TCP reachability probe; full HELLO validation happens
            // on the node's first real use.
            let healthy = std::net::TcpStream::connect(addr).is_ok();
            nodes.push(RouterNode {
                addr,
                client,
                healthy: AtomicBool::new(healthy),
            });
        }
        let healthy_now = nodes
            .iter()
            .filter(|n| n.healthy.load(Ordering::Relaxed))
            .count();
        if healthy_now == 0 {
            return Err(RecoilError::net("no fabric node answered its probe"));
        }
        if telemetry.counters_enabled() {
            telemetry.gauges.healthy_nodes.set(healthy_now as u64);
        }
        Ok(Self {
            nodes,
            config,
            backend: Box::new(AutoBackend::with_threads(
                std::thread::available_parallelism().map_or(1, |p| p.get()),
            )),
            telemetry,
            published: Mutex::new(HashMap::new()),
            promoted: Mutex::new(HashMap::new()),
            hits: Mutex::new(HashMap::new()),
            fetches: AtomicU64::new(0),
            rebalancing: AtomicBool::new(false),
        })
    }

    /// Node count (fixed for the router's lifetime).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The address node `i` is dialed at.
    pub fn node_addr(&self, i: usize) -> SocketAddr {
        self.nodes[i].addr
    }

    /// Nodes currently believed healthy. Health is observational: a node
    /// is marked down when a dial or stream fails and back up on the
    /// next successful exchange.
    pub fn healthy_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.healthy.load(Ordering::Relaxed))
            .count()
    }

    /// The shared instrument handle: fleet-wide `retries` plus the
    /// router's `failovers`, `replica_promotions`, and the
    /// `healthy_nodes` gauge.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// STATS snapshot from node `i`.
    pub fn node_stats(&self, i: usize) -> Result<StatsReply, RecoilError> {
        self.nodes[i].client.stats()
    }

    /// Rendezvous (highest-random-weight) score of `node` for `name`:
    /// FNV-1a over the name, mixed per node through splitmix64. Every
    /// router instance computes the same placement with no coordination.
    fn score(name: &str, node: usize) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        splitmix64(h ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The rendezvous winner for `name` — where a publish lands.
    pub fn primary(&self, name: &str) -> usize {
        (0..self.nodes.len())
            .max_by_key(|&i| Self::score(name, i))
            .unwrap_or(0)
    }

    /// Every node ordered by descending rendezvous score for `name`;
    /// promotion walks this list, so replica placement is as stable as
    /// primary placement.
    pub fn candidates(&self, name: &str) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(Self::score(name, i)));
        order
    }

    /// Current holders of `name`: the primary, then promoted replicas.
    pub fn holders(&self, name: &str) -> Vec<usize> {
        let mut holders = vec![self.primary(name)];
        if let Some(extra) = self.promoted.lock().get(name) {
            for &i in extra {
                if !holders.contains(&i) {
                    holders.push(i);
                }
            }
        }
        holders
    }

    /// Router-observed fetch count for `name`.
    pub fn hit_count(&self, name: &str) -> u64 {
        self.hits.lock().get(name).copied().unwrap_or(0)
    }

    fn mark_health(&self, node: usize, healthy: bool) {
        let was = self.nodes[node].healthy.swap(healthy, Ordering::Relaxed);
        if was != healthy && self.telemetry.counters_enabled() {
            self.telemetry
                .gauges
                .healthy_nodes
                .set(self.healthy_nodes() as u64);
        }
    }

    /// Publishes `data` under `name` on the best healthy rendezvous
    /// candidate (normally the primary) and records the encoder config
    /// for later replication. A candidate that fails at the transport
    /// level is marked unhealthy and the next one is tried; typed
    /// refusals (e.g. [`RecoilError::AlreadyPublished`]) propagate.
    pub fn publish(
        &self,
        name: &str,
        data: &[u8],
        config: &EncoderConfig,
    ) -> Result<PublishOk, RecoilError> {
        let mut last_err = RecoilError::net("no healthy fabric node to publish to");
        for target in self.candidates(name) {
            if !self.nodes[target].healthy.load(Ordering::Relaxed) {
                continue;
            }
            match self.nodes[target].client.publish(name, data, config) {
                Ok(ok) => {
                    self.mark_health(target, true);
                    self.published
                        .lock()
                        .insert(name.to_string(), config.clone());
                    if target != self.primary(name) {
                        // Degraded-primary publish: remember where the
                        // bytes really live so fetches route there.
                        self.promoted
                            .lock()
                            .entry(name.to_string())
                            .or_default()
                            .push(target);
                    }
                    return Ok(ok);
                }
                Err(err @ RecoilError::Net { .. }) => {
                    self.mark_health(target, false);
                    last_err = err;
                }
                Err(err) => return Err(err),
            }
        }
        Err(last_err)
    }

    /// Fetches and decodes `name` at `parallel_segments`, streaming
    /// chunks into an incremental decoder and failing over mid-stream if
    /// the serving node dies: the next holder gets a RESUME at the exact
    /// word offset received so far, already-decoded segments are never
    /// re-sent, and the result is verified byte-identical (whole-stream
    /// CRC) to an undisturbed fetch.
    pub fn fetch(&self, name: &str, parallel_segments: u64) -> Result<FabricFetch, RecoilError> {
        let n = self.fetches.fetch_add(1, Ordering::Relaxed) + 1;
        *self.hits.lock().entry(name.to_string()).or_insert(0) += 1;
        if self.config.rebalance_interval > 0 && n.is_multiple_of(self.config.rebalance_interval) {
            self.rebalance();
        }
        self.fetch_inner(name, parallel_segments)
    }

    fn fetch_inner(&self, name: &str, parallel_segments: u64) -> Result<FabricFetch, RecoilError> {
        // Serving order: holders first (primary, then replicas), then —
        // as a last resort — every other node, in case content moved
        // under a topology the router did not see. Healthy nodes go
        // before unhealthy ones, preserving that relative order.
        let mut order = self.holders(name);
        for i in 0..self.nodes.len() {
            if !order.contains(&i) {
                order.push(i);
            }
        }
        order.sort_by_key(|&i| !self.nodes[i].healthy.load(Ordering::Relaxed));

        let start = Instant::now();
        let mut attempts: Vec<FetchAttempt> = Vec::new();
        let mut failovers = 0u32;
        let mut incr: Option<IncrementalDecoder> = None;
        let mut out: Vec<u8> = Vec::new();
        let mut first_segment_nanos = 0u64;
        let mut crc_state = 0xFFFF_FFFFu32;
        let mut words_received = 0u64;
        // Whole-stream (word_bytes, payload_crc, segments) from the first
        // TRANSMIT header; every later node must agree or it is serving
        // different content and resume would splice two streams.
        let mut expected: Option<(u64, u32, u64)> = None;
        let mut last_err = RecoilError::net(format!("no fabric node could serve `{name}`"));

        for &node in &order {
            let from_word = words_received;
            let mut session =
                match self.nodes[node]
                    .client
                    .start_fetch(name, parallel_segments, from_word)
                {
                    Ok(session) => session,
                    Err(err) => {
                        // Could not even start a stream here. Transport-level
                        // failures mark the node down; typed refusals
                        // (NotFound, Busy) leave health alone.
                        if matches!(err, RecoilError::Net { .. }) {
                            self.mark_health(node, false);
                        }
                        attempts.push(FetchAttempt {
                            node,
                            from_word,
                            chunk_bytes: 0,
                            completed: false,
                        });
                        last_err = err;
                        continue;
                    }
                };
            match expected {
                None => {
                    expected = Some((
                        session.header.word_bytes,
                        session.header.payload_crc,
                        session.header.segments,
                    ));
                    incr = Some(IncrementalDecoder::new(
                        session.metadata.clone(),
                        session.header.final_states.clone(),
                        session.model.clone(),
                    )?);
                }
                Some((word_bytes, payload_crc, _)) => {
                    if session.header.word_bytes != word_bytes
                        || session.header.payload_crc != payload_crc
                    {
                        return Err(RecoilError::net(format!(
                            "node {node} serves different content for `{name}` \
                             (stream geometry or CRC disagrees with the original header); \
                             refusing to splice streams"
                        )));
                    }
                }
            }
            let decoder = match incr.as_mut() {
                Some(decoder) => decoder,
                None => return Err(RecoilError::net("decoder missing after first header")),
            };

            let mut node_bytes = 0u64;
            let mut died = false;
            while session.remaining_chunks() > 0 {
                match session.next_chunk() {
                    Ok(body) => {
                        // Chunk bodies are whole u16 words by
                        // construction, so the resume offset below is
                        // always word-aligned.
                        crc_state = update_crc32(crc_state, &body);
                        node_bytes += body.len() as u64;
                        words_received += body.len() as u64 / 2;
                        decoder.push_bytes(&body)?;
                        let ready = decoder.ready_symbols();
                        if ready > out.len() {
                            out.resize(ready, 0);
                        }
                        let before = decoder.decoded_segments();
                        decoder.decode_ready_segments(self.backend.as_ref(), &mut out)?;
                        if decoder.decoded_segments() > before && first_segment_nanos == 0 {
                            first_segment_nanos = start.elapsed().as_nanos() as u64;
                        }
                    }
                    Err(err) => {
                        died = true;
                        last_err = err;
                        break;
                    }
                }
            }
            attempts.push(FetchAttempt {
                node,
                from_word,
                chunk_bytes: node_bytes,
                completed: !died,
            });
            if died {
                // Mid-stream death: the failover the fabric exists for.
                self.mark_health(node, false);
                failovers += 1;
                if self.telemetry.counters_enabled() {
                    self.telemetry.counters.failovers.bump();
                }
                continue;
            }
            self.mark_health(node, true);

            let (word_bytes, payload_crc, segments) = match expected {
                Some(e) => e,
                None => return Err(RecoilError::net("stream finished without a header")),
            };
            if words_received * 2 != word_bytes {
                return Err(RecoilError::net(format!(
                    "fabric fetch of `{name}` ended short: {} of {word_bytes} bitstream bytes",
                    words_received * 2
                )));
            }
            if crc_state ^ 0xFFFF_FFFF != payload_crc {
                return Err(RecoilError::net(format!(
                    "bitstream payload checksum mismatch reassembling `{name}` across nodes"
                )));
            }
            if !decoder.is_finished() {
                return Err(RecoilError::net(format!(
                    "stream of `{name}` complete but only {} of {} segments decoded",
                    decoder.decoded_segments(),
                    decoder.num_segments()
                )));
            }
            out.truncate(decoder.ready_symbols());
            let total_nanos = start.elapsed().as_nanos() as u64;
            return Ok(FabricFetch {
                data: out,
                segments,
                attempts,
                failovers,
                first_segment_nanos,
                total_nanos,
            });
        }
        Err(last_err)
    }

    /// One promotion pass: every name the router has seen at least
    /// [`RouterConfig::promote_min_hits`] fetches of is replicated onto
    /// its next-best healthy rendezvous candidates until it has
    /// [`RouterConfig::replicas`] holders. Returns the number of
    /// (name, node) promotions performed. Runs automatically every
    /// [`RouterConfig::rebalance_interval`] fetches; call directly for
    /// deterministic tests.
    pub fn rebalance(&self) -> usize {
        // Replication fetches content through this same router; the
        // guard stops that inner fetch from recursing into another pass.
        if self.rebalancing.swap(true, Ordering::Acquire) {
            return 0;
        }
        let hot: Vec<String> = {
            let hits = self.hits.lock();
            let mut by_heat: Vec<(&String, u64)> = hits
                .iter()
                .filter(|&(_, &count)| count >= self.config.promote_min_hits)
                .map(|(name, &count)| (name, count))
                .collect();
            // Hottest first; ties broken by name so the pass order is
            // deterministic under a fixed workload.
            by_heat.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            by_heat.into_iter().map(|(name, _)| name.clone()).collect()
        };
        let mut promotions = 0;
        for name in hot {
            // Only router-published names carry a recorded encoder
            // config; anything else cannot be re-encoded identically.
            let Some(config) = self.published.lock().get(&name).cloned() else {
                continue;
            };
            while self.holders(&name).len() < self.config.replicas.max(1) {
                let holders = self.holders(&name);
                let target = self.candidates(&name).into_iter().find(|i| {
                    !holders.contains(i) && self.nodes[*i].healthy.load(Ordering::Relaxed)
                });
                let Some(target) = target else { break };
                if self.replicate(&name, &config, target).is_err() {
                    break; // node refused; retry on a later pass
                }
                self.promoted
                    .lock()
                    .entry(name.clone())
                    .or_default()
                    .push(target);
                promotions += 1;
                if self.telemetry.counters_enabled() {
                    self.telemetry.counters.replica_promotions.bump();
                }
            }
        }
        self.rebalancing.store(false, Ordering::Release);
        promotions
    }

    /// Copies `name` onto `target` by fetching the raw content from a
    /// current holder and re-publishing it with the recorded encoder
    /// config — deterministic encoding makes the replica's bitstream
    /// byte-identical, which keeps cross-node resume valid.
    fn replicate(
        &self,
        name: &str,
        config: &EncoderConfig,
        target: usize,
    ) -> Result<(), RecoilError> {
        let data = self.fetch_inner(name, u64::MAX)?.data;
        match self.nodes[target].client.publish(name, &data, config) {
            Ok(_) | Err(RecoilError::AlreadyPublished { .. }) => Ok(()),
            Err(err) => Err(err),
        }
    }
}
