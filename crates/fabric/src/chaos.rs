//! [`ChaosProxy`]: a deterministic, faulty TCP relay.
//!
//! [`recoil_net::FaultPlan`] injects faults inside the server's event
//! loop; the proxy injects them from *outside* the process, between a
//! real client and a real server — the network's side of the failure
//! story. A proxy listens on its own loopback port, relays every
//! connection to the target address, and applies one [`ProxyFault`] to
//! the server→client direction at exact byte counts, so the same test
//! sees the same torn frame on every run.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use recoil_core::RecoilError;

/// What the proxy does to the server→client byte stream. The
/// client→server direction always relays faithfully (requests get
/// through; responses suffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyFault {
    /// Faithful relay (control case).
    None,
    /// Accept every connection and immediately drop it — the client's
    /// HELLO is never read, so the close turns into a TCP reset.
    AcceptRst,
    /// Relay exactly this many response bytes, then sever both
    /// directions mid-frame.
    KillAfter(u64),
    /// After this many response bytes, stall the relay for the given
    /// duration before continuing faithfully.
    StallAfter(u64, Duration),
    /// Shred the response into writes of at most this many bytes —
    /// frame headers arrive torn across reads.
    Torn(usize),
}

/// A running chaos proxy; dropping or [`ChaosProxy::shutdown`]ing it
/// stops the relay threads.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// How long relay loops block in `read` before re-checking the stop
/// flag; bounds shutdown latency, not throughput.
const TICK: Duration = Duration::from_millis(25);

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port relaying to
    /// `target` with `fault` applied to every connection's responses.
    pub fn launch(target: SocketAddr, fault: ProxyFault) -> Result<Self, RecoilError> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| RecoilError::net(format!("chaos proxy bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| RecoilError::net(format!("chaos proxy local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RecoilError::net(format!("chaos proxy nonblocking: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, target, fault, &accept_stop);
        });
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should dial instead of the target.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins every relay thread. Idempotent (also
    /// runs on drop).
    pub fn shutdown(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

fn accept_loop(
    listener: &TcpListener,
    target: SocketAddr,
    fault: ProxyFault,
    stop: &Arc<AtomicBool>,
) {
    let mut relays: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                if fault == ProxyFault::AcceptRst {
                    // The client has already written HELLO into a socket
                    // we never read; dropping it makes the kernel answer
                    // with RST instead of a graceful FIN.
                    drop(client);
                    continue;
                }
                let Ok(server) = TcpStream::connect(target) else {
                    drop(client);
                    continue;
                };
                let up_stop = Arc::clone(stop);
                let down_stop = Arc::clone(stop);
                let (Ok(client_r), Ok(server_w)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                relays.push(std::thread::spawn(move || {
                    relay(client_r, server_w, ProxyFault::None, &up_stop);
                }));
                relays.push(std::thread::spawn(move || {
                    relay(server, client, fault, &down_stop);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for relay in relays {
        let _ = relay.join();
    }
}

/// Pumps bytes `src` → `dst` applying `fault` until EOF, error, a kill
/// threshold, or the stop flag.
fn relay(mut src: TcpStream, mut dst: TcpStream, fault: ProxyFault, stop: &AtomicBool) {
    let _ = src.set_read_timeout(Some(TICK));
    let mut relayed = 0u64;
    let mut stalled = false;
    let mut buf = [0u8; 16 * 1024];
    while !stop.load(Ordering::Acquire) {
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => break,
        };
        let mut chunk = &buf[..n];
        match fault {
            ProxyFault::KillAfter(at) => {
                // Truncate to the exact byte threshold, deliver, sever.
                let room = at.saturating_sub(relayed);
                if (chunk.len() as u64) >= room {
                    let keep = &chunk[..room as usize];
                    if !keep.is_empty() {
                        let _ = dst.write_all(keep);
                        let _ = dst.flush();
                    }
                    let _ = dst.shutdown(Shutdown::Both);
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
            }
            ProxyFault::StallAfter(at, pause) => {
                if !stalled && relayed + chunk.len() as u64 >= at {
                    stalled = true;
                    std::thread::sleep(pause);
                }
            }
            ProxyFault::Torn(cap) => {
                let cap = cap.max(1);
                while chunk.len() > cap {
                    if dst.write_all(&chunk[..cap]).is_err() || dst.flush().is_err() {
                        return;
                    }
                    relayed += cap as u64;
                    chunk = &chunk[cap..];
                }
            }
            ProxyFault::None | ProxyFault::AcceptRst => {}
        }
        if dst.write_all(chunk).is_err() {
            break;
        }
        let _ = dst.flush();
        relayed += chunk.len() as u64;
    }
    let _ = dst.shutdown(Shutdown::Both);
    let _ = src.shutdown(Shutdown::Both);
}
