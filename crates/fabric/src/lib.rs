//! Multi-node content fabric: rendezvous routing, hot-content
//! replication, and typed failover with segment-resume streaming.
//!
//! The paper's serving story (§1, §3.3) is a single content server that
//! shrinks metadata per request. This crate scales that sideways without
//! touching the wire protocol: a [`Fabric`] launches N independent
//! [`recoil_net::NetServer`] nodes (real loopback sockets, nothing
//! shared), and a client-side [`FabricRouter`] decides which node holds
//! which name and what to do when one dies.
//!
//! ## Placement
//!
//! Names map to nodes by **rendezvous (highest-random-weight) hashing**:
//! every node gets a deterministic score per name and the argmax holds
//! the content. Adding or losing a node moves only the names whose argmax
//! changed — no ring rebuild, no shared directory service. The router
//! additionally tracks per-name hit counts; under zipf-like demand (the
//! realistic case for content delivery) the hot head of the distribution
//! is **promoted** onto extra replicas ([`RouterConfig::replicas`] total
//! holders) by re-encoding on the target node. The encoder is
//! deterministic, so every replica serves a byte-identical stream — which
//! is what makes cross-node resume sound.
//!
//! ## Failover
//!
//! [`FabricRouter::fetch`] streams chunks from the best holder into an
//! [`recoil_core::IncrementalDecoder`], decoding segments as they become
//! resident. If the node dies mid-stream (connection severed, frame torn)
//! the router marks it unhealthy, picks the next holder, and re-issues
//! the fetch as a RESUME at the exact word offset it already holds —
//! already-decoded segments are never re-sent or re-decoded, and the
//! final bytes are verified (whole-stream CRC-32 cross-checked against
//! every node's TRANSMIT header) to be identical to an undisturbed
//! fetch. Recoil's split metadata is why this is nearly free: segment
//! readiness is a strict prefix of the word stream, so "how many words I
//! have" is the complete resume state.
//!
//! ## Chaos
//!
//! Failures are injected deterministically from both sides of the wire:
//! server-side via [`recoil_net::FaultPlan`] (seeded node-kill offsets,
//! accept-RST, delayed and torn writes) and client-side via the
//! [`ChaosProxy`] — a faulty TCP relay that can kill, stall, or shred a
//! stream at exact byte counts. The same plans drive the chaos test
//! suite and `bench net --chaos`, so failover cost is a number in
//! BENCH_net.json, not an anecdote.

#![forbid(unsafe_code)]

mod chaos;
mod cluster;
mod router;

pub use chaos::{ChaosProxy, ProxyFault};
pub use cluster::Fabric;
pub use router::{FabricFetch, FabricRouter, FetchAttempt, RouterConfig};
