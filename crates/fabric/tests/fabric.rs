//! Fabric integration tests: real loopback clusters, rendezvous routing,
//! zipf promotion, node kills, and telemetry/STATS consistency.

use recoil_core::{EncoderConfig, RecoilError};
use recoil_fabric::{Fabric, FabricRouter, RouterConfig};
use recoil_net::{NetClient, NetClientConfig, NetConfig};
use recoil_telemetry::TelemetryLevel;
use std::time::Duration;

fn sample(len: usize, seed: u32) -> Vec<u8> {
    (0..len as u32)
        .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 23) as u8)
        .collect()
}

fn enc(max_segments: u64) -> EncoderConfig {
    EncoderConfig {
        max_segments,
        ..EncoderConfig::default()
    }
}

fn node_config() -> NetConfig {
    NetConfig {
        workers: 2,
        chunk_bytes: 16 * 1024,
        telemetry: TelemetryLevel::Counters,
        ..NetConfig::default()
    }
}

fn router_config() -> RouterConfig {
    RouterConfig {
        replicas: 2,
        promote_min_hits: 3,
        rebalance_interval: 0, // manual passes keep the tests deterministic
        client: NetClientConfig {
            retry_budget: 1,
            retry_base_backoff: Duration::from_millis(2),
            ..NetClientConfig::default()
        },
        telemetry: TelemetryLevel::Counters,
    }
}

#[test]
fn publish_lands_on_the_rendezvous_primary_only() {
    let fabric = Fabric::launch(3, node_config()).unwrap();
    let router = FabricRouter::connect(&fabric.addrs(), router_config()).unwrap();
    let data = sample(60_000, 7);

    router.publish("solo", &data, &enc(8)).unwrap();
    let primary = router.primary("solo");
    for i in 0..fabric.len() {
        let items = router.node_stats(i).unwrap().items;
        assert_eq!(items, u64::from(i == primary), "node {i}");
    }

    let fetched = router.fetch("solo", 8).unwrap();
    assert_eq!(fetched.data, data);
    assert_eq!(fetched.failovers, 0);
    assert_eq!(fetched.attempts.len(), 1);
    assert_eq!(fetched.attempts[0].node, primary);
    assert!(fetched.first_segment_nanos > 0);
    assert!(fetched.total_nanos >= fetched.first_segment_nanos);
    fabric.shutdown();
}

#[test]
fn hot_content_promotes_and_survives_a_node_kill() {
    let mut fabric = Fabric::launch(3, node_config()).unwrap();
    let router = FabricRouter::connect(&fabric.addrs(), router_config()).unwrap();
    let data = sample(120_000, 11);

    router.publish("hot", &data, &enc(8)).unwrap();
    let primary = router.primary("hot");

    // Heat the name past the promotion threshold; a cold name stays
    // unreplicated, so promotion is demand-driven, not blanket.
    router.publish("cold", &sample(5_000, 3), &enc(4)).unwrap();
    for _ in 0..3 {
        assert_eq!(router.fetch("hot", 8).unwrap().data, data);
    }
    assert_eq!(router.rebalance(), 1);
    assert_eq!(router.holders("hot").len(), 2);
    assert_eq!(router.holders("cold").len(), 1);
    let replica = router.holders("hot")[1];
    assert_ne!(replica, primary);
    let replica_names: Vec<String> = fabric
        .node(replica)
        .unwrap()
        .content()
        .hit_counts()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    assert!(
        replica_names.contains(&"hot".to_string()),
        "{replica_names:?}"
    );
    assert_eq!(router.telemetry().counters.replica_promotions.get(), 1);

    // The server kept per-name popularity too (drives nothing yet on the
    // node side, but the counters must agree with demand).
    let served_hits = fabric
        .node(primary)
        .unwrap()
        .content()
        .hit_counts()
        .into_iter()
        .find(|(name, _)| name == "hot")
        .map(|(_, hits)| hits)
        .unwrap_or(0);
    assert!(served_hits >= 3, "primary saw {served_hits} hits");

    // Kill the primary: the fetch fails over to the promoted replica and
    // the decoded bytes are identical to the pre-kill fetches.
    fabric.kill(primary);
    let fetched = router.fetch("hot", 8).unwrap();
    assert_eq!(fetched.data, data);
    let served_by = fetched.attempts.last().unwrap();
    assert_eq!(served_by.node, replica);
    assert!(served_by.completed);
    assert!(!fetched.attempts[0].completed);
    assert_eq!(router.healthy_nodes(), 2);
    assert_eq!(router.telemetry().gauges.healthy_nodes.get(), 2);

    // Subsequent fetches go straight to the replica: the dead node is
    // unhealthy and sorts last.
    let again = router.fetch("hot", 8).unwrap();
    assert_eq!(again.attempts.len(), 1);
    assert_eq!(again.attempts[0].node, replica);
    fabric.shutdown();
}

#[test]
fn publish_routes_around_a_dead_primary() {
    let mut fabric = Fabric::launch(3, node_config()).unwrap();
    let router = FabricRouter::connect(&fabric.addrs(), router_config()).unwrap();
    let data = sample(40_000, 23);

    let primary = router.primary("later");
    fabric.kill(primary);
    // Publish discovers the dead primary (dial fails → unhealthy) and
    // re-routes to the next rendezvous candidate in one call.
    router.publish("later", &data, &enc(4)).unwrap();
    assert_eq!(router.healthy_nodes(), 2);
    assert!(router.holders("later").len() >= 2);
    let fetched = router.fetch("later", 4).unwrap();
    assert_eq!(fetched.data, data);
    assert!(fetched.attempts.last().unwrap().completed);
    fabric.shutdown();
}

#[test]
fn router_survives_a_node_that_is_down_at_connect_time() {
    let mut fabric = Fabric::launch(2, node_config()).unwrap();
    let addrs = fabric.addrs();
    fabric.kill(0);
    let router = FabricRouter::connect(&addrs, router_config()).unwrap();
    assert_eq!(router.healthy_nodes(), 1);
    let data = sample(30_000, 5);
    router.publish("up", &data, &enc(4)).unwrap();
    assert_eq!(router.fetch("up", 4).unwrap().data, data);
    fabric.shutdown();
}

/// Satellite regression: the new counters flow over the TELEMETRY wire
/// frame, and its busy/rejection accounting agrees with STATS.
#[test]
fn telemetry_frame_agrees_with_stats_on_busy_rejections() {
    let fabric = Fabric::launch(
        1,
        NetConfig {
            max_connections: 2,
            ..node_config()
        },
    )
    .unwrap();
    let addr = fabric.addr(0);

    // Fill both slots with idle raw connections, then watch a client's
    // dial get shed with the typed busy error.
    let hold_a = std::net::TcpStream::connect(addr).unwrap();
    let hold_b = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let shed = NetClient::connect_with(
        addr,
        NetClientConfig {
            retry_budget: 0,
            ..NetClientConfig::default()
        },
    );
    match shed {
        Err(RecoilError::Busy { retry_after_ms }) => {
            assert_eq!(retry_after_ms, NetConfig::default().busy_retry_after_ms)
        }
        other => panic!("expected a typed busy shed, got {other:?}"),
    }
    drop(hold_a);
    drop(hold_b);

    // The server frees the slots asynchronously; retry until it admits us.
    let client = (0..100)
        .find_map(|_| {
            std::thread::sleep(Duration::from_millis(10));
            NetClient::connect(addr).ok()
        })
        .expect("server admits connections again after the holders close");

    let stats = client.stats().unwrap();
    let telemetry = client.remote_telemetry().unwrap();
    let busy = telemetry.snapshot.counter("busy_rejections").unwrap();
    assert!(busy >= 1);
    assert_eq!(busy, stats.stats.rejected_connections);

    // The fabric-era instrument names all round-trip the wire.
    for name in ["failovers", "retries", "replica_promotions"] {
        assert_eq!(telemetry.snapshot.counter(name), Some(0), "{name}");
    }
    assert_eq!(telemetry.snapshot.gauge("healthy_nodes"), Some(0));
    fabric.shutdown();
}

/// Router-side counters: failovers and retries aggregate fleet-wide in
/// the router's shared telemetry handle.
#[test]
fn router_telemetry_counts_failovers_and_retries() {
    let mut fabric = Fabric::launch(2, node_config()).unwrap();
    let router = FabricRouter::connect(&fabric.addrs(), router_config()).unwrap();
    let data = sample(50_000, 31);
    router.publish("counted", &data, &enc(4)).unwrap();
    let holder = router.holders("counted")[0];
    let other = 1 - holder;

    // Replicate manually (via heat + rebalance) so the kill leaves a
    // serving copy.
    for _ in 0..3 {
        router.fetch("counted", 4).unwrap();
    }
    assert_eq!(router.rebalance(), 1);
    fabric.kill(holder);

    let fetched = router.fetch("counted", 4).unwrap();
    assert_eq!(fetched.data, data);
    assert_eq!(fetched.attempts.last().unwrap().node, other);
    assert_eq!(router.healthy_nodes(), 1);
    assert_eq!(router.telemetry().gauges.healthy_nodes.get(), 1);

    // An idempotent call against the dead node spends the client retry
    // budget, and those retries land in the router's shared counters.
    assert!(router.node_stats(holder).is_err());
    assert!(router.telemetry().counters.retries.get() >= 1);
    fabric.shutdown();
}
