//! Seeded chaos suite: node deaths at exact byte offsets, resume
//! correctness down to wire-level byte accounting, and client-side
//! faults through the chaos proxy.

use recoil_core::{EncoderConfig, RecoilError};
use recoil_fabric::{ChaosProxy, FabricRouter, ProxyFault, RouterConfig};
use recoil_net::{
    FaultPlan, Hello, NetClient, NetClientConfig, NetConfig, NetServer, NetServerHandle,
};
use recoil_server::ContentServer;
use recoil_telemetry::TelemetryLevel;
use std::sync::Arc;
use std::time::Duration;

const DATA_LEN: usize = 120_000;
const SEGMENTS: u64 = 8;
const FRAME_HDR: u64 = 5; // [type u8][len u32]
const CHUNK_SEQ: u64 = 4; // seq u32 prefix inside a CHUNK payload

fn sample(len: usize, seed: u32) -> Vec<u8> {
    (0..len as u32)
        .map(|i| ((i.wrapping_add(seed).wrapping_mul(2654435761)) >> 23) as u8)
        .collect()
}

fn enc() -> EncoderConfig {
    EncoderConfig {
        max_segments: SEGMENTS,
        ..EncoderConfig::default()
    }
}

fn node_config(fault: Option<FaultPlan>) -> NetConfig {
    NetConfig {
        workers: 2,
        chunk_bytes: 16 * 1024,
        telemetry: TelemetryLevel::Counters,
        fault_plan: fault,
        ..NetConfig::default()
    }
}

fn start(fault: Option<FaultPlan>) -> NetServerHandle {
    NetServer::bind(
        Arc::new(ContentServer::new()),
        "127.0.0.1:0",
        node_config(fault),
    )
    .unwrap()
}

fn router_config() -> RouterConfig {
    RouterConfig {
        rebalance_interval: 0,
        client: NetClientConfig {
            retry_budget: 0,
            ..NetClientConfig::default()
        },
        ..RouterConfig::default()
    }
}

/// Wire geometry of one undisturbed fetch: per-chunk body sizes plus the
/// response-byte offset where the first chunk starts, measured off a
/// clean server so fault offsets can be computed exactly.
struct Geometry {
    /// Server→client bytes before the first CHUNK frame (HELLO reply +
    /// TRANSMIT frame).
    prefix: u64,
    /// CHUNK body sizes in order (whole words each).
    bodies: Vec<u64>,
    /// Total bitstream bytes (Σ bodies, cross-checked with the header).
    word_bytes: u64,
}

impl Geometry {
    fn measure(data: &[u8]) -> Self {
        let server = start(None);
        let client = NetClient::connect(server.addr()).unwrap();
        client.publish("probe", data, &enc()).unwrap();
        let mut session = client.start_fetch("probe", SEGMENTS, 0).unwrap();
        let hello_len = Hello::ours().encode().len() as u64;
        let transmit_len = session.header.encode().len() as u64;
        let word_bytes = session.header.word_bytes;
        let mut bodies = Vec::new();
        while session.remaining_chunks() > 0 {
            bodies.push(session.next_chunk().unwrap().len() as u64);
        }
        assert_eq!(bodies.iter().sum::<u64>(), word_bytes);
        assert!(bodies.len() >= 4, "sweep needs several chunks");
        server.shutdown();
        Self {
            prefix: (FRAME_HDR + hello_len) + (FRAME_HDR + transmit_len),
            bodies,
            word_bytes,
        }
    }

    /// Total server→client bytes of the whole response.
    fn total(&self) -> u64 {
        self.prefix
            + self
                .bodies
                .iter()
                .map(|b| FRAME_HDR + CHUNK_SEQ + b)
                .sum::<u64>()
    }

    /// Cumulative body-byte prefix sums — every legal resume offset (in
    /// bitstream bytes) is one of these, because chunks complete whole
    /// segments.
    fn boundaries(&self) -> Vec<u64> {
        let mut acc = 0;
        let mut out = vec![0];
        for b in &self.bodies {
            acc += b;
            out.push(acc);
        }
        out
    }
}

/// Runs one kill-at-`cut` failover scenario: node 0 (the rendezvous
/// primary for the chosen name) severs every connection after exactly
/// `cut` response bytes; node 1 is clean and holds an identical copy.
/// Returns the completed fetch for assertions.
fn fetch_with_kill_at(data: &[u8], cut: u64) -> recoil_fabric::FabricFetch {
    let killer = start(Some(FaultPlan::kill_at(cut)));
    let clean = start(None);
    let router = FabricRouter::connect(&[killer.addr(), clean.addr()], router_config()).unwrap();
    // Pick a name whose rendezvous primary is the faulty node, so the
    // fetch must start there.
    let name = (0..256)
        .map(|k| format!("cut-{k}"))
        .find(|n| router.primary(n) == 0)
        .expect("some name lands on node 0");
    // Publish byte-identical copies directly (the deterministic encoder
    // guarantees both nodes serve the same stream).
    for handle in [&killer, &clean] {
        let publisher = NetClient::connect(handle.addr()).unwrap();
        publisher.publish(&name, data, &enc()).unwrap();
    }
    let fetched = router.fetch(&name, SEGMENTS).unwrap();
    killer.shutdown();
    clean.shutdown();
    fetched
}

/// The satellite corpus test: kill the serving node at every chunk
/// (= segment-group) boundary, mid-chunk, inside the TRANSMIT header,
/// inside a CHUNK frame header, and past the end — the resumed decode
/// must be byte-identical every time, and the wire-level byte accounting
/// must show no word was ever served twice.
#[test]
fn kill_sweep_resumes_byte_identical_with_no_resends() {
    let data = sample(DATA_LEN, 42);
    let geo = Geometry::measure(&data);
    let boundaries = geo.boundaries();

    let mut cuts = vec![
        geo.prefix - 7,     // torn TRANSMIT header
        geo.prefix + 4,     // torn first CHUNK frame header
        geo.total() + 4096, // beyond the end: the kill never fires
    ];
    let mut acc = geo.prefix;
    for body in &geo.bodies {
        cuts.push(acc + FRAME_HDR + CHUNK_SEQ + body / 2); // mid-chunk
        acc += FRAME_HDR + CHUNK_SEQ + body;
        cuts.push(acc); // chunk boundary == segment boundary
    }

    for &cut in &cuts {
        let fetched = fetch_with_kill_at(&data, cut);
        assert_eq!(fetched.data, data, "cut at byte {cut}");
        assert_eq!(fetched.segments, SEGMENTS);

        // Wire-level accounting: every word arrived exactly once, each
        // resume continued at precisely the words already held, and
        // every resume offset is a segment-aligned chunk boundary.
        let delivered: u64 = fetched.attempts.iter().map(|a| a.chunk_bytes).sum();
        assert_eq!(delivered, geo.word_bytes, "cut at byte {cut}");
        for w in fetched.attempts.windows(2) {
            assert_eq!(
                w[1].from_word,
                w[0].from_word + w[0].chunk_bytes / 2,
                "cut at byte {cut}: resume must skip exactly the delivered words"
            );
        }
        for resume in &fetched.attempts[1..] {
            assert!(
                boundaries.contains(&(resume.from_word * 2)),
                "cut at byte {cut}: resume offset {} is not a segment boundary",
                resume.from_word * 2
            );
        }

        if cut >= geo.total() {
            // The kill threshold sits past the response: undisturbed.
            assert_eq!(fetched.failovers, 0, "cut at byte {cut}");
            assert_eq!(fetched.attempts.len(), 1);
            assert!(fetched.attempts[0].completed);
        } else if cut < geo.prefix {
            // Died before the stream started: a refetch, not a resume.
            assert_eq!(fetched.failovers, 0, "cut at byte {cut}");
            assert_eq!(fetched.attempts.len(), 2);
            assert_eq!(fetched.attempts[1].from_word, 0);
        } else {
            // Mid-stream death: exactly one failover, resumed partway.
            assert_eq!(fetched.failovers, 1, "cut at byte {cut}");
            assert_eq!(fetched.attempts.len(), 2);
            assert!(!fetched.attempts[0].completed);
            assert!(fetched.attempts[1].completed);
        }
    }
}

/// Seeded kills are reproducible end to end: the same seed produces the
/// same cut, the same attempt trace, and the same resume offset.
#[test]
fn seeded_kill_replays_identically() {
    let data = sample(DATA_LEN, 9);
    let geo = Geometry::measure(&data);
    let plan = FaultPlan::seeded_kill(0xC0FFEE, geo.prefix, geo.total());
    let cut = match plan.kill_after_write_bytes {
        Some(cut) => cut,
        None => unreachable!("seeded_kill always arms a cut"),
    };
    let first = fetch_with_kill_at(&data, cut);
    let second = fetch_with_kill_at(&data, cut);
    assert_eq!(first.attempts, second.attempts);
    assert_eq!(first.data, data);
    assert_eq!(second.data, data);
    assert_eq!(first.failovers, 1);
}

/// A node that accepts and immediately resets is routed around.
#[test]
fn accept_rst_node_is_routed_around() {
    let rster = start(Some(FaultPlan::accept_rst()));
    let clean = start(None);
    let router = FabricRouter::connect(&[rster.addr(), clean.addr()], router_config()).unwrap();
    let name = (0..256)
        .map(|k| format!("rst-{k}"))
        .find(|n| router.primary(n) == 0)
        .unwrap();
    let data = sample(30_000, 3);
    NetClient::connect(clean.addr())
        .unwrap()
        .publish(&name, &data, &enc())
        .unwrap();

    let fetched = router.fetch(&name, 4).unwrap();
    assert_eq!(fetched.data, data);
    assert!(!fetched.attempts[0].completed);
    assert_eq!(fetched.attempts[0].chunk_bytes, 0);
    assert_eq!(fetched.attempts.last().unwrap().node, 1);
    assert_eq!(router.healthy_nodes(), 1);
    rster.shutdown();
    clean.shutdown();
}

/// Dribbled (delayed, torn) server writes still produce a byte-identical
/// decode — frame reassembly is cut-point agnostic.
#[test]
fn dribbled_writes_decode_byte_identical() {
    let server = start(Some(FaultPlan::dribble(1024, Duration::from_micros(200))));
    let data = sample(40_000, 17);
    let client = NetClient::connect(server.addr()).unwrap();
    client.publish("dribble", &data, &enc()).unwrap();
    assert_eq!(client.fetch_and_decode("dribble", SEGMENTS).unwrap(), data);
    server.shutdown();
}

/// Client-side faults through the chaos proxy: kills surface as typed
/// transport errors, tears and stalls are survived transparently.
#[test]
fn chaos_proxy_faults_behave_as_typed() {
    let server = start(None);
    let data = sample(30_000, 29);
    NetClient::connect(server.addr())
        .unwrap()
        .publish("proxied", &data, &enc())
        .unwrap();

    // Torn relay: tiny fragmented writes, identical decode.
    let torn = ChaosProxy::launch(server.addr(), ProxyFault::Torn(9)).unwrap();
    let client = NetClient::connect(torn.addr()).unwrap();
    assert_eq!(client.fetch_and_decode("proxied", 4).unwrap(), data);
    torn.shutdown();

    // Stalled relay: a pause mid-stream, still completes.
    let stall = ChaosProxy::launch(
        server.addr(),
        ProxyFault::StallAfter(2_000, Duration::from_millis(120)),
    )
    .unwrap();
    let client = NetClient::connect(stall.addr()).unwrap();
    assert_eq!(client.fetch_and_decode("proxied", 4).unwrap(), data);
    stall.shutdown();

    // Killed relay: a no-retry client sees a transport error.
    let kill = ChaosProxy::launch(server.addr(), ProxyFault::KillAfter(2_000)).unwrap();
    let client = NetClient::connect_with(
        kill.addr(),
        NetClientConfig {
            retry_budget: 0,
            ..NetClientConfig::default()
        },
    )
    .unwrap();
    match client.fetch_and_decode("proxied", 4) {
        Err(RecoilError::Net { .. }) => {}
        other => panic!("expected a transport error through the killed proxy, got {other:?}"),
    }
    kill.shutdown();

    // Reset-on-accept relay: the dial itself fails.
    let rst = ChaosProxy::launch(server.addr(), ProxyFault::AcceptRst).unwrap();
    assert!(NetClient::connect(rst.addr()).is_err());
    rst.shutdown();
    server.shutdown();
}
