//! Baseline (B): the conventional "partitioning symbols" approach
//! (paper §2.3, Figure 2).
//!
//! The input symbol sequence is cut into `P` contiguous sub-sequences
//! *before* encoding; each is encoded by a completely independent group of
//! W-way interleaved rANS coders. The container concatenates the per-chunk
//! bitstreams behind an offset table. Decoding parallelizes trivially across
//! chunks — but the partition count is **fixed at encode time**: a client
//! with less parallelism still downloads every chunk's fixed overhead
//! (final states + table entry), which is exactly the inflexibility Recoil
//! removes.

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

mod container;
mod decode;
mod encode;

pub use container::ConventionalContainer;
pub use decode::{decode_conventional, decode_conventional_into};
pub use encode::{encode_conventional, OffsetProvider};
