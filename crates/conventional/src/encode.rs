//! Partition-then-encode (paper §2.3).

use crate::container::ConventionalContainer;
use recoil_models::{ModelProvider, Symbol};
use recoil_rans::{InterleavedEncoder, NullSink};

/// Adapts a provider so a chunk encoded from local position 0 still sees its
/// global per-symbol models — required for adaptive (hyperprior) coding,
/// where the distribution is keyed by absolute symbol index.
pub struct OffsetProvider<'a, P: ModelProvider> {
    inner: &'a P,
    base: u64,
}

impl<'a, P: ModelProvider> OffsetProvider<'a, P> {
    /// Provider translating local positions by `base`.
    pub fn new(inner: &'a P, base: u64) -> Self {
        Self { inner, base }
    }
}

impl<P: ModelProvider> ModelProvider for OffsetProvider<'_, P> {
    #[inline]
    fn quant_bits(&self) -> u32 {
        self.inner.quant_bits()
    }
    #[inline]
    fn stats(&self, pos: u64, sym: u16) -> (u32, u32) {
        self.inner.stats(self.base + pos, sym)
    }
    #[inline]
    fn lookup(&self, pos: u64, slot: u32) -> (u16, u32, u32) {
        self.inner.lookup(self.base + pos, slot)
    }
}

/// Splits `data` into `partitions` near-equal contiguous sub-sequences and
/// encodes each with an independent `ways`-way interleaved coder group.
pub fn encode_conventional<S: Symbol, P: ModelProvider>(
    data: &[S],
    provider: &P,
    ways: u32,
    partitions: usize,
) -> ConventionalContainer {
    assert!(partitions >= 1);
    let partitions = partitions.min(data.len().max(1));
    let n = data.len();
    let mut chunks = Vec::with_capacity(partitions);
    let mut start = 0usize;
    for p in 0..partitions {
        let end = (n as u64 * (p as u64 + 1) / partitions as u64) as usize;
        let local = OffsetProvider::new(provider, start as u64);
        let mut enc = InterleavedEncoder::new(&local, ways);
        enc.encode_all(&data[start..end], &mut NullSink);
        chunks.push(enc.finish());
        start = end;
    }
    ConventionalContainer { chunks, ways }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::{CdfTable, StaticModelProvider};

    fn sample(len: usize) -> Vec<u8> {
        (0..len as u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 23) as u8)
            .collect()
    }

    #[test]
    fn partitions_cover_input_evenly() {
        let data = sample(100_003);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let c = encode_conventional(&data, &p, 32, 16);
        assert_eq!(c.partitions(), 16);
        assert_eq!(c.num_symbols(), 100_003);
        let sizes: Vec<u64> = c.chunks.iter().map(|ch| ch.num_symbols).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(hi - lo <= 1, "uneven partition: {lo}..{hi}");
    }

    #[test]
    fn more_partitions_than_symbols_clamps() {
        let data = sample(5);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 8));
        let c = encode_conventional(&data, &p, 4, 100);
        assert_eq!(c.partitions(), 5);
        assert_eq!(c.num_symbols(), 5);
    }

    #[test]
    fn overhead_grows_with_partitions_figure3_shape() {
        // Figure 3: more sub-sequences → larger file, roughly linearly.
        let data = sample(500_000);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let base = encode_conventional(&data, &p, 32, 1).payload_bytes();
        let p16 = encode_conventional(&data, &p, 32, 16).payload_bytes();
        let p128 = encode_conventional(&data, &p, 32, 128).payload_bytes();
        assert!(p16 > base);
        assert!(p128 > p16);
        let per_chunk = (p128 - base) as f64 / 127.0;
        assert!(
            per_chunk > 100.0 && per_chunk < 200.0,
            "per-chunk cost {per_chunk}"
        );
    }
}
