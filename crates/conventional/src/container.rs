//! Container for partitioned streams: offset table + concatenated chunks.

use recoil_rans::EncodedStream;

/// `P` independent interleaved streams over consecutive symbol ranges.
#[derive(Debug, Clone)]
pub struct ConventionalContainer {
    /// Per-partition streams, in symbol order.
    pub chunks: Vec<EncodedStream>,
    /// Interleave width shared by all chunks.
    pub ways: u32,
}

impl ConventionalContainer {
    /// Total symbols across all partitions.
    pub fn num_symbols(&self) -> u64 {
        self.chunks.iter().map(|c| c.num_symbols).sum()
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.chunks.len()
    }

    /// Starting symbol position of each chunk plus the total (len P+1).
    pub fn symbol_bounds(&self) -> Vec<u64> {
        let mut b = Vec::with_capacity(self.chunks.len() + 1);
        let mut acc = 0u64;
        b.push(0);
        for c in &self.chunks {
            acc += c.num_symbols;
            b.push(acc);
        }
        b
    }

    /// Per-chunk fixed cost in the container: one offset-table entry
    /// (u32 word offset + u32 symbol count) plus the chunk's `W` u32 final
    /// states — "the initial setup cost of rANS codecs, the final states,
    /// etc." (§2.3) that grows linearly with the partition count.
    pub fn per_chunk_fixed_bytes(&self) -> u64 {
        8 + self.ways as u64 * 4
    }

    /// Total payload bytes: global header, offset table, states, words.
    pub fn payload_bytes(&self) -> u64 {
        let header = 8 + 4 + 1 + 1 + 2; // total symbols, chunk count, ways, n, pad
        let words: u64 = self.chunks.iter().map(|c| c.words.len() as u64 * 2).sum();
        header + self.chunks.len() as u64 * self.per_chunk_fixed_bytes() + words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_rans::params::INITIAL_STATE;

    fn chunk(words: usize, symbols: u64, ways: u32) -> EncodedStream {
        EncodedStream {
            words: vec![0; words],
            final_states: vec![INITIAL_STATE; ways as usize],
            num_symbols: symbols,
            ways,
        }
    }

    #[test]
    fn bounds_accumulate() {
        let c = ConventionalContainer {
            chunks: vec![chunk(4, 100, 8), chunk(6, 120, 8), chunk(2, 30, 8)],
            ways: 8,
        };
        assert_eq!(c.symbol_bounds(), vec![0, 100, 220, 250]);
        assert_eq!(c.num_symbols(), 250);
        assert_eq!(c.partitions(), 3);
    }

    #[test]
    fn payload_grows_linearly_with_partitions() {
        let mk = |p: usize| ConventionalContainer {
            chunks: (0..p).map(|_| chunk(100, 1000, 32)).collect(),
            ways: 32,
        };
        let c1 = mk(1).payload_bytes();
        let c10 = mk(10).payload_bytes();
        // Same total words; difference is 9 chunks of fixed cost.
        assert_eq!(c10 - c1 - 9 * 200, 9 * mk(1).per_chunk_fixed_bytes());
    }
}
