//! Parallel decode of partitioned streams: one task per chunk.

use crate::container::ConventionalContainer;
use crate::encode::OffsetProvider;
use parking_lot::Mutex;
use recoil_models::{ModelProvider, Symbol};
use recoil_parallel::ThreadPool;
use recoil_rans::{decode_interleaved_into, RansError};

/// Decodes all partitions, optionally on a pool, into a fresh buffer.
pub fn decode_conventional<S: Symbol, P: ModelProvider>(
    container: &ConventionalContainer,
    provider: &P,
    pool: Option<&ThreadPool>,
) -> Result<Vec<S>, RansError> {
    let mut out = vec![S::from_u16(0); container.num_symbols() as usize];
    decode_conventional_into(container, provider, pool, &mut out)?;
    Ok(out)
}

/// [`decode_conventional`] into a caller-provided buffer.
pub fn decode_conventional_into<S: Symbol, P: ModelProvider>(
    container: &ConventionalContainer,
    provider: &P,
    pool: Option<&ThreadPool>,
    out: &mut [S],
) -> Result<(), RansError> {
    if out.len() as u64 != container.num_symbols() {
        return Err(RansError::MalformedStream(format!(
            "output buffer holds {} symbols, container has {}",
            out.len(),
            container.num_symbols()
        )));
    }
    let bounds = container.symbol_bounds();
    let tasks = container.chunks.len();

    let mut segments: Vec<Mutex<&mut [S]>> = Vec::with_capacity(tasks);
    let mut rest = out;
    for m in 0..tasks {
        let (seg, tail) = rest.split_at_mut((bounds[m + 1] - bounds[m]) as usize);
        segments.push(Mutex::new(seg));
        rest = tail;
    }

    let first_error: Mutex<Option<RansError>> = Mutex::new(None);
    let run_task = |m: usize| {
        let local = OffsetProvider::new(provider, bounds[m]);
        let mut seg = segments[m].lock();
        if let Err(e) = decode_interleaved_into(&container.chunks[m], &local, &mut seg) {
            let mut slot = first_error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    };

    match pool {
        Some(pool) if tasks > 1 => pool.run(tasks, run_task),
        _ => (0..tasks).for_each(run_task),
    }
    match first_error.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_conventional;
    use recoil_models::{CdfTable, StaticModelProvider};

    fn sample(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i ^ seed).wrapping_mul(2654435761) >> 23) as u8)
            .collect()
    }

    #[test]
    fn round_trip_serial_and_parallel() {
        let data = sample(250_000, 0);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let c = encode_conventional(&data, &p, 32, 16);
        let serial: Vec<u8> = decode_conventional(&c, &p, None).unwrap();
        assert_eq!(serial, data);
        let pool = ThreadPool::new(7);
        let parallel: Vec<u8> = decode_conventional(&c, &p, Some(&pool)).unwrap();
        assert_eq!(parallel, data);
    }

    #[test]
    fn round_trip_gpu_scale_partitions() {
        let data = sample(400_000, 1);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let c = encode_conventional(&data, &p, 32, 2176);
        assert_eq!(c.partitions(), 2176);
        let pool = ThreadPool::new(7);
        let got: Vec<u8> = decode_conventional(&c, &p, Some(&pool)).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn adaptive_models_respect_global_positions() {
        use recoil_models::{GaussianScaleBank, LatentModelProvider, LatentSpec};
        use std::sync::Arc;
        let bank = Arc::new(GaussianScaleBank::build(12, 256, 8, 0.5, 32.0));
        let count = 50_000usize;
        let specs: Vec<LatentSpec> = (0..count)
            .map(|i| LatentSpec {
                mean: 3000 + (i % 512) as u16,
                scale_idx: (i % 8) as u8,
            })
            .collect();
        let p = LatentModelProvider::new(bank, specs.clone());
        let data: Vec<u16> = (0..count)
            .map(|i| {
                let d = ((i as i64).wrapping_mul(40503) % 21) - 10;
                p.clamp_to_window(specs[i], specs[i].mean as i64 + d)
            })
            .collect();
        let c = encode_conventional(&data, &p, 32, 13);
        let got: Vec<u16> = decode_conventional(&c, &p, None).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn wrong_buffer_rejected() {
        let data = sample(1000, 2);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 8));
        let c = encode_conventional(&data, &p, 4, 4);
        let mut bad = vec![0u8; 999];
        assert!(decode_conventional_into(&c, &p, None, &mut bad).is_err());
    }
}
