//! Kernel selection with runtime CPU-feature detection.

/// Which decode kernel to run. The paper's implementations (2)–(4) map to
/// `Avx2`, `Avx512`, and (via the thread pool at 2176 splits) the GPU-sim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar reference (paper implementation (1)).
    Scalar,
    /// 8 lanes × 4 unroll (paper implementation (2)).
    Avx2,
    /// 16 lanes × 2 unroll (paper implementation (3)).
    Avx512,
}

impl Kernel {
    /// True if this kernel can run on the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The fastest kernel available on this machine ("(2) and (3) can be
    /// selected based on the target platform's AVX support").
    pub fn best() -> Kernel {
        if Kernel::Avx512.is_available() {
            Kernel::Avx512
        } else if Kernel::Avx2.is_available() {
            Kernel::Avx2
        } else {
            Kernel::Scalar
        }
    }

    /// All kernels runnable here, for exhaustive equivalence tests.
    pub fn all_available() -> Vec<Kernel> {
        [Kernel::Scalar, Kernel::Avx2, Kernel::Avx512]
            .into_iter()
            .filter(|k| k.is_available())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        assert!(Kernel::Scalar.is_available());
        assert!(!Kernel::all_available().is_empty());
    }

    #[test]
    fn best_is_available() {
        assert!(Kernel::best().is_available());
    }
}
