//! The static-model view the kernels gather from.

use recoil_models::{DecodeTables, PackedLut, StaticModelProvider, WideLut};

/// Borrowed decode tables in kernel-friendly form.
#[derive(Debug, Clone, Copy)]
pub enum SimdModel<'a> {
    /// One-gather packed LUT (8-bit symbols, `n <= 12`):
    /// `cdf | freq << 12 | sym << 24` per slot.
    Packed {
        /// `2^n` packed entries.
        lut: &'a [u32],
        /// Quantization level.
        n: u32,
    },
    /// Two-gather wide LUT: `inv[slot] -> sym`, `ff[sym] = freq << 16 | cdf`.
    Wide {
        /// Slot→symbol (with one trailing padding entry for 32-bit gathers).
        inv: &'a [u16],
        /// Per-symbol packed frequency/cdf.
        ff: &'a [u32],
        /// Quantization level.
        n: u32,
    },
}

impl<'a> SimdModel<'a> {
    /// Kernel view of a provider's decode tables.
    pub fn from_provider(provider: &'a StaticModelProvider) -> Self {
        Self::from_tables(provider.decode_tables())
    }

    /// Kernel view of raw decode tables.
    pub fn from_tables(tables: &'a DecodeTables) -> Self {
        match tables {
            DecodeTables::Packed(p) => Self::from_packed(p),
            DecodeTables::Wide(w) => Self::from_wide(w),
        }
    }

    /// View of a packed LUT.
    pub fn from_packed(p: &'a PackedLut) -> Self {
        SimdModel::Packed {
            lut: p.entries(),
            n: p.quant_bits(),
        }
    }

    /// View of a wide LUT.
    pub fn from_wide(w: &'a WideLut) -> Self {
        SimdModel::Wide {
            inv: w.inv(),
            ff: w.ff(),
            n: w.quant_bits(),
        }
    }

    /// Quantization level `n`.
    #[inline(always)]
    pub fn quant_bits(&self) -> u32 {
        match self {
            SimdModel::Packed { n, .. } | SimdModel::Wide { n, .. } => *n,
        }
    }

    /// Scalar lookup `(sym, freq, cdf)` — the reference the kernels mirror.
    #[inline(always)]
    pub fn lookup(&self, slot: u32) -> (u16, u32, u32) {
        match *self {
            SimdModel::Packed { lut, .. } => {
                let e = lut[slot as usize];
                ((e >> 24) as u16, (e >> 12) & 0xFFF, e & 0xFFF)
            }
            SimdModel::Wide { inv, ff, .. } => {
                let s = inv[slot as usize];
                let e = ff[s as usize];
                (s, e >> 16, e & 0xFFFF)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::CdfTable;

    #[test]
    fn views_match_underlying_tables() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 97) as u8).collect();
        for n in [11u32, 14] {
            let t = CdfTable::of_bytes(&data, n);
            let tables = DecodeTables::build(&t);
            let m = SimdModel::from_tables(&tables);
            assert_eq!(m.quant_bits(), n);
            for slot in (0..(1u32 << n)).step_by(13) {
                assert_eq!(m.lookup(slot), tables.lookup(slot));
            }
        }
    }
}
