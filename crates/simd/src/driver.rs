//! Segment/stream/parallel decode drivers on top of the group kernels.
//!
//! The vector kernels run only on aligned 32-symbol groups away from the
//! stream head (memory guards); everything else — group-unaligned segment
//! edges, the last few words of the stream — falls back to scalar steps
//! with identical semantics. SIMD drivers support static models (the
//! adaptive hyperprior path stays on the scalar trait-based decoder, as the
//! per-position model indirection defeats flat gathers).

use crate::kernel::Kernel;
use crate::model::SimdModel;
use crate::scalar::{scalar_group, scalar_step};
use parking_lot::Mutex;
use recoil_conventional::ConventionalContainer;
use recoil_core::{sync_split_states, validate_segment_decode, RecoilMetadata};
use recoil_models::{StaticModelProvider, Symbol};
use recoil_parallel::ThreadPool;
use recoil_rans::{EncodedStream, RansError};
use std::ops::Range;

/// Words that must remain below the cursor for a vector group (underread
/// guard: four sub-registers consume at most 32 words).
const MIN_WORDS_BELOW: isize = 64;
/// Words that must remain above the cursor (overread guard: the widest
/// renorm load touches 16 u16 past the base).
const OVERREAD_WORDS: isize = 16;

/// Decodes positions `lo .. lo + out.len()` (descending) of a 32-way
/// interleaved stream, starting from `states` and backward word cursor
/// `next_read`. Returns the cursor after the segment.
///
/// This is the building block shared by the single-thread, Recoil and
/// Conventional drivers; `lo` need not be group-aligned.
pub fn decode_segment<S: Symbol>(
    kernel: Kernel,
    model: &SimdModel<'_>,
    words: &[u16],
    next_read: Option<u64>,
    states: &mut [u32; 32],
    lo: u64,
    out: &mut [S],
) -> Result<Option<u64>, RansError> {
    let n = model.quant_bits();
    let mask = (1u32 << n) - 1;
    let mut p: isize = match next_read {
        Some(o) => {
            debug_assert!((o as usize) < words.len());
            o as isize
        }
        None => -1,
    };
    let hi = lo + out.len() as u64;
    let mut pos = hi;

    // Scalar head down to a group boundary.
    while pos > lo && !pos.is_multiple_of(32) {
        pos -= 1;
        let sym = scalar_step(model, words, &mut p, states, pos, n, mask)?;
        out[(pos - lo) as usize] = S::from_u16(sym);
    }

    // Vector main loop over full groups.
    let mut buf = [0u16; 32];
    while pos >= lo + 32 {
        let base = pos - 32;
        let vector_ok = !matches!(kernel, Kernel::Scalar)
            && p >= MIN_WORDS_BELOW
            && p + OVERREAD_WORDS <= words.len() as isize;
        if vector_ok {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: feature availability is encoded in `kernel` (checked
            // at construction); the cursor guards above keep every load in
            // bounds.
            unsafe {
                match kernel {
                    Kernel::Avx2 => crate::avx2::group_avx2(
                        model,
                        words.as_ptr(),
                        &mut p,
                        states,
                        n,
                        mask,
                        &mut buf,
                    ),
                    Kernel::Avx512 => crate::avx512::group_avx512(
                        model,
                        words.as_ptr(),
                        &mut p,
                        states,
                        n,
                        mask,
                        &mut buf,
                    ),
                    Kernel::Scalar => unreachable!(),
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            scalar_group(model, words, &mut p, states, base, n, mask, &mut buf)?;
        } else {
            scalar_group(model, words, &mut p, states, base, n, mask, &mut buf)?;
        }
        let seg = &mut out[(base - lo) as usize..][..32];
        for (o, &s) in seg.iter_mut().zip(buf.iter()) {
            *o = S::from_u16(s);
        }
        pos = base;
    }

    // Scalar tail below the last full group.
    while pos > lo {
        pos -= 1;
        let sym = scalar_step(model, words, &mut p, states, pos, n, mask)?;
        out[(pos - lo) as usize] = S::from_u16(sym);
    }
    Ok(if p < 0 { None } else { Some(p as u64) })
}

fn require_32_ways(ways: u32) -> Result<(), RansError> {
    if ways != 32 {
        return Err(RansError::MalformedStream(format!(
            "SIMD kernels require the 32-way interleave, stream has {ways}"
        )));
    }
    Ok(())
}

fn states_array(states: &[u32]) -> [u32; 32] {
    let mut a = [0u32; 32];
    a.copy_from_slice(states);
    a
}

/// Baseline (A) with SIMD: single-thread full-stream decode.
pub fn decode_interleaved_simd<S: Symbol>(
    kernel: Kernel,
    stream: &EncodedStream,
    model: &SimdModel<'_>,
    out: &mut [S],
) -> Result<(), RansError> {
    stream.validate()?;
    require_32_ways(stream.ways)?;
    if out.len() as u64 != stream.num_symbols {
        return Err(RansError::MalformedStream("output length mismatch".into()));
    }
    let mut states = states_array(&stream.final_states);
    let next = (!stream.words.is_empty()).then(|| stream.words.len() as u64 - 1);
    decode_segment(kernel, model, &stream.words, next, &mut states, 0, out)?;
    Ok(())
}

/// Recoil parallel decode with SIMD kernels: scalar three-phase sync per
/// split, vector Decoding/Cross-Boundary phases.
#[deprecated(
    since = "0.1.0",
    note = "use `recoil_core::codec::Codec::decode` with an `Avx2Backend`, `Avx512Backend`, \
            or `AutoBackend` from `recoil_simd`"
)]
pub fn decode_recoil_simd<S: Symbol>(
    kernel: Kernel,
    stream: &EncodedStream,
    meta: &RecoilMetadata,
    provider: &StaticModelProvider,
    pool: Option<&ThreadPool>,
    out: &mut [S],
) -> Result<(), RansError> {
    run_recoil_simd(kernel, stream, meta, provider, pool, out)
}

/// The SIMD Recoil decode engine behind both [`crate::backend`] and the
/// deprecated [`decode_recoil_simd`] shim.
pub(crate) fn run_recoil_simd<S: Symbol>(
    kernel: Kernel,
    stream: &EncodedStream,
    meta: &RecoilMetadata,
    provider: &StaticModelProvider,
    pool: Option<&ThreadPool>,
    out: &mut [S],
) -> Result<(), RansError> {
    // Whole-stream contract: exact output length, like the scalar engine
    // (the segment-range engine below only requires coverage).
    if out.len() as u64 != stream.num_symbols {
        return Err(RansError::MalformedStream("output length mismatch".into()));
    }
    run_recoil_simd_segments(
        kernel,
        stream,
        meta,
        provider,
        pool,
        0..meta.num_segments(),
        out,
    )
}

/// Segment-range variant of [`run_recoil_simd`]: decodes only the metadata
/// segments in `segments` into their region of the full-stream output
/// buffer. `stream.words` may be an incomplete prefix covering those
/// segments (the streaming path); the memory guards in [`decode_segment`]
/// keep vector loads inside the resident prefix, falling back to scalar
/// steps near its edge with bit-identical results.
pub(crate) fn run_recoil_simd_segments<S: Symbol>(
    kernel: Kernel,
    stream: &EncodedStream,
    meta: &RecoilMetadata,
    provider: &StaticModelProvider,
    pool: Option<&ThreadPool>,
    segments: Range<u64>,
    out: &mut [S],
) -> Result<(), RansError> {
    validate_segment_decode(stream, meta, &segments, out.len())?;
    require_32_ways(stream.ways)?;
    let (a, b) = (segments.start as usize, segments.end as usize);
    let tasks = b - a;
    if tasks == 0 {
        return Ok(());
    }
    let model = SimdModel::from_provider(provider);
    let bounds = meta.segment_bounds();

    let mut slices: Vec<Mutex<&mut [S]>> = Vec::with_capacity(tasks);
    let mut rest = &mut out[bounds[a] as usize..bounds[b] as usize];
    for t in 0..tasks {
        let (seg, tail) = rest.split_at_mut((bounds[a + t + 1] - bounds[a + t]) as usize);
        slices.push(Mutex::new(seg));
        rest = tail;
    }
    let first_error: Mutex<Option<RansError>> = Mutex::new(None);
    let run_task = |t: usize| {
        let m = a + t;
        let task = || -> Result<(), RansError> {
            let (states_vec, next) = if m < meta.splits.len() {
                sync_split_states(&meta.splits[m], &stream.words, provider, 32)?
            } else {
                let next = (!stream.words.is_empty()).then(|| stream.words.len() as u64 - 1);
                (stream.final_states.clone(), next)
            };
            let mut states = states_array(&states_vec);
            let mut seg = slices[t].lock();
            decode_segment(
                kernel,
                &model,
                &stream.words,
                next,
                &mut states,
                bounds[m],
                &mut seg,
            )?;
            Ok(())
        };
        if let Err(e) = task() {
            let mut slot = first_error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    };
    match pool {
        Some(pool) if tasks > 1 => pool.run(tasks, run_task),
        _ => (0..tasks).for_each(run_task),
    }
    match first_error.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Baseline (B) with SIMD: per-partition vector decode (static models only —
/// a chunk's positions restart at zero, which only a position-independent
/// model tolerates).
pub fn decode_conventional_simd<S: Symbol>(
    kernel: Kernel,
    container: &ConventionalContainer,
    provider: &StaticModelProvider,
    pool: Option<&ThreadPool>,
    out: &mut [S],
) -> Result<(), RansError> {
    require_32_ways(container.ways)?;
    if out.len() as u64 != container.num_symbols() {
        return Err(RansError::MalformedStream("output length mismatch".into()));
    }
    let model = SimdModel::from_provider(provider);
    let bounds = container.symbol_bounds();
    let tasks = container.chunks.len();

    let mut segments: Vec<Mutex<&mut [S]>> = Vec::with_capacity(tasks);
    let mut rest = out;
    for m in 0..tasks {
        let (seg, tail) = rest.split_at_mut((bounds[m + 1] - bounds[m]) as usize);
        segments.push(Mutex::new(seg));
        rest = tail;
    }
    let first_error: Mutex<Option<RansError>> = Mutex::new(None);
    let run_task = |m: usize| {
        let chunk = &container.chunks[m];
        let task = || -> Result<(), RansError> {
            chunk.validate()?;
            let mut states = states_array(&chunk.final_states);
            let next = (!chunk.words.is_empty()).then(|| chunk.words.len() as u64 - 1);
            let mut seg = segments[m].lock();
            decode_segment(kernel, &model, &chunk.words, next, &mut states, 0, &mut seg)?;
            Ok(())
        };
        if let Err(e) = task() {
            let mut slot = first_error.lock();
            if slot.is_none() {
                *slot = Some(e);
            }
        }
    };
    match pool {
        Some(pool) if tasks > 1 => pool.run(tasks, run_task),
        _ => (0..tasks).for_each(run_task),
    }
    match first_error.into_inner() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shims must keep working; tests exercise them

    use super::*;
    use recoil_core::encode_with_splits;
    use recoil_models::CdfTable;
    use recoil_rans::{decode_interleaved, InterleavedEncoder, NullSink};

    fn sample(len: usize, seed: u32, spread: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| (((i ^ seed).wrapping_mul(2654435761)) >> spread) as u8)
            .collect()
    }

    fn encode(data: &[u8], n: u32) -> (EncodedStream, StaticModelProvider) {
        let p = StaticModelProvider::new(CdfTable::of_bytes(data, n));
        let mut enc = InterleavedEncoder::new(&p, 32);
        enc.encode_all(data, &mut NullSink);
        (enc.finish(), p)
    }

    #[test]
    fn all_kernels_match_reference_packed() {
        let data = sample(123_457, 0, 23);
        let (stream, p) = encode(&data, 11);
        let reference: Vec<u8> = decode_interleaved(&stream, &p).unwrap();
        assert_eq!(reference, data);
        let model = SimdModel::from_provider(&p);
        for kernel in Kernel::all_available() {
            let mut out = vec![0u8; data.len()];
            decode_interleaved_simd(kernel, &stream, &model, &mut out).unwrap();
            assert_eq!(out, data, "kernel {kernel:?}");
        }
    }

    #[test]
    fn all_kernels_match_reference_wide_n16() {
        let data = sample(90_001, 1, 22);
        let (stream, p) = encode(&data, 16);
        let model = SimdModel::from_provider(&p);
        assert!(matches!(model, SimdModel::Wide { .. }));
        for kernel in Kernel::all_available() {
            let mut out = vec![0u8; data.len()];
            decode_interleaved_simd(kernel, &stream, &model, &mut out).unwrap();
            assert_eq!(out, data, "kernel {kernel:?}");
        }
    }

    #[test]
    fn sixteen_bit_symbols_wide_path() {
        let bytes = sample(80_000, 2, 22);
        let data: Vec<u16> = bytes.iter().map(|&b| (b as u16) * 17).collect();
        let p = StaticModelProvider::new(CdfTable::of_u16(&data, 1 << 13, 14));
        let mut enc = InterleavedEncoder::new(&p, 32);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();
        let model = SimdModel::from_provider(&p);
        for kernel in Kernel::all_available() {
            let mut out = vec![0u16; data.len()];
            decode_interleaved_simd(kernel, &stream, &model, &mut out).unwrap();
            assert_eq!(out, data, "kernel {kernel:?}");
        }
    }

    #[test]
    fn recoil_simd_matches_scalar_recoil() {
        let data = sample(300_000, 3, 23);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let c = encode_with_splits(&data, &p, 32, 16);
        let pool = ThreadPool::new(7);
        for kernel in Kernel::all_available() {
            let mut out = vec![0u8; data.len()];
            decode_recoil_simd(kernel, &c.stream, &c.metadata, &p, Some(&pool), &mut out).unwrap();
            assert_eq!(out, data, "kernel {kernel:?}");
        }
    }

    #[test]
    fn conventional_simd_matches() {
        let data = sample(200_000, 4, 23);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let c = recoil_conventional::encode_conventional(&data, &p, 32, 16);
        for kernel in Kernel::all_available() {
            let mut out = vec![0u8; data.len()];
            decode_conventional_simd(kernel, &c, &p, None, &mut out).unwrap();
            assert_eq!(out, data, "kernel {kernel:?}");
        }
    }

    #[test]
    fn short_streams_fall_back_to_scalar_paths() {
        for len in [1usize, 31, 32, 33, 63, 65, 100] {
            let data = sample(len, 5, 24);
            let (stream, p) = encode(&data, 10);
            let model = SimdModel::from_provider(&p);
            for kernel in Kernel::all_available() {
                let mut out = vec![0u8; len];
                decode_interleaved_simd(kernel, &stream, &model, &mut out).unwrap();
                assert_eq!(out, data, "kernel {kernel:?} len {len}");
            }
        }
    }

    #[test]
    fn non_32_way_streams_rejected() {
        let data = sample(1000, 6, 24);
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 10));
        let mut enc = InterleavedEncoder::new(&p, 8);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();
        let model = SimdModel::from_provider(&p);
        let mut out = vec![0u8; 1000];
        assert!(decode_interleaved_simd(Kernel::Scalar, &stream, &model, &mut out).is_err());
    }
}

#[cfg(test)]
mod segment_tests {
    use super::*;
    use recoil_models::CdfTable;
    use recoil_rans::{InterleavedEncoder, NullSink};

    /// `decode_segment` returns the read cursor so callers can chain
    /// segments: two chained calls must equal one full-stream call for any
    /// (unaligned) split position and any kernel.
    #[test]
    fn chained_segments_equal_full_decode() {
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 23) as u8)
            .collect();
        let p = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let mut enc = InterleavedEncoder::new(&p, 32);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();
        let model = SimdModel::from_provider(&p);
        for kernel in Kernel::all_available() {
            for cut in [1usize, 31, 32, 4097, 50_000, 99_999] {
                let mut full = vec![0u8; data.len()];
                decode_interleaved_simd(kernel, &stream, &model, &mut full).unwrap();

                let mut states = [0u32; 32];
                states.copy_from_slice(&stream.final_states);
                let next = Some(stream.words.len() as u64 - 1);
                let mut hi_part = vec![0u8; data.len() - cut];
                let next = decode_segment(
                    kernel,
                    &model,
                    &stream.words,
                    next,
                    &mut states,
                    cut as u64,
                    &mut hi_part,
                )
                .unwrap();
                let mut lo_part = vec![0u8; cut];
                decode_segment(
                    kernel,
                    &model,
                    &stream.words,
                    next,
                    &mut states,
                    0,
                    &mut lo_part,
                )
                .unwrap();
                assert_eq!(
                    &lo_part[..],
                    &full[..cut],
                    "kernel {kernel:?} cut {cut} low"
                );
                assert_eq!(
                    &hi_part[..],
                    &full[cut..],
                    "kernel {kernel:?} cut {cut} high"
                );
            }
        }
    }
}
