//! Scalar group decode — the reference semantics every vector kernel must
//! reproduce bit-exactly, and the fallback for guard regions (stream head,
//! segment edges) and non-x86 builds.

use crate::model::SimdModel;
use recoil_rans::params::{LOWER_BOUND, RENORM_BITS};
use recoil_rans::RansError;

/// Decodes the single position `pos` (renorm-then-transform on its lane).
/// `p` is the backward word cursor (index of the next unread word, -1 when
/// exhausted). Returns the symbol.
#[inline(always)]
pub fn scalar_step(
    model: &SimdModel<'_>,
    words: &[u16],
    p: &mut isize,
    states: &mut [u32; 32],
    pos: u64,
    n: u32,
    mask: u32,
) -> Result<u16, RansError> {
    let lane = (pos % 32) as usize;
    let mut x = states[lane];
    if x < LOWER_BOUND {
        if *p < 0 {
            return Err(RansError::BitstreamUnderflow { pos });
        }
        x = (x << RENORM_BITS) | words[*p as usize] as u32;
        *p -= 1;
    }
    let slot = x & mask;
    let (sym, f, c) = model.lookup(slot);
    states[lane] = f * (x >> n) + slot - c;
    Ok(sym)
}

/// Decodes one aligned 32-symbol group (positions `base .. base+32`) into
/// `out`, scalar.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the vector kernel signature
pub fn scalar_group(
    model: &SimdModel<'_>,
    words: &[u16],
    p: &mut isize,
    states: &mut [u32; 32],
    base: u64,
    n: u32,
    mask: u32,
    out: &mut [u16; 32],
) -> Result<(), RansError> {
    for lane in (0..32usize).rev() {
        out[lane] = scalar_step(model, words, p, states, base + lane as u64, n, mask)?;
    }
    Ok(())
}
