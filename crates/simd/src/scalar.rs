//! Scalar group decode — the reference semantics every vector kernel must
//! reproduce bit-exactly, and the fallback for guard regions (stream head,
//! segment edges) and non-x86 builds.
//!
//! [`scalar_group`] mirrors the fast-loop design of `recoil_rans::fast`:
//! an aligned 32-symbol group runs check-free (branchless renorm,
//! `get_unchecked` word reads) whenever at least 32 unread words remain —
//! each symbol consumes at most one renorm word, so the budget argument is
//! identical. Near word exhaustion it degrades to [`scalar_step`], whose
//! `Result`-checked reads report underflow.

use crate::model::SimdModel;
use recoil_rans::params::{LOWER_BOUND, RENORM_BITS};
use recoil_rans::RansError;

/// Decodes the single position `pos` (renorm-then-transform on its lane).
/// `p` is the backward word cursor (index of the next unread word, -1 when
/// exhausted). Returns the symbol.
#[inline(always)]
pub fn scalar_step(
    model: &SimdModel<'_>,
    words: &[u16],
    p: &mut isize,
    states: &mut [u32; 32],
    pos: u64,
    n: u32,
    mask: u32,
) -> Result<u16, RansError> {
    let lane = (pos % 32) as usize;
    let mut x = states[lane];
    if x < LOWER_BOUND {
        if *p < 0 {
            return Err(RansError::BitstreamUnderflow { pos });
        }
        x = (x << RENORM_BITS) | words[*p as usize] as u32;
        *p -= 1;
    }
    let slot = x & mask;
    let (sym, f, c) = model.lookup(slot);
    states[lane] = f * (x >> n) + slot - c;
    Ok(sym)
}

/// Decodes one aligned 32-symbol group (positions `base .. base+32`) into
/// `out`, scalar.
///
/// `base` must be 32-aligned (the drivers guarantee it): lane `j` then owns
/// exactly position `base + j`, so the fast path iterates lanes directly —
/// no `pos % 32` per symbol, no per-call lane recomputation. With at least
/// 32 unread words below the cursor the group also runs without underflow
/// or bounds checks; otherwise every step goes through the careful
/// [`scalar_step`].
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the vector kernel signature
pub fn scalar_group(
    model: &SimdModel<'_>,
    words: &[u16],
    p: &mut isize,
    states: &mut [u32; 32],
    base: u64,
    n: u32,
    mask: u32,
    out: &mut [u16; 32],
) -> Result<(), RansError> {
    debug_assert!(base.is_multiple_of(32), "group base must be lane-aligned");
    // Fast path precondition (checked once per group): a 32-word budget
    // makes underflow impossible, and the cursor must already be a valid
    // index so the unchecked reads stay in bounds.
    if *p >= 31 && (*p as usize) < words.len() {
        let mut q = *p;
        for lane in (0..32usize).rev() {
            let x = states[lane];
            debug_assert!(q >= 0 && (q as usize) < words.len());
            // SAFETY: `q` starts at `*p` with `31 <= *p < words.len()` and
            // decreases at most once per lane, so before lane `31 - k` it
            // is at least `31 - k >= 0`; every speculative load is in
            // bounds.
            let w = unsafe { *words.get_unchecked(q as usize) } as u32;
            let renorm = x < LOWER_BOUND;
            let x = if renorm { (x << RENORM_BITS) | w } else { x };
            q -= renorm as isize;
            debug_assert!(x >= LOWER_BOUND, "state must recover in one step");
            let slot = x & mask;
            let (sym, f, c) = model.lookup(slot);
            states[lane] = f * (x >> n) + slot - c;
            out[lane] = sym;
        }
        *p = q;
        return Ok(());
    }
    for lane in (0..32usize).rev() {
        out[lane] = scalar_step(model, words, p, states, base + lane as u64, n, mask)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::{CdfTable, ModelProvider, StaticModelProvider};
    use recoil_rans::{InterleavedEncoder, NullSink};

    /// The fast aligned group must be bit-identical (symbols, states,
    /// cursor) to a group of careful `scalar_step`s, including across the
    /// budget seam where the fast path stops engaging.
    #[test]
    fn fast_group_matches_careful_steps_everywhere() {
        let data: Vec<u8> = (0..40_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 23) as u8)
            .collect();
        let provider = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
        let mut enc = InterleavedEncoder::new(&provider, 32);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();
        let model = SimdModel::from_provider(&provider);
        let n = provider.quant_bits();
        let mask = (1u32 << n) - 1;

        let mut fast_states = [0u32; 32];
        fast_states.copy_from_slice(&stream.final_states);
        let mut careful_states = fast_states;
        let mut fast_p = stream.words.len() as isize - 1;
        let mut careful_p = fast_p;

        let groups = (data.len() / 32) as u64;
        for g in (0..groups).rev() {
            let base = g * 32;
            let mut fast_out = [0u16; 32];
            scalar_group(
                &model,
                &stream.words,
                &mut fast_p,
                &mut fast_states,
                base,
                n,
                mask,
                &mut fast_out,
            )
            .unwrap();
            let mut careful_out = [0u16; 32];
            for lane in (0..32usize).rev() {
                careful_out[lane] = scalar_step(
                    &model,
                    &stream.words,
                    &mut careful_p,
                    &mut careful_states,
                    base + lane as u64,
                    n,
                    mask,
                )
                .unwrap();
            }
            assert_eq!(fast_out, careful_out, "group {g}");
            assert_eq!(fast_states, careful_states, "group {g}");
            assert_eq!(fast_p, careful_p, "group {g}");
            for (lane, &s) in fast_out.iter().enumerate() {
                assert_eq!(s as u8, data[base as usize + lane], "group {g}");
            }
        }
    }
}
