//! AVX2 kernel: 8 lanes per register, unrolled ×4 for the 32-way interleave
//! (paper §4.4, implementation (2)).

use crate::model::SimdModel;
use std::arch::x86_64::*;

/// Per-mask `vpermd` indices distributing `k = popcount(mask)` loaded words
/// (ascending memory order) onto the mask's set lanes (ascending lane
/// order) — the backward-read equivalent of the classic SSE/AVX rANS
/// renormalization shuffle.
static PERM: [[i32; 8]; 256] = build_perm();

const fn build_perm() -> [[i32; 8]; 256] {
    let mut t = [[0i32; 8]; 256];
    let mut m = 0usize;
    while m < 256 {
        let mut rank = 0i32;
        let mut b = 0usize;
        while b < 8 {
            if m & (1 << b) != 0 {
                t[m][b] = rank;
                rank += 1;
            }
            b += 1;
        }
        m += 1;
    }
    t
}

/// Decodes one aligned 32-symbol group.
///
/// # Safety
/// Caller must ensure AVX2 is available, `*p >= 63`, and
/// `*p + 8 <= words_len` (see the driver's guard logic), with `words`
/// pointing at a stream of at least `words_len` u16 words.
#[target_feature(enable = "avx2")]
pub unsafe fn group_avx2(
    model: &SimdModel<'_>,
    words: *const u16,
    p: &mut isize,
    states: &mut [u32; 32],
    n: u32,
    mask: u32,
    out: &mut [u16; 32],
) {
    // SAFETY: the caller upholds the `# Safety` contract above — AVX2 is
    // available and the cursor guards hold — so every pointer below stays
    // in bounds: `sp`/`out` address the caller's fixed arrays and each
    // renormalization load reads `words[base .. base+8]` inside the stream.
    unsafe {
        let zero = _mm256_setzero_si256();
        let maskv = _mm256_set1_epi32(mask as i32);
        let ncount = _mm_cvtsi32_si128(n as i32);
        let sp = states.as_mut_ptr();

        // Registers in descending lane order so the shared backward cursor is
        // consumed exactly as the scalar decoder would.
        for r in (0..4usize).rev() {
            let mut x = _mm256_loadu_si256(sp.add(r * 8) as *const __m256i);

            // Renormalization: lanes with x < 2^16 (i.e. high half zero).
            let small = _mm256_cmpeq_epi32(_mm256_srli_epi32::<16>(x), zero);
            let m = (_mm256_movemask_ps(_mm256_castsi256_ps(small)) & 0xFF) as usize;
            if m != 0 {
                let k = m.count_ones() as isize;
                let base = *p - k + 1;
                let w128 = _mm_loadu_si128(words.add(base as usize) as *const __m128i);
                let w = _mm256_cvtepu16_epi32(w128);
                let perm = _mm256_loadu_si256(PERM[m].as_ptr() as *const __m256i);
                let wperm = _mm256_permutevar8x32_epi32(w, perm);
                let renormed = _mm256_or_si256(_mm256_slli_epi32::<16>(x), wperm);
                x = _mm256_blendv_epi8(x, renormed, small);
                *p -= k;
            }

            // Transform (Eq. 2).
            let slot = _mm256_and_si256(x, maskv);
            let (f, c, sym) = match *model {
                SimdModel::Packed { lut, .. } => {
                    let e = _mm256_i32gather_epi32::<4>(lut.as_ptr() as *const i32, slot);
                    let field = _mm256_set1_epi32(0xFFF);
                    (
                        _mm256_and_si256(_mm256_srli_epi32::<12>(e), field),
                        _mm256_and_si256(e, field),
                        _mm256_srli_epi32::<24>(e),
                    )
                }
                SimdModel::Wide { inv, ff, .. } => {
                    let half = _mm256_set1_epi32(0xFFFF);
                    let g1 = _mm256_i32gather_epi32::<2>(inv.as_ptr() as *const i32, slot);
                    let sym = _mm256_and_si256(g1, half);
                    let e = _mm256_i32gather_epi32::<4>(ff.as_ptr() as *const i32, sym);
                    (_mm256_srli_epi32::<16>(e), _mm256_and_si256(e, half), sym)
                }
            };
            let xsh = _mm256_srl_epi32(x, ncount);
            x = _mm256_add_epi32(_mm256_mullo_epi32(f, xsh), _mm256_sub_epi32(slot, c));
            _mm256_storeu_si256(sp.add(r * 8) as *mut __m256i, x);

            // Narrow the 8 u32 symbols to u16 and store.
            let lo = _mm256_castsi256_si128(sym);
            let hi = _mm256_extracti128_si256::<1>(sym);
            let pk = _mm_packus_epi32(lo, hi);
            _mm_storeu_si128(out.as_mut_ptr().add(r * 8) as *mut __m128i, pk);
        }
    }
}
