//! SIMD interleaved-rANS decode kernels (paper §4.4).
//!
//! "For the AVX2 implementation, we use 8-way 32-bit interleaved decoders in
//! each instruction, and manually unroll four times; for the AVX512
//! implementation, we use 16 ways in each instruction and unroll twice" —
//! both operate on the recommended 32-way interleave, which "naturally fits"
//! the vector widths.
//!
//! Per 32-symbol group the kernels execute, register by register in
//! *descending* lane order:
//!
//! 1. **Renormalization**: compare-under-`L` mask; the underflowing lanes
//!    pull consecutive u16 words off the shared backward cursor (highest
//!    lane reads first). AVX2 distributes the loaded words with a
//!    per-mask `vpermd` permutation table; AVX-512 uses `vpexpandd`.
//! 2. **Transform** (Eq. 2): slot mask, one `vpgatherdd` into the packed
//!    LUT (8-bit symbols, `n <= 12`) or two gathers into the wide LUT
//!    (everything else), then `x = f * (x >> n) + slot - F`.
//!
//! All kernels are bit-exact mirrors of the scalar decoder — property tests
//! in this crate and `tests/` enforce equality on arbitrary streams — and
//! they plug into the Recoil three-phase decoder and the Conventional
//! baseline through the decode drivers.

// Audited unsafe crate: every unsafe operation sits in an explicit block.
#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;
pub mod backend;
mod driver;
mod kernel;
mod model;
mod scalar;

pub use backend::{AutoBackend, Avx2Backend, Avx512Backend};
pub use driver::{decode_conventional_simd, decode_interleaved_simd, decode_segment};
pub use kernel::Kernel;
pub use model::SimdModel;

#[allow(deprecated)]
pub use driver::decode_recoil_simd;

/// The interleave width all SIMD kernels are built for.
pub const SIMD_WAYS: u32 = 32;
