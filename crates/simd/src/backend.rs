//! SIMD [`DecodeBackend`] implementations plugging the AVX2/AVX-512 kernels
//! into the `recoil_core::codec` facade.
//!
//! ## Backend selection semantics
//!
//! * [`Avx2Backend`] / [`Avx512Backend`] run their kernel or fail: decoding
//!   on a host without the CPU feature returns
//!   [`RecoilError::BackendUnavailable`] (and `is_available()` reports it
//!   up front, so [`recoil_core::codec::CodecBuilder::build`] rejects the
//!   configuration early).
//! * [`AutoBackend`] dispatches at decode time in the order
//!   **AVX-512 → AVX2 → scalar**: the best kernel the CPU supports wins,
//!   and when neither vector extension is present it degrades to the
//!   scalar three-phase decoder rather than erroring — one binary serves
//!   every host.
//! * The vector kernels are built for the paper's 32-way interleave and
//!   static models. For non-32-way streams [`AutoBackend`] falls back to
//!   the scalar path, while the explicit AVX backends report the stream as
//!   malformed (matching the seed `decode_recoil_simd` behavior). Adaptive
//!   (per-position-model) decodes always take the scalar/pooled path —
//!   per-symbol model indirection defeats flat gathers.
//!
//! All backends optionally carry a [`ThreadPool`], in which case decode
//! tasks (one per metadata segment) are distributed across it; the kernels
//! then run *inside* each task.

use crate::driver::{run_recoil_simd, run_recoil_simd_segments};
use crate::kernel::Kernel;
use recoil_core::codec::{decode_pooled, decode_segments_pooled, DecodeBackend, DecodeRequest};
use recoil_core::{RecoilError, RecoilMetadata};
use recoil_models::{ModelProvider, Symbol};
use recoil_parallel::ThreadPool;
use recoil_rans::EncodedStream;
use std::ops::Range;

fn run_fixed<S: Symbol>(
    kernel: Kernel,
    name: &'static str,
    pool: Option<&ThreadPool>,
    req: &DecodeRequest<'_>,
    out: &mut [S],
) -> Result<(), RecoilError> {
    if !kernel.is_available() {
        return Err(RecoilError::BackendUnavailable { backend: name });
    }
    run_recoil_simd(kernel, req.stream, req.metadata, req.model, pool, out)
        .map_err(RecoilError::from)
}

fn run_fixed_segments<S: Symbol>(
    kernel: Kernel,
    name: &'static str,
    pool: Option<&ThreadPool>,
    req: &DecodeRequest<'_>,
    segments: Range<u64>,
    out: &mut [S],
) -> Result<(), RecoilError> {
    if !kernel.is_available() {
        return Err(RecoilError::BackendUnavailable { backend: name });
    }
    run_recoil_simd_segments(
        kernel,
        req.stream,
        req.metadata,
        req.model,
        pool,
        segments,
        out,
    )
    .map_err(RecoilError::from)
}

/// AVX2 kernel backend (8 lanes × 4 unroll, paper implementation (2)).
#[derive(Default)]
pub struct Avx2Backend {
    pool: Option<ThreadPool>,
}

/// AVX-512 kernel backend (16 lanes × 2 unroll, paper implementation (3)).
#[derive(Default)]
pub struct Avx512Backend {
    pool: Option<ThreadPool>,
}

/// Runtime-dispatch backend: AVX-512 → AVX2 → scalar, never unavailable.
#[derive(Default)]
pub struct AutoBackend {
    pool: Option<ThreadPool>,
}

macro_rules! pool_constructors {
    ($ty:ident) => {
        impl $ty {
            /// Single-threaded backend (kernels still vectorize within the
            /// calling thread).
            pub fn new() -> Self {
                Self { pool: None }
            }

            /// Backend decoding on `threads` threads.
            pub fn with_threads(threads: usize) -> Self {
                Self {
                    pool: (threads > 1).then(|| ThreadPool::new(threads - 1)),
                }
            }

            /// Backend decoding on an existing pool.
            pub fn with_pool(pool: ThreadPool) -> Self {
                Self { pool: Some(pool) }
            }
        }
    };
}

pool_constructors!(Avx2Backend);
pool_constructors!(Avx512Backend);
pool_constructors!(AutoBackend);

impl DecodeBackend for Avx2Backend {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn is_available(&self) -> bool {
        Kernel::Avx2.is_available()
    }

    fn decode_u8(&self, req: &DecodeRequest<'_>, out: &mut [u8]) -> Result<(), RecoilError> {
        run_fixed(Kernel::Avx2, self.name(), self.pool.as_ref(), req, out)
    }

    fn decode_u16(&self, req: &DecodeRequest<'_>, out: &mut [u16]) -> Result<(), RecoilError> {
        run_fixed(Kernel::Avx2, self.name(), self.pool.as_ref(), req, out)
    }

    fn decode_adaptive(
        &self,
        stream: &EncodedStream,
        metadata: &RecoilMetadata,
        provider: &dyn ModelProvider,
        out: &mut [u16],
    ) -> Result<(), RecoilError> {
        decode_pooled(stream, metadata, provider, self.pool.as_ref(), out)
    }

    fn decode_u8_segments(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [u8],
    ) -> Result<(), RecoilError> {
        run_fixed_segments(
            Kernel::Avx2,
            self.name(),
            self.pool.as_ref(),
            req,
            segments,
            out,
        )
    }

    fn decode_u16_segments(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [u16],
    ) -> Result<(), RecoilError> {
        run_fixed_segments(
            Kernel::Avx2,
            self.name(),
            self.pool.as_ref(),
            req,
            segments,
            out,
        )
    }
}

impl DecodeBackend for Avx512Backend {
    fn name(&self) -> &'static str {
        "avx512"
    }

    fn is_available(&self) -> bool {
        Kernel::Avx512.is_available()
    }

    fn decode_u8(&self, req: &DecodeRequest<'_>, out: &mut [u8]) -> Result<(), RecoilError> {
        run_fixed(Kernel::Avx512, self.name(), self.pool.as_ref(), req, out)
    }

    fn decode_u16(&self, req: &DecodeRequest<'_>, out: &mut [u16]) -> Result<(), RecoilError> {
        run_fixed(Kernel::Avx512, self.name(), self.pool.as_ref(), req, out)
    }

    fn decode_adaptive(
        &self,
        stream: &EncodedStream,
        metadata: &RecoilMetadata,
        provider: &dyn ModelProvider,
        out: &mut [u16],
    ) -> Result<(), RecoilError> {
        decode_pooled(stream, metadata, provider, self.pool.as_ref(), out)
    }

    fn decode_u8_segments(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [u8],
    ) -> Result<(), RecoilError> {
        run_fixed_segments(
            Kernel::Avx512,
            self.name(),
            self.pool.as_ref(),
            req,
            segments,
            out,
        )
    }

    fn decode_u16_segments(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [u16],
    ) -> Result<(), RecoilError> {
        run_fixed_segments(
            Kernel::Avx512,
            self.name(),
            self.pool.as_ref(),
            req,
            segments,
            out,
        )
    }
}

impl AutoBackend {
    /// The kernel a decode will use for a `ways`-way stream on this host.
    pub fn selected_kernel(&self, ways: u32) -> Kernel {
        if ways == crate::SIMD_WAYS {
            Kernel::best()
        } else {
            Kernel::Scalar
        }
    }

    fn run_auto<S: Symbol>(
        &self,
        req: &DecodeRequest<'_>,
        out: &mut [S],
    ) -> Result<(), RecoilError> {
        match self.selected_kernel(req.stream.ways) {
            Kernel::Scalar => {
                decode_pooled(req.stream, req.metadata, req.model, self.pool.as_ref(), out)
            }
            kernel => run_recoil_simd(
                kernel,
                req.stream,
                req.metadata,
                req.model,
                self.pool.as_ref(),
                out,
            )
            .map_err(RecoilError::from),
        }
    }

    fn run_auto_segments<S: Symbol>(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [S],
    ) -> Result<(), RecoilError> {
        match self.selected_kernel(req.stream.ways) {
            Kernel::Scalar => decode_segments_pooled(
                req.stream,
                req.metadata,
                req.model,
                self.pool.as_ref(),
                segments,
                out,
            ),
            kernel => run_recoil_simd_segments(
                kernel,
                req.stream,
                req.metadata,
                req.model,
                self.pool.as_ref(),
                segments,
                out,
            )
            .map_err(RecoilError::from),
        }
    }
}

impl DecodeBackend for AutoBackend {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn decode_u8(&self, req: &DecodeRequest<'_>, out: &mut [u8]) -> Result<(), RecoilError> {
        self.run_auto(req, out)
    }

    fn decode_u16(&self, req: &DecodeRequest<'_>, out: &mut [u16]) -> Result<(), RecoilError> {
        self.run_auto(req, out)
    }

    fn decode_adaptive(
        &self,
        stream: &EncodedStream,
        metadata: &RecoilMetadata,
        provider: &dyn ModelProvider,
        out: &mut [u16],
    ) -> Result<(), RecoilError> {
        decode_pooled(stream, metadata, provider, self.pool.as_ref(), out)
    }

    fn decode_u8_segments(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [u8],
    ) -> Result<(), RecoilError> {
        self.run_auto_segments(req, segments, out)
    }

    fn decode_u16_segments(
        &self,
        req: &DecodeRequest<'_>,
        segments: Range<u64>,
        out: &mut [u16],
    ) -> Result<(), RecoilError> {
        self.run_auto_segments(req, segments, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_core::codec::Codec;
    use recoil_models::{CdfTable, StaticModelProvider};

    fn sample(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| (((i ^ seed).wrapping_mul(2654435761)) >> 23) as u8)
            .collect()
    }

    #[test]
    fn auto_matches_scalar_on_any_host() {
        let data = sample(200_000, 1);
        let codec = Codec::builder().max_segments(24).build().unwrap();
        let enc = codec.encode(&data).unwrap();
        let reference: Vec<u8> = codec.decode(&enc).unwrap();
        let auto: Vec<u8> = codec
            .decode_with(&AutoBackend::with_threads(4), &enc)
            .unwrap();
        assert_eq!(reference, data);
        assert_eq!(auto, data);
    }

    #[test]
    fn auto_falls_back_to_scalar_for_narrow_streams() {
        let data = sample(50_000, 2);
        let codec = Codec::builder().ways(8).max_segments(8).build().unwrap();
        let enc = codec.encode(&data).unwrap();
        let backend = AutoBackend::new();
        assert_eq!(backend.selected_kernel(8), Kernel::Scalar);
        let got: Vec<u8> = codec.decode_with(&backend, &enc).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn explicit_backends_error_when_unavailable() {
        let data = sample(20_000, 3);
        let codec = Codec::builder().max_segments(4).build().unwrap();
        let enc = codec.encode(&data).unwrap();
        for (avail, result) in [
            (
                Kernel::Avx2.is_available(),
                codec.decode_with::<u8>(&Avx2Backend::new(), &enc),
            ),
            (
                Kernel::Avx512.is_available(),
                codec.decode_with::<u8>(&Avx512Backend::new(), &enc),
            ),
        ] {
            if avail {
                assert_eq!(result.unwrap(), data);
            } else {
                assert!(matches!(
                    result,
                    Err(RecoilError::BackendUnavailable { .. })
                ));
            }
        }
    }

    #[test]
    fn adaptive_path_is_scalar_but_correct() {
        use recoil_models::{GaussianScaleBank, LatentModelProvider, LatentSpec};
        use std::sync::Arc;
        let bank = Arc::new(GaussianScaleBank::build(12, 256, 8, 0.5, 32.0));
        let count = 40_000usize;
        let specs: Vec<LatentSpec> = (0..count)
            .map(|i| LatentSpec {
                mean: 2000 + (i % 700) as u16,
                scale_idx: (i % 8) as u8,
            })
            .collect();
        let provider = LatentModelProvider::new(bank, specs.clone());
        let data: Vec<u16> = (0..count)
            .map(|i| {
                let d = ((i as i64).wrapping_mul(2654435761) % 31) - 15;
                provider.clamp_to_window(specs[i], specs[i].mean as i64 + d)
            })
            .collect();
        let codec = Codec::builder()
            .quant_bits(12)
            .max_segments(8)
            .build()
            .unwrap();
        let container = codec.encode_with_provider(&data, &provider).unwrap();
        for backend in [
            &AutoBackend::with_threads(4) as &dyn DecodeBackend,
            &Avx2Backend::new(),
        ] {
            let mut out = vec![0u16; data.len()];
            backend
                .decode_adaptive(&container.stream, &container.metadata, &provider, &mut out)
                .unwrap();
            assert_eq!(out, data, "backend {}", backend.name());
        }
    }

    #[test]
    fn model_quant_check_rejects_mismatch() {
        let data = sample(5_000, 4);
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 10));
        let codec = Codec::builder().quant_bits(11).build().unwrap();
        assert!(codec.encode_with_provider(&data, &model).is_err());
    }
}
