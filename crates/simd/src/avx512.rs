//! AVX-512 kernel: 16 lanes per register, unrolled ×2 (paper §4.4,
//! implementation (3)). Mask registers make the renormalization gather a
//! single `vpexpandd`.

use crate::model::SimdModel;
use std::arch::x86_64::*;

/// Decodes one aligned 32-symbol group.
///
/// # Safety
/// Caller must ensure AVX-512F is available, `*p >= 63`, and
/// `*p + 16 <= words_len` (driver guard), with `words` pointing at a stream
/// of at least `words_len` u16 words.
#[target_feature(enable = "avx512f")]
pub unsafe fn group_avx512(
    model: &SimdModel<'_>,
    words: *const u16,
    p: &mut isize,
    states: &mut [u32; 32],
    n: u32,
    mask: u32,
    out: &mut [u16; 32],
) {
    // SAFETY: the caller upholds the `# Safety` contract above — AVX-512F is
    // available and the cursor guards hold — so every pointer below stays
    // in bounds: `sp`/`out` address the caller's fixed arrays and each
    // renormalization load reads `words[base .. base+16]` inside the stream.
    unsafe {
        let lbound = _mm512_set1_epi32(1 << 16);
        let maskv = _mm512_set1_epi32(mask as i32);
        let ncount = _mm_cvtsi32_si128(n as i32);
        let sp = states.as_mut_ptr();

        for r in (0..2usize).rev() {
            let mut x = _mm512_loadu_si512(sp.add(r * 16) as *const __m512i);

            // Renormalization via expand-load semantics.
            let m: __mmask16 = _mm512_cmplt_epu32_mask(x, lbound);
            if m != 0 {
                let k = m.count_ones() as isize;
                let base = *p - k + 1;
                let w256 = _mm256_loadu_si256(words.add(base as usize) as *const __m256i);
                let w = _mm512_cvtepu16_epi32(w256);
                let expanded = _mm512_maskz_expand_epi32(m, w);
                let renormed = _mm512_or_si512(_mm512_slli_epi32::<16>(x), expanded);
                x = _mm512_mask_blend_epi32(m, x, renormed);
                *p -= k;
            }

            // Transform (Eq. 2).
            let slot = _mm512_and_si512(x, maskv);
            let (f, c, sym) = match *model {
                SimdModel::Packed { lut, .. } => {
                    let e = _mm512_i32gather_epi32::<4>(slot, lut.as_ptr() as *const i32);
                    let field = _mm512_set1_epi32(0xFFF);
                    (
                        _mm512_and_si512(_mm512_srli_epi32::<12>(e), field),
                        _mm512_and_si512(e, field),
                        _mm512_srli_epi32::<24>(e),
                    )
                }
                SimdModel::Wide { inv, ff, .. } => {
                    let half = _mm512_set1_epi32(0xFFFF);
                    let g1 = _mm512_i32gather_epi32::<2>(slot, inv.as_ptr() as *const i32);
                    let sym = _mm512_and_si512(g1, half);
                    let e = _mm512_i32gather_epi32::<4>(sym, ff.as_ptr() as *const i32);
                    (_mm512_srli_epi32::<16>(e), _mm512_and_si512(e, half), sym)
                }
            };
            let xsh = _mm512_srl_epi32(x, ncount);
            x = _mm512_add_epi32(_mm512_mullo_epi32(f, xsh), _mm512_sub_epi32(slot, c));
            _mm512_storeu_si512(sp.add(r * 16) as *mut __m512i, x);

            // Narrow 16 u32 symbols to u16 (vpmovdw) and store.
            let pk = _mm512_cvtepi32_epi16(sym);
            _mm256_storeu_si256(out.as_mut_ptr().add(r * 16) as *mut __m256i, pk);
        }
    }
}
