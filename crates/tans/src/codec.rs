//! Serial tANS encode/decode over a forward-readable bitstream.
//!
//! Symbols are encoded back-to-front so decoding emits them front-to-back
//! while scanning the bitstream forward — the layout multians threads need
//! to start at arbitrary chunk offsets.

use crate::table::TansTable;
use recoil_bitio::{BitReader, BitWriter};
use recoil_models::Symbol;
use recoil_rans::RansError;

/// An encoded tANS stream (variation (f) payload).
#[derive(Debug, Clone)]
pub struct TansStream {
    /// Bit-packed payload, decoded by forward scanning.
    pub bytes: Vec<u8>,
    /// Exact payload length in bits (the last byte may be padding).
    pub bit_len: u64,
    /// Decode-side start state (the encoder's final state).
    pub initial_state: u32,
    /// Symbol count `N`.
    pub num_symbols: u64,
    /// Whether symbols are 16-bit (affects table transmission cost).
    pub wide_symbols: bool,
}

impl TansStream {
    /// Payload bytes as reported in the size tables: bitstream + header
    /// (state, counts) + the transmitted decode table.
    pub fn payload_bytes(&self, table: &TansTable) -> u64 {
        let header = 8 + 4 + 4 + 1 + 1 + 2; // N, bit length, state, n, flags, pad
        self.bytes.len() as u64 + header + table.transmitted_bytes(self.wide_symbols)
    }
}

/// Encodes `data` with `table`, producing a forward-decodable stream.
pub fn encode_tans<S: Symbol>(data: &[S], table: &TansTable) -> TansStream {
    // Encode back-to-front, collecting per-symbol bit chunks, then emit the
    // chunks reversed so the decoder reads them front-to-back.
    let mut chunks: Vec<(u32, u32)> = Vec::with_capacity(data.len());
    let mut t = 0u32; // arbitrary initial encoder state offset
    for &s in data.iter().rev() {
        let (next, bits, nb) = table.encode_step(t, s.to_u16());
        chunks.push((bits, nb));
        t = next;
    }
    let mut w = BitWriter::new();
    for &(bits, nb) in chunks.iter().rev() {
        w.write(bits as u64, nb);
    }
    let bit_len = w.bit_len();
    TansStream {
        bytes: w.into_bytes(),
        bit_len,
        initial_state: t,
        num_symbols: data.len() as u64,
        wide_symbols: S::BITS == 16,
    }
}

/// Serial reference decode (equivalent to multians with one chunk).
pub fn decode_tans_serial<S: Symbol>(
    stream: &TansStream,
    table: &TansTable,
) -> Result<Vec<S>, RansError> {
    let mut r = BitReader::new(&stream.bytes);
    let mut t = stream.initial_state;
    let mut out = Vec::with_capacity(stream.num_symbols as usize);
    for i in 0..stream.num_symbols {
        let (sym, nb, base) = table.decode_entry(t);
        out.push(S::from_u16(sym));
        let bits = r.read(nb).ok_or(RansError::BitstreamUnderflow { pos: i })? as u32;
        t = base + bits;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::CdfTable;

    fn sample(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i ^ seed).wrapping_mul(2654435761) >> 24) as u8)
            .collect()
    }

    #[test]
    fn round_trip_various_n() {
        let data = sample(80_000, 0);
        for n in [9u32, 10, 11, 12, 16] {
            let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, n));
            let stream = encode_tans(&data, &table);
            let back: Vec<u8> = decode_tans_serial(&stream, &table).unwrap();
            assert_eq!(back, data, "n={n}");
        }
    }

    #[test]
    fn decode_state_returns_to_encoder_origin() {
        // After decoding all symbols the state equals the encoder's start
        // state (0) — a structural checksum of the mirror property.
        let data = sample(10_000, 1);
        let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, 11));
        let stream = encode_tans(&data, &table);
        let mut r = BitReader::new(&stream.bytes);
        let mut t = stream.initial_state;
        for _ in 0..stream.num_symbols {
            let (_, nb, base) = table.decode_entry(t);
            t = base + r.read(nb).unwrap() as u32;
        }
        assert_eq!(t, 0);
        assert_eq!(r.bit_pos(), stream.bit_len);
    }

    #[test]
    fn compression_is_near_entropy() {
        let data = sample(200_000, 2);
        let h = recoil_models::Histogram::of_bytes(&data);
        let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, 12));
        let stream = encode_tans(&data, &table);
        let ideal = h.entropy_bits() * data.len() as f64;
        let actual = stream.bit_len as f64;
        assert!(
            actual < ideal * 1.05 + 64.0,
            "tANS {actual} vs entropy {ideal}"
        );
    }

    #[test]
    fn empty_input() {
        let table = TansTable::from_cdf(&CdfTable::of_bytes(b"ab", 8));
        let stream = encode_tans::<u8>(&[], &table);
        assert_eq!(stream.num_symbols, 0);
        let back: Vec<u8> = decode_tans_serial(&stream, &table).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn sixteen_bit_symbols_round_trip() {
        let data: Vec<u16> = (0..40_000u32).map(|i| (i % 1500) as u16).collect();
        let table = TansTable::from_cdf(&CdfTable::of_u16(&data, 1500, 12));
        let stream = encode_tans(&data, &table);
        assert!(stream.wide_symbols);
        let back: Vec<u16> = decode_tans_serial(&stream, &table).unwrap();
        assert_eq!(back, data);
    }
}
