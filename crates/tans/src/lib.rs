//! Baseline (C): a table-variant ANS (tANS) codec plus a multians-style
//! massively parallel self-synchronizing decoder (paper §2.4, §5).
//!
//! multians (Weißenberger & Schmidt, ICPP'19) exploits the fact that tANS
//! decoding started from a *wrong* state tends to re-synchronize with the
//! true symbol/state trajectory after a bounded number of symbols, because
//! the state space is small. Decoder threads therefore start at arbitrary
//! bitstream chunk boundaries with a guessed state — **zero metadata, zero
//! file-size overhead** — and a fix-up pass splices the speculative outputs
//! once each thread's true entry state is known.
//!
//! The catch, which §5.3 demonstrates: the approach needs a small state
//! count (limiting the quantization level `n`), the decode table must
//! travel with the stream (costly at `n = 16`), the speculative+fix-up
//! pattern touches memory in a cache-unfriendly way, and the re-decoded
//! synchronization prefixes are pure overhead. All of that is reproduced
//! here on the CPU.

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

mod codec;
mod multians;
mod table;

pub use codec::{decode_tans_serial, encode_tans, TansStream};
pub use multians::{decode_multians, MultiansStats};
pub use table::TansTable;
