//! multians-style massively parallel self-synchronizing tANS decode.
//!
//! Two passes, as in the GPU original:
//!
//! 1. **Speculative pass (parallel)** — the bitstream is cut into
//!    byte-aligned chunks; every chunk is decoded from its start offset with
//!    a *guessed* state (0), recording `(bit position, state)` checkpoints
//!    at every `CHECKPOINT_STRIDE`-th symbol boundary (packed to 8 bytes;
//!    denser logs are pure memory-bandwidth tax).
//! 2. **Fix-up pass (sequential)** — chunk `c`'s true entry point is chunk
//!    `c-1`'s corrected exit. Re-decoding from the true entry usually
//!    collides with a recorded speculative checkpoint after a short prefix
//!    (tANS self-synchronization: once the state trajectories meet they are
//!    identical forever, so the corrected run crosses every later
//!    checkpoint); outputs are spliced at the collision. Chunks whose
//!    speculation was already correct are accepted wholesale.
//!
//! No metadata is needed — but the synchronization prefixes are re-decoded
//! work, the checkpoint log is a memory-traffic tax on every chunk, and the
//! bigger the state space (n = 16), the rarer self-synchronization becomes:
//! the exact weaknesses §5.3 measures.

use crate::codec::TansStream;
use crate::table::TansTable;
use parking_lot::Mutex;
use recoil_bitio::BitReader;
use recoil_models::Symbol;
use recoil_parallel::ThreadPool;
use recoil_rans::RansError;

/// Symbols between recorded checkpoints. Synchronization is detected at the
/// first shared checkpoint, at most `CHECKPOINT_STRIDE - 1` symbols late.
const CHECKPOINT_STRIDE: usize = 8;

/// Diagnostics from a multians decode.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MultiansStats {
    /// Chunks whose speculative decode was already on the true trajectory.
    pub chunks_accepted: usize,
    /// Chunks that synchronized after a re-decoded prefix.
    pub chunks_synced: usize,
    /// Chunks fully re-decoded (no self-sync within the chunk).
    pub chunks_rerun: usize,
    /// Symbols re-decoded during fix-up (pure overhead).
    pub resync_symbols: u64,
}

/// One chunk's speculative decode record.
struct Speculative {
    /// Output symbols.
    syms: Vec<u16>,
    /// `bitpos << 16 | state` at every `CHECKPOINT_STRIDE`-th symbol start;
    /// checkpoint `j` corresponds to symbol index `j * CHECKPOINT_STRIDE`.
    checkpoints: Vec<u64>,
    /// Bit position and state after the chunk's last symbol.
    exit: (u64, u32),
}

#[inline(always)]
fn pack(bitpos: u64, state: u32) -> u64 {
    debug_assert!(state < 1 << 16, "tANS states fit 16 bits (n <= 16)");
    (bitpos << 16) | state as u64
}

/// Decodes with `num_chunks`-way speculation, optionally on a pool.
pub fn decode_multians<S: Symbol>(
    stream: &TansStream,
    table: &TansTable,
    num_chunks: usize,
    pool: Option<&ThreadPool>,
) -> Result<(Vec<S>, MultiansStats), RansError> {
    assert!(num_chunks >= 1);
    if stream.num_symbols == 0 {
        return Ok((Vec::new(), MultiansStats::default()));
    }
    // Byte-aligned chunk starts, mirroring the GPU subsequence layout.
    let total_bits = stream.bit_len;
    let chunk_bits = (total_bits.div_ceil(num_chunks as u64)).div_ceil(8) * 8;
    let num_chunks = total_bits.div_ceil(chunk_bits.max(1)).max(1) as usize;

    // Pass 1: speculative decode of every chunk (parallel).
    let specs: Vec<Mutex<Option<Speculative>>> =
        (0..num_chunks).map(|_| Mutex::new(None)).collect();
    let run_chunk = |c: usize| {
        let start = c as u64 * chunk_bits;
        let end = (start + chunk_bits).min(total_bits);
        // Chunk 0 needs no speculation: its entry is the true header state.
        let entry_state = if c == 0 { stream.initial_state } else { 0 };
        let spec = decode_range(stream, table, start, end, entry_state);
        *specs[c].lock() = Some(spec);
    };
    match pool {
        Some(pool) if num_chunks > 1 => pool.run(num_chunks, run_chunk),
        _ => (0..num_chunks).for_each(run_chunk),
    }
    let specs: Vec<Speculative> = specs
        .into_iter()
        .map(|m| m.into_inner().expect("chunk decoded"))
        .collect();

    // Pass 2: sequential fix-up and splice.
    let mut stats = MultiansStats::default();
    let mut out: Vec<u16> = Vec::with_capacity(stream.num_symbols as usize + CHECKPOINT_STRIDE);
    let mut entry: (u64, u32) = (0, stream.initial_state);
    for (c, spec) in specs.iter().enumerate() {
        let chunk_end = ((c as u64 + 1) * chunk_bits).min(total_bits);
        if spec.checkpoints.first() == Some(&pack(entry.0, entry.1)) {
            // Speculation started exactly on the true trajectory.
            stats.chunks_accepted += 1;
            out.extend_from_slice(&spec.syms);
            entry = spec.exit;
            continue;
        }
        // Re-decode from the true entry until we collide with a recorded
        // speculative checkpoint (self-synchronization) or exhaust the chunk.
        let mut r = BitReader::new(&stream.bytes);
        r.set_pos(entry.0);
        let mut t = entry.1;
        let mut synced = false;
        while r.bit_pos() < chunk_end {
            let here = pack(r.bit_pos(), t);
            // Checkpoints are bitpos-sorted; the packed compare works because
            // the state occupies the low 16 bits.
            if let Ok(j) = spec.checkpoints.binary_search(&here) {
                // Synchronized: splice the speculative tail.
                out.extend_from_slice(&spec.syms[j * CHECKPOINT_STRIDE..]);
                entry = spec.exit;
                synced = true;
                stats.chunks_synced += 1;
                break;
            }
            let (sym, nb, base) = table.decode_entry(t);
            out.push(sym);
            stats.resync_symbols += 1;
            let bits = r.read(nb).ok_or(RansError::BitstreamUnderflow {
                pos: out.len() as u64,
            })? as u32;
            t = base + bits;
        }
        if !synced {
            stats.chunks_rerun += 1;
            entry = (r.bit_pos(), t);
        }
    }

    // Trailing symbols that consume zero bits sit exactly at the end-of-
    // stream bit position; the position-driven chunk loops exclude them, so
    // finish by symbol count.
    if (out.len() as u64) < stream.num_symbols {
        let mut r = BitReader::new(&stream.bytes);
        r.set_pos(entry.0);
        let mut t = entry.1;
        while (out.len() as u64) < stream.num_symbols {
            let (sym, nb, base) = table.decode_entry(t);
            out.push(sym);
            let bits = r.read(nb).ok_or(RansError::BitstreamUnderflow {
                pos: out.len() as u64,
            })? as u32;
            t = base + bits;
        }
    }
    // Padding bits may have produced spurious trailing symbols.
    out.truncate(stream.num_symbols as usize);
    Ok((out.into_iter().map(S::from_u16).collect(), stats))
}

/// Decodes `[start, end)` bits from `entry_state`, recording checkpoints.
fn decode_range(
    stream: &TansStream,
    table: &TansTable,
    start: u64,
    end: u64,
    entry_state: u32,
) -> Speculative {
    let mut r = BitReader::new(&stream.bytes);
    r.set_pos(start);
    let mut t = entry_state;
    // ~4 bits/symbol is a generous lower bound; avoids regrowth.
    let cap = ((end - start) / 4 + 8) as usize;
    let mut syms: Vec<u16> = Vec::with_capacity(cap);
    let mut checkpoints = Vec::with_capacity(cap / CHECKPOINT_STRIDE + 1);
    while r.bit_pos() < end {
        if syms.len().is_multiple_of(CHECKPOINT_STRIDE) {
            checkpoints.push(pack(r.bit_pos(), t));
        }
        let (sym, nb, base) = table.decode_entry(t);
        syms.push(sym);
        let bits = match r.read(nb) {
            Some(b) => b as u32,
            // Off-trajectory speculation may run past the stream tail.
            None => break,
        };
        t = base + bits;
    }
    Speculative {
        syms,
        checkpoints,
        exit: (r.bit_pos(), t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_tans;
    use recoil_models::CdfTable;

    fn sample(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| ((i ^ seed).wrapping_mul(2654435761) >> 24) as u8)
            .collect()
    }

    #[test]
    fn matches_serial_for_many_chunk_counts() {
        let data = sample(120_000, 0);
        let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, 11));
        let stream = encode_tans(&data, &table);
        for chunks in [1usize, 2, 3, 16, 100, 997] {
            let (got, _stats): (Vec<u8>, _) =
                decode_multians(&stream, &table, chunks, None).unwrap();
            assert_eq!(got, data, "chunks={chunks}");
        }
    }

    #[test]
    fn parallel_pool_matches() {
        let data = sample(300_000, 1);
        let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, 11));
        let stream = encode_tans(&data, &table);
        let pool = ThreadPool::new(7);
        let (got, stats): (Vec<u8>, _) =
            decode_multians(&stream, &table, 256, Some(&pool)).unwrap();
        assert_eq!(got, data);
        assert!(stats.chunks_accepted + stats.chunks_synced + stats.chunks_rerun > 0);
    }

    #[test]
    fn self_sync_happens_at_n11() {
        // With 2^11 states, most chunks should self-synchronize rather than
        // require a full re-decode (the premise of multians).
        let data = sample(400_000, 2);
        let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, 11));
        let stream = encode_tans(&data, &table);
        let (_, stats) = decode_multians::<u8>(&stream, &table, 64, None).unwrap();
        assert!(
            stats.chunks_synced + stats.chunks_accepted > stats.chunks_rerun,
            "self-sync failed: {stats:?}"
        );
        // Resynced prefix symbols are overhead but far below the total.
        assert!(stats.resync_symbols < data.len() as u64 / 2, "{stats:?}");
    }

    #[test]
    fn n16_sync_overhead_grows() {
        // Larger state space → longer (or failed) synchronization prefixes.
        let data = sample(200_000, 3);
        let t11 = TansTable::from_cdf(&CdfTable::of_bytes(&data, 11));
        let s11 = encode_tans(&data, &t11);
        let (_, st11) = decode_multians::<u8>(&s11, &t11, 32, None).unwrap();
        let t16 = TansTable::from_cdf(&CdfTable::of_bytes(&data, 16));
        let s16 = encode_tans(&data, &t16);
        let (got, st16) = decode_multians::<u8>(&s16, &t16, 32, None).unwrap();
        assert_eq!(got, data);
        assert!(
            st16.resync_symbols >= st11.resync_symbols,
            "n16 {st16:?} should not sync faster than n11 {st11:?}"
        );
    }

    #[test]
    fn single_chunk_equals_serial() {
        let data = sample(50_000, 4);
        let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, 11));
        let stream = encode_tans(&data, &table);
        let serial: Vec<u8> = crate::codec::decode_tans_serial(&stream, &table).unwrap();
        let (par, stats): (Vec<u8>, _) = decode_multians(&stream, &table, 1, None).unwrap();
        assert_eq!(serial, par);
        assert_eq!(stats.resync_symbols, 0);
    }

    #[test]
    fn sixteen_bit_symbols_parallel() {
        let data: Vec<u16> = (0..120_000u32).map(|i| (i % 900) as u16).collect();
        let table = TansTable::from_cdf(&CdfTable::of_u16(&data, 900, 12));
        let stream = encode_tans(&data, &table);
        let (got, _): (Vec<u16>, _) = decode_multians(&stream, &table, 64, None).unwrap();
        assert_eq!(got, data);
    }
}
