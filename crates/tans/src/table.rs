//! tANS table construction (FSE-style symbol spread).
//!
//! States are kept as offsets `t` in `[0, size)` for the conceptual state
//! `X = t + size` in `[size, 2·size)`, `size = 2^n`.

use recoil_models::CdfTable;

/// Decode and encode tables for one static distribution.
#[derive(Debug, Clone)]
pub struct TansTable {
    n: u32,
    size: u32,
    /// Per state: decoded symbol.
    decode_sym: Vec<u16>,
    /// Per state: bits to read after decoding.
    decode_nbits: Vec<u8>,
    /// Per state: next-state base (add the bits read).
    decode_base: Vec<u32>,
    /// Encode transition table, per symbol-occurrence slot.
    enc_state: Vec<u32>,
    /// Per symbol: start of its slots in `enc_state`.
    enc_start: Vec<u32>,
    /// Quantized frequencies.
    freq: Vec<u32>,
}

impl TansTable {
    /// Builds tables from quantized frequencies (sum = `2^n`).
    pub fn from_cdf(table: &CdfTable) -> Self {
        let n = table.quant_bits();
        let size = 1u32 << n;
        let alphabet = table.alphabet_size();

        // FSE spread: odd step co-prime with the power-of-two size scatters
        // each symbol's occurrences roughly uniformly.
        let step = (size >> 1) + (size >> 3) + 3;
        let mask = size - 1;
        let mut spread = vec![0u16; size as usize];
        let mut pos = 0u32;
        for s in 0..alphabet {
            for _ in 0..table.freq(s) {
                spread[pos as usize] = s as u16;
                pos = (pos + step) & mask;
            }
        }
        debug_assert_eq!(pos, 0, "spread must return to origin (full cycle)");

        let mut enc_start = vec![0u32; alphabet];
        let mut acc = 0u32;
        for (s, slot) in enc_start.iter_mut().enumerate() {
            *slot = acc;
            acc += table.freq(s);
        }

        let mut decode_sym = vec![0u16; size as usize];
        let mut decode_nbits = vec![0u8; size as usize];
        let mut decode_base = vec![0u32; size as usize];
        let mut enc_state = vec![0u32; size as usize];
        let mut next: Vec<u32> = (0..alphabet).map(|s| table.freq(s)).collect();
        for t in 0..size {
            let s = spread[t as usize] as usize;
            let x = next[s];
            next[s] += 1;
            // x in [freq, 2*freq): the "small" renormalized state.
            let nb = n - (31 - x.leading_zeros());
            decode_sym[t as usize] = s as u16;
            decode_nbits[t as usize] = nb as u8;
            decode_base[t as usize] = (x << nb) - size;
            enc_state[(enc_start[s] + (x - table.freq(s))) as usize] = t;
        }

        let freq = (0..alphabet).map(|s| table.freq(s)).collect();
        Self {
            n,
            size,
            decode_sym,
            decode_nbits,
            decode_base,
            enc_state,
            enc_start,
            freq,
        }
    }

    /// Quantization level / log2 of the state count.
    #[inline]
    pub fn quant_bits(&self) -> u32 {
        self.n
    }

    /// State count `2^n`.
    #[inline]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Decode step: `(symbol, nbits, base)` for state offset `t`.
    #[inline(always)]
    pub fn decode_entry(&self, t: u32) -> (u16, u32, u32) {
        let i = t as usize;
        (
            self.decode_sym[i],
            self.decode_nbits[i] as u32,
            self.decode_base[i],
        )
    }

    /// Encode step: shed enough low bits of `X = t + size` to land in
    /// `[freq, 2·freq)`, then transition. Returns `(next_t, bits, nbits)`.
    #[inline(always)]
    pub fn encode_step(&self, t: u32, sym: u16) -> (u32, u32, u32) {
        let s = sym as usize;
        let f = self.freq[s];
        debug_assert!(f > 0, "encoding zero-frequency symbol {sym}");
        let x_full = t + self.size;
        let mut nb = 0u32;
        while (x_full >> nb) >= 2 * f {
            nb += 1;
        }
        let bits = x_full & ((1 << nb) - 1);
        let x_small = x_full >> nb;
        let next = self.enc_state[(self.enc_start[s] + (x_small - f)) as usize];
        (next, bits, nb)
    }

    /// Bytes needed to ship the decode table with the stream (symbol,
    /// nbits, base per state) — the fixed cost that §5.3 shows exploding at
    /// `n = 16`.
    pub fn transmitted_bytes(&self, wide_symbols: bool) -> u64 {
        let sym_bytes = if wide_symbols { 2 } else { 1 };
        self.size as u64 * (sym_bytes + 1 + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: u32) -> TansTable {
        let data: Vec<u8> = (0..50_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        TansTable::from_cdf(&CdfTable::of_bytes(&data, n))
    }

    #[test]
    fn decode_entries_stay_in_range() {
        let t = table(11);
        for st in 0..t.size() {
            let (_, nb, base) = t.decode_entry(st);
            assert!(nb <= 11);
            assert!(
                base + ((1u32 << nb) - 1) < t.size(),
                "state {st} escapes range"
            );
        }
    }

    #[test]
    fn encode_then_decode_entry_invert() {
        let t = table(10);
        for st in (0..t.size()).step_by(7) {
            let (sym, _, _) = t.decode_entry(st);
            // Find a predecessor state encoding `sym` into `st`: encode from
            // every state and check the ones that land on st decode back.
            let (next, bits, nb) = t.encode_step(st, sym);
            let (dsym, dnb, dbase) = t.decode_entry(next);
            assert_eq!(dsym, sym);
            assert_eq!(dnb, nb);
            assert_eq!(dbase + bits, st);
        }
    }

    #[test]
    fn transmitted_bytes_match_state_count() {
        assert_eq!(table(11).transmitted_bytes(false), 2048 * 4);
        assert_eq!(table(16).transmitted_bytes(false), 65536 * 4);
        assert_eq!(table(16).transmitted_bytes(true), 65536 * 5);
    }

    #[test]
    fn spread_covers_all_frequencies() {
        let t = table(11);
        // Every state decodes to some symbol with nonzero frequency, and the
        // per-symbol state counts equal the frequencies.
        let mut counts = vec![0u32; 256];
        for st in 0..t.size() {
            counts[t.decode_entry(st).0 as usize] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert_eq!(c, t.freq[s], "symbol {s}");
        }
    }
}
