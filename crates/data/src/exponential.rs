//! The `rand_*` datasets: "10-Megabyte files generated with random
//! exponentially distributed bytes, with λ = 10, 50, 100, 200, 500
//! respectively representing different compression rates" (§5.1).
//!
//! A byte is `floor(Exp(mean = 256 / λ))` clamped to 255: λ = 10 is nearly
//! incompressible (≈ 6.3 bits/byte), λ = 500 concentrates almost all mass
//! at zero (≈ 0.7 bits/byte) — matching Table 4's baseline sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `len` exponentially distributed bytes for rate parameter
/// `lambda`, deterministic in `seed`.
pub fn exponential_bytes(len: usize, lambda: f64, seed: u64) -> Vec<u8> {
    assert!(lambda > 0.0);
    let mean = 256.0 / lambda;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            // Inverse-CDF sampling: -mean * ln(U), U in (0, 1].
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
            let v = -mean * u.ln();
            if v >= 255.0 {
                255
            } else {
                v as u8
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::Histogram;

    #[test]
    fn deterministic_in_seed() {
        let a = exponential_bytes(10_000, 100.0, 7);
        let b = exponential_bytes(10_000, 100.0, 7);
        let c = exponential_bytes(10_000, 100.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn entropy_matches_paper_compression_ratios() {
        // Table 4 baseline ratios at n=16 ≈ source entropy / 8.
        let cases = [
            (10.0, 7657.0 / 10_000.0),
            (50.0, 4774.0 / 10_000.0),
            (100.0, 3534.0 / 10_000.0),
            (200.0, 2317.0 / 10_000.0),
            (500.0, 886.0 / 10_000.0),
        ];
        for (lambda, paper_ratio) in cases {
            let data = exponential_bytes(400_000, lambda, 42);
            let h = Histogram::of_bytes(&data).entropy_bits() / 8.0;
            let err = (h - paper_ratio).abs() / paper_ratio;
            assert!(
                err < 0.08,
                "λ={lambda}: entropy ratio {h:.4} vs paper {paper_ratio:.4} ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn higher_lambda_is_more_compressible() {
        let h10 = Histogram::of_bytes(&exponential_bytes(100_000, 10.0, 1)).entropy_bits();
        let h500 = Histogram::of_bytes(&exponential_bytes(100_000, 500.0, 1)).entropy_bits();
        assert!(h10 > 5.5 && h500 < 1.2);
    }
}
