//! Synthetic hyperprior latents standing in for the div2k experiments.
//!
//! The paper transforms DIV2K images with the mbt2018-mean learned codec and
//! entropy-codes the resulting 16-bit latents, "adaptively model[ing] each
//! symbol with different Gaussian distributions using hyperpriors" (§5.1).
//! We reproduce the coding problem without the neural network: a smooth
//! hyper-field assigns every symbol position a Gaussian (mean, scale); the
//! symbol is a sample of that Gaussian clamped into the model window. The
//! decoder uses the identical per-position models — exactly the adaptive
//! path that forces Recoil to store symbol indices in its metadata.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recoil_models::{GaussianScaleBank, LatentModelProvider, LatentSpec};
use std::sync::Arc;

/// A generated latent dataset: symbols plus their per-position models.
pub struct LatentDataset {
    /// 16-bit latent symbols.
    pub symbols: Vec<u16>,
    /// Adaptive provider shared between encoder and decoder.
    pub provider: LatentModelProvider,
}

/// Builds a latent dataset of `count` symbols around typical scale
/// `sigma_typ` (larger → less compressible), deterministic in `seed`.
///
/// `bank` supplies the quantized scale tables (n = 16 for the div2k runs).
pub fn latent_dataset(
    bank: Arc<GaussianScaleBank>,
    count: usize,
    sigma_typ: f64,
    seed: u64,
) -> LatentDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mean_lo = bank.min_mean() as f64;
    let mean_hi = bank.max_mean() as f64;
    let mid = 0.5 * (mean_lo + mean_hi);

    // Smooth hyper-fields: random-walk mean, log-random-walk scale —
    // mimicking the spatial smoothness of hyperprior predictions.
    let mut mean = mid;
    let mut log_sigma = sigma_typ.ln();
    let mut specs = Vec::with_capacity(count);
    let mut symbols = Vec::with_capacity(count);

    for _ in 0..count {
        mean += rng.gen_range(-3.0..3.0);
        mean = mean.clamp(mean_lo, mean_hi);
        log_sigma += rng.gen_range(-0.05..0.05);
        // Keep scales within the bank's representable range.
        log_sigma = log_sigma.clamp((sigma_typ * 0.25).ln(), (sigma_typ * 4.0).ln());
        let sigma = log_sigma.exp();
        let spec = LatentSpec {
            mean: mean as u16,
            scale_idx: bank.nearest_scale(sigma),
        };
        specs.push(spec);
        // Box–Muller sample of N(mean, sigma).
        let (u1, u2): (f64, f64) = (rng.gen_range(f64::MIN_POSITIVE..1.0), rng.gen());
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let raw = (spec.mean as f64 + z * sigma).round() as i64;
        symbols.push(raw);
    }
    let provider = LatentModelProvider::new(bank, specs);
    let symbols: Vec<u16> = symbols
        .into_iter()
        .enumerate()
        .map(|(i, raw)| provider.clamp_to_window(provider.specs()[i], raw))
        .collect();
    LatentDataset { symbols, provider }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::ModelProvider;

    fn small_bank() -> Arc<GaussianScaleBank> {
        Arc::new(GaussianScaleBank::build(12, 512, 16, 0.5, 64.0))
    }

    #[test]
    fn every_symbol_is_encodable() {
        let ds = latent_dataset(small_bank(), 20_000, 6.0, 3);
        for (i, &s) in ds.symbols.iter().enumerate() {
            let (f, _) = ds.provider.stats(i as u64, s);
            assert!(f > 0, "symbol at {i} not encodable");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = latent_dataset(small_bank(), 5_000, 6.0, 9);
        let b = latent_dataset(small_bank(), 5_000, 6.0, 9);
        assert_eq!(a.symbols, b.symbols);
    }

    #[test]
    fn sigma_controls_compressibility() {
        // Larger typical scale → higher entropy → more bits.
        let tight = latent_dataset(small_bank(), 30_000, 1.0, 5);
        let wide = latent_dataset(small_bank(), 30_000, 16.0, 5);
        let spread = |ds: &LatentDataset| -> f64 {
            let diffs: Vec<f64> = ds
                .symbols
                .iter()
                .zip(ds.provider.specs())
                .map(|(&s, sp)| (s as f64 - sp.mean as f64).abs())
                .collect();
            diffs.iter().sum::<f64>() / diffs.len() as f64
        };
        assert!(spread(&wide) > 4.0 * spread(&tight));
    }

    #[test]
    fn round_trips_through_recoil_ready_codec() {
        use recoil_rans::{decode_interleaved, InterleavedEncoder, NullSink};
        let ds = latent_dataset(small_bank(), 30_000, 4.0, 11);
        let mut enc = InterleavedEncoder::new(&ds.provider, 32);
        enc.encode_all(&ds.symbols, &mut NullSink);
        let stream = enc.finish();
        let back: Vec<u16> = decode_interleaved(&stream, &ds.provider).unwrap();
        assert_eq!(back, ds.symbols);
    }
}
