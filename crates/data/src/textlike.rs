//! Synthetic substitutes for the ASCII text corpora (dickens, webster,
//! enwik8, enwik9).
//!
//! A static-model entropy coder only sees order-0 symbol statistics, so a
//! faithful substitute needs (a) a text-shaped alphabet and (b) the paper's
//! measured order-0 entropy. We sample i.i.d. from a Zipf-like distribution
//! over a ranked "English text + markup" alphabet whose exponent is solved
//! numerically to hit the target entropy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ranked alphabet approximating English prose + wiki markup: most frequent
/// first. 96 symbols keeps the support realistic for byte text.
const RANKED: &[u8] = b" etaoinshrdlcumwfgypbvkjxqz.,ETAOINSHRDLCUMWFGYPBVKJXQZ'\"-;:!?()[]{}<>/=&#%@*+_0123456789|~^\n\t";

/// Zipf-like probabilities `p_i ∝ (i + 1)^(-s)` whose entropy equals
/// `target_bits` (binary-searched over `s`). Returns the probabilities.
pub fn zipf_distribution_for_entropy(alphabet: usize, target_bits: f64) -> Vec<f64> {
    assert!(alphabet >= 2);
    let max_bits = (alphabet as f64).log2();
    assert!(
        target_bits > 0.1 && target_bits < max_bits,
        "target {target_bits} outside (0.1, {max_bits})"
    );
    let entropy_of = |s: f64| -> f64 {
        let weights: Vec<f64> = (0..alphabet).map(|i| ((i + 1) as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        weights
            .iter()
            .map(|w| -(w / total) * (w / total).log2())
            .sum()
    };
    // Entropy is monotone-decreasing in s: s = 0 is uniform (max entropy).
    let (mut lo, mut hi) = (0.0f64, 8.0f64);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if entropy_of(mid) > target_bits {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let s = 0.5 * (lo + hi);
    let weights: Vec<f64> = (0..alphabet).map(|i| ((i + 1) as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / total).collect()
}

/// `len` bytes of text-like data with order-0 entropy `target_bits`,
/// deterministic in `seed`.
pub fn text_like_bytes(len: usize, target_bits: f64, seed: u64) -> Vec<u8> {
    let probs = zipf_distribution_for_entropy(RANKED.len(), target_bits);
    // Cumulative table for inverse-CDF sampling.
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in &probs {
        acc += p;
        cdf.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let u: f64 = rng.gen();
            let idx = cdf.partition_point(|&c| c < u).min(RANKED.len() - 1);
            RANKED[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::Histogram;

    #[test]
    fn hits_requested_entropy() {
        for target in [3.5f64, 4.92, 5.29, 6.0] {
            let data = text_like_bytes(300_000, target, 11);
            let h = Histogram::of_bytes(&data).entropy_bits();
            assert!(
                (h - target).abs() < 0.05,
                "target {target}: measured {h:.3}"
            );
        }
    }

    #[test]
    fn output_is_text_shaped() {
        let data = text_like_bytes(50_000, 5.0, 3);
        // Most frequent byte should be space, as in English text.
        let h = Histogram::of_bytes(&data);
        let top = (0..256).max_by_key(|&b| h.count(b)).unwrap();
        assert_eq!(top as u8, b' ');
        assert!(data.iter().all(|b| RANKED.contains(b)));
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(text_like_bytes(1000, 5.0, 9), text_like_bytes(1000, 5.0, 9));
        assert_ne!(
            text_like_bytes(1000, 5.0, 9),
            text_like_bytes(1000, 5.0, 10)
        );
    }

    #[test]
    fn distribution_solver_is_monotone() {
        let lo = zipf_distribution_for_entropy(96, 3.0);
        let hi = zipf_distribution_for_entropy(96, 6.0);
        // Lower entropy → more mass on the top rank.
        assert!(lo[0] > hi[0]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn impossible_entropy_panics() {
        let _ = zipf_distribution_for_entropy(96, 7.5); // > log2(96)
    }
}
