//! Dataset generators reproducing the paper's Table 4 workloads.
//!
//! The environment has no network access, so the text corpora (dickens,
//! webster, enwik8/9) are replaced by seeded synthetic generators whose
//! order-0 statistics are tuned to the paper's measured compressibility —
//! which is all a static-model entropy coder can see (substitution notes in
//! `DESIGN.md`). The `rand_*` datasets are generated exactly as described
//! ("random exponentially distributed bytes"), and the div2k image latents
//! are modelled as hyperprior-style Gaussian mixtures over 16-bit symbols.

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

mod exponential;
mod hyperprior;
mod registry;
mod textlike;

pub use exponential::exponential_bytes;
pub use hyperprior::{latent_dataset, LatentDataset};
pub use registry::{Dataset, DatasetKind, PaperRef, ALL_DATASETS};
pub use textlike::{text_like_bytes, zipf_distribution_for_entropy};
