//! The named datasets of Table 4, with the paper's reference sizes attached
//! so the benchmark harness can print paper-vs-measured side by side.
//!
//! Sizes follow the paper's convention: **1 KB = 1000 bytes**.

use crate::{exponential_bytes, latent_dataset, text_like_bytes, LatentDataset};
use recoil_models::GaussianScaleBank;
use std::sync::Arc;

/// How a dataset is synthesized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatasetKind {
    /// `rand_λ`: exponentially distributed bytes (§5.1), generated exactly
    /// as the paper describes.
    Exponential {
        /// The paper's λ parameter.
        lambda: f64,
    },
    /// Text corpus substitute with the paper's measured order-0 entropy
    /// (bits/byte at the n=11 baseline).
    TextLike {
        /// Target order-0 entropy in bits per byte.
        entropy_bits: f64,
    },
    /// div2k substitute: 16-bit hyperprior latents around a typical scale.
    Latent {
        /// Typical Gaussian scale (larger → less compressible).
        sigma_typ: f64,
    },
}

/// Values reported in the paper, for side-by-side comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRef {
    /// Uncompressed size in KB (Table 4).
    pub uncompressed_kb: u64,
    /// Baseline (a) compressed size at n = 11, if evaluated.
    pub baseline_n11_kb: Option<u64>,
    /// Baseline (a) compressed size at n = 16.
    pub baseline_n16_kb: u64,
}

/// One evaluated dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dataset {
    /// Paper name (Table 4).
    pub name: &'static str,
    /// Generator parameters.
    pub kind: DatasetKind,
    /// The paper's reference numbers.
    pub paper: PaperRef,
    /// Deterministic generation seed.
    pub seed: u64,
}

impl Dataset {
    /// Full uncompressed size in bytes, as in Table 4.
    pub fn full_bytes(&self) -> usize {
        self.paper.uncompressed_kb as usize * 1000
    }

    /// True for the 16-bit-latent (adaptive-model) datasets.
    pub fn is_latent(&self) -> bool {
        matches!(self.kind, DatasetKind::Latent { .. })
    }

    /// Generates `len` bytes of this dataset (byte datasets only).
    pub fn generate_bytes(&self, len: usize) -> Vec<u8> {
        match self.kind {
            DatasetKind::Exponential { lambda } => exponential_bytes(len, lambda, self.seed),
            DatasetKind::TextLike { entropy_bits } => text_like_bytes(len, entropy_bits, self.seed),
            DatasetKind::Latent { .. } => {
                panic!("{} is a latent dataset; use generate_latents", self.name)
            }
        }
    }

    /// Generates the latent dataset scaled to `bytes` of uncompressed data
    /// (2 bytes per 16-bit symbol).
    pub fn generate_latents(&self, bank: Arc<GaussianScaleBank>, bytes: usize) -> LatentDataset {
        match self.kind {
            DatasetKind::Latent { sigma_typ } => {
                latent_dataset(bank, bytes / 2, sigma_typ, self.seed)
            }
            _ => panic!("{} is not a latent dataset", self.name),
        }
    }

    /// Looks a dataset up by its paper name.
    pub fn by_name(name: &str) -> Option<&'static Dataset> {
        ALL_DATASETS.iter().find(|d| d.name == name)
    }
}

/// All 12 datasets of Table 4. Text entropies and latent scales are derived
/// from the paper's n=16 baseline ratios (n=16 quantization loss is
/// negligible, so they estimate the true source entropy)
/// (`sigma = 2^(bits_per_symbol - 2.047)` for a discrete Gaussian).
pub const ALL_DATASETS: &[Dataset] = &[
    Dataset {
        name: "rand_10",
        kind: DatasetKind::Exponential { lambda: 10.0 },
        paper: PaperRef {
            uncompressed_kb: 10_000,
            baseline_n11_kb: Some(7_828),
            baseline_n16_kb: 7_657,
        },
        seed: 0x5EED_0001,
    },
    Dataset {
        name: "rand_50",
        kind: DatasetKind::Exponential { lambda: 50.0 },
        paper: PaperRef {
            uncompressed_kb: 10_000,
            baseline_n11_kb: Some(5_357),
            baseline_n16_kb: 4_774,
        },
        seed: 0x5EED_0002,
    },
    Dataset {
        name: "rand_100",
        kind: DatasetKind::Exponential { lambda: 100.0 },
        paper: PaperRef {
            uncompressed_kb: 10_000,
            baseline_n11_kb: Some(4_157),
            baseline_n16_kb: 3_534,
        },
        seed: 0x5EED_0003,
    },
    Dataset {
        name: "rand_200",
        kind: DatasetKind::Exponential { lambda: 200.0 },
        paper: PaperRef {
            uncompressed_kb: 10_000,
            baseline_n11_kb: Some(3_045),
            baseline_n16_kb: 2_317,
        },
        seed: 0x5EED_0004,
    },
    Dataset {
        name: "rand_500",
        kind: DatasetKind::Exponential { lambda: 500.0 },
        paper: PaperRef {
            uncompressed_kb: 10_000,
            baseline_n11_kb: Some(1_395),
            baseline_n16_kb: 886,
        },
        seed: 0x5EED_0005,
    },
    Dataset {
        name: "dickens",
        kind: DatasetKind::TextLike {
            entropy_bits: 4.548,
        },
        paper: PaperRef {
            uncompressed_kb: 10_192,
            baseline_n11_kb: Some(6_268),
            baseline_n16_kb: 5_794,
        },
        seed: 0x5EED_0006,
    },
    Dataset {
        name: "webster",
        kind: DatasetKind::TextLike {
            entropy_bits: 4.985,
        },
        paper: PaperRef {
            uncompressed_kb: 41_459,
            baseline_n11_kb: Some(27_375),
            baseline_n16_kb: 25_832,
        },
        seed: 0x5EED_0007,
    },
    Dataset {
        name: "enwik8",
        kind: DatasetKind::TextLike {
            entropy_bits: 5.087,
        },
        paper: PaperRef {
            uncompressed_kb: 100_000,
            baseline_n11_kb: Some(66_128),
            baseline_n16_kb: 63_588,
        },
        seed: 0x5EED_0008,
    },
    Dataset {
        name: "enwik9",
        kind: DatasetKind::TextLike {
            entropy_bits: 5.164,
        },
        paper: PaperRef {
            uncompressed_kb: 1_000_000,
            baseline_n11_kb: Some(672_816),
            baseline_n16_kb: 645_443,
        },
        seed: 0x5EED_0009,
    },
    Dataset {
        name: "div2k801",
        kind: DatasetKind::Latent { sigma_typ: 6.06 },
        paper: PaperRef {
            uncompressed_kb: 7_209,
            baseline_n11_kb: None,
            baseline_n16_kb: 2_093,
        },
        seed: 0x5EED_000A,
    },
    Dataset {
        name: "div2k803",
        kind: DatasetKind::Latent { sigma_typ: 22.3 },
        paper: PaperRef {
            uncompressed_kb: 7_864,
            baseline_n11_kb: None,
            baseline_n16_kb: 3_208,
        },
        seed: 0x5EED_000B,
    },
    Dataset {
        name: "div2k805",
        kind: DatasetKind::Latent { sigma_typ: 2.0 },
        paper: PaperRef {
            uncompressed_kb: 7_864,
            baseline_n11_kb: None,
            baseline_n16_kb: 1_496,
        },
        seed: 0x5EED_000C,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use recoil_models::Histogram;

    #[test]
    fn registry_has_all_twelve() {
        assert_eq!(ALL_DATASETS.len(), 12);
        assert!(Dataset::by_name("enwik9").is_some());
        assert!(Dataset::by_name("div2k805").is_some());
        assert!(Dataset::by_name("nope").is_none());
    }

    #[test]
    fn byte_datasets_hit_paper_baseline_ratio() {
        // Generated entropy must land near the paper's n=16 baseline ratio
        // (n=16 quantization loss is negligible, so that ratio estimates the
        // true source entropy).
        for d in ALL_DATASETS.iter().filter(|d| !d.is_latent()) {
            let data = d.generate_bytes(300_000);
            let measured = Histogram::of_bytes(&data).entropy_bits() / 8.0;
            let paper = d.paper.baseline_n16_kb as f64 / d.paper.uncompressed_kb as f64;
            let err = (measured - paper).abs() / paper;
            assert!(
                err < 0.09,
                "{}: measured {measured:.3} vs paper {paper:.3}",
                d.name
            );
        }
    }

    #[test]
    fn latent_datasets_generate() {
        let bank = Arc::new(GaussianScaleBank::build(12, 512, 16, 0.5, 64.0));
        let d = Dataset::by_name("div2k805").unwrap();
        let ds = d.generate_latents(bank, 10_000);
        assert_eq!(ds.symbols.len(), 5_000);
    }

    #[test]
    #[should_panic(expected = "latent dataset")]
    fn latent_bytes_panics() {
        Dataset::by_name("div2k801").unwrap().generate_bytes(10);
    }
}
