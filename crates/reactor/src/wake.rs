//! Cross-thread wakeups for the readiness loop.
//!
//! Dispatch workers finish CPU-bound jobs off-loop and must interrupt a
//! blocked `Poller::wait`. The classic self-pipe does it with zero
//! dependencies: the loop registers the read end under a reserved token,
//! workers write one byte. Both ends are `O_NONBLOCK` — a full pipe means
//! a wakeup is already pending, so `EAGAIN` on write is success.

use crate::sys;
use std::io;
use std::os::fd::RawFd;
use std::sync::Arc;

/// Owns the pipe; the loop side. Register [`WakePipe::read_fd`] for read
/// interest and call [`WakePipe::drain`] whenever it fires.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    pub fn new() -> io::Result<Arc<Self>> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a live array of exactly the two i32s pipe2
        // writes on success.
        sys::cvt_retry(|| unsafe {
            sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC)
        })?;
        Ok(Arc::new(Self {
            read_fd: fds[0],
            write_fd: fds[1],
        }))
    }

    /// The fd to register with the poller (read interest).
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Consumes all pending wakeup bytes so the next wake edge-triggers
    /// afresh.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: `buf` is a live 64-byte local and the kernel is told
            // its exact length; `read_fd` is owned by this WakePipe.
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                let e = io::Error::last_os_error();
                if n < 0 && e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                break;
            }
        }
    }

    /// A cloneable handle workers use to wake the loop.
    pub fn waker(self: &Arc<Self>) -> Waker {
        Waker(Arc::clone(self))
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: both fds are owned by this WakePipe and every Waker
        // holds an Arc to it, so nothing can use them after the last drop;
        // close takes no pointers.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

/// Wakes the readiness loop from any thread. Cheap to clone.
#[derive(Clone)]
pub struct Waker(Arc<WakePipe>);

impl Waker {
    /// Never blocks: a full pipe (`EAGAIN`) already guarantees a pending
    /// wakeup.
    pub fn wake(&self) {
        let byte = 1u8;
        loop {
            // SAFETY: one byte is read from a live local; `write_fd` stays
            // open for as long as this Waker's Arc keeps the pipe alive.
            let n = unsafe { sys::write(self.0.write_fd, (&raw const byte).cast(), 1) };
            if n >= 0 {
                return;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poller::{Event, Interest, Poller};
    use crate::token::Token;
    use std::time::Duration;

    #[test]
    fn wake_unblocks_wait_on_both_backends() {
        for mut poller in [
            Poller::new().unwrap(),
            Poller::with_poll_fallback().unwrap(),
        ] {
            let pipe = WakePipe::new().unwrap();
            poller
                .register(pipe.read_fd(), Token(u64::MAX), Interest::READ)
                .unwrap();
            let waker = pipe.waker();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                waker.wake();
            });
            let mut events: Vec<Event> = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events
                .iter()
                .any(|e| e.token == Token(u64::MAX) && e.readable));
            pipe.drain();
            // Drained: no residual readiness.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.iter().all(|e| e.token != Token(u64::MAX)));
            handle.join().unwrap();
            poller.deregister(pipe.read_fd()).unwrap();
        }
    }

    #[test]
    fn many_wakes_coalesce() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        // Far more wakes than the pipe buffer holds; none may block.
        for _ in 0..100_000 {
            waker.wake();
        }
        pipe.drain();
    }
}
