//! Per-connection deadlines with lazy invalidation.
//!
//! The reactor keeps at most one live deadline per token (partial-frame
//! progress, write stall, drain). Deadlines change constantly — every
//! byte of progress pushes the cutoff out — so instead of deleting from
//! the middle of a heap, each `set`/`clear` bumps a per-token version and
//! stale heap entries are discarded when they surface. The heap's head
//! therefore always bounds the next real deadline from below, which is
//! exactly what the poll-timeout computation needs.

use crate::token::Token;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

#[derive(Default)]
pub struct DeadlineQueue {
    /// `(when, version, token)` min-heap.
    heap: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    /// Token → currently-live version; absent means no live deadline.
    live: HashMap<u64, u64>,
    next_version: u64,
}

impl DeadlineQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) `token`'s deadline.
    pub fn set(&mut self, token: Token, when: Instant) {
        self.next_version += 1;
        self.live.insert(token.0, self.next_version);
        self.heap.push(Reverse((when, self.next_version, token.0)));
    }

    /// Clears `token`'s deadline, if any. The heap entry dies lazily.
    pub fn clear(&mut self, token: Token) {
        self.live.remove(&token.0);
    }

    /// Pops every deadline at or before `now` into `out` (not cleared),
    /// clearing them. Stale entries encountered along the way are dropped.
    pub fn expired(&mut self, now: Instant, out: &mut Vec<Token>) {
        while let Some(Reverse((when, version, raw))) = self.heap.peek().copied() {
            if when > now {
                break;
            }
            self.heap.pop();
            if self.live.get(&raw) == Some(&version) {
                self.live.remove(&raw);
                out.push(Token(raw));
            }
        }
    }

    /// Lower bound on the next live deadline: the caller can sleep until
    /// this instant. Pruning stale heads here keeps the bound tight.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        while let Some(Reverse((when, version, raw))) = self.heap.peek().copied() {
            if self.live.get(&raw) == Some(&version) {
                return Some(when);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live deadlines.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn expiry_in_order_and_replacement() {
        let mut q = DeadlineQueue::new();
        let base = Instant::now();
        q.set(Token(1), base + Duration::from_millis(10));
        q.set(Token(2), base + Duration::from_millis(5));
        // Replace token 1's deadline with a later one.
        q.set(Token(1), base + Duration::from_millis(20));
        assert_eq!(q.len(), 2);

        let mut out = Vec::new();
        q.expired(base + Duration::from_millis(6), &mut out);
        assert_eq!(out, vec![Token(2)]);

        out.clear();
        q.expired(base + Duration::from_millis(15), &mut out);
        assert!(out.is_empty(), "replaced deadline must not fire early");

        out.clear();
        q.expired(base + Duration::from_millis(25), &mut out);
        assert_eq!(out, vec![Token(1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn clear_prevents_expiry_and_next_deadline_skips_stale() {
        let mut q = DeadlineQueue::new();
        let base = Instant::now();
        q.set(Token(7), base + Duration::from_millis(1));
        q.set(Token(8), base + Duration::from_millis(50));
        q.clear(Token(7));
        assert_eq!(q.next_deadline(), Some(base + Duration::from_millis(50)));
        let mut out = Vec::new();
        q.expired(base + Duration::from_millis(10), &mut out);
        assert!(out.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_has_no_deadline() {
        let mut q = DeadlineQueue::new();
        assert_eq!(q.next_deadline(), None);
        let mut out = Vec::new();
        q.expired(Instant::now(), &mut out);
        assert!(out.is_empty());
    }
}
