//! Slab-allocated connection pools with generation-checked tokens and
//! slot *parking*.
//!
//! A [`Slab`] hands out dense `u32` indices so per-connection state lives
//! in one contiguous `Vec` (cache-friendly, O(1) everything). Two twists
//! over a textbook slab:
//!
//! - **Generations.** Every slot carries a generation counter bumped on
//!   removal, and the [`Token`] packs `generation << 32 | index`. A stale
//!   token (readiness event for a connection that was closed and whose
//!   slot was reused) fails the generation check and resolves to `None`
//!   instead of aliasing the new occupant.
//! - **Parking.** `remove_with` doesn't drop the value — it hands it to a
//!   `reset` closure which may *park* it in the vacant slot. The next
//!   `insert_with` receives the parked carcass, so a connection's frame
//!   and write buffers are reused across connections and the steady path
//!   performs no allocation. The `allocations`/`reuses` counters make
//!   that property testable.

use crate::token::Token;

struct Entry<T> {
    generation: u32,
    occupied: bool,
    /// `Some` while occupied, and possibly `Some` while vacant too — that
    /// is a *parked* value awaiting reuse.
    value: Option<T>,
}

/// Reuse/allocation tallies, for asserting the no-steady-state-allocation
/// property in tests and reporting it in benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Inserts that constructed fresh state (no parked value available).
    pub allocations: u64,
    /// Inserts that recycled a parked value.
    pub reuses: u64,
}

/// Fixed-capacity slab; see the module docs.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Vacant slot indices; LIFO so recently-parked (cache-warm) slots are
    /// reused first.
    free: Vec<u32>,
    len: usize,
    max_slots: u32,
    stats: SlabStats,
}

impl<T> Slab<T> {
    /// A slab that will never hold more than `max_slots` values at once.
    /// Slot storage grows on demand up to that cap and is never shrunk.
    pub fn with_capacity(max_slots: usize) -> Self {
        let max_slots = u32::try_from(max_slots).unwrap_or(u32::MAX);
        Self {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
            max_slots,
            stats: SlabStats::default(),
        }
    }

    /// Occupies a slot, constructing the value via `init`, which receives
    /// the slot's parked value (if any) for reuse. Returns `None` when the
    /// slab is at capacity.
    pub fn insert_with(&mut self, init: impl FnOnce(Option<T>) -> T) -> Option<Token> {
        let index = match self.free.pop() {
            Some(index) => index,
            None => {
                if self.entries.len() >= self.max_slots as usize {
                    return None;
                }
                let index = self.entries.len() as u32;
                self.entries.push(Entry {
                    generation: 0,
                    occupied: false,
                    value: None,
                });
                index
            }
        };
        let entry = &mut self.entries[index as usize];
        debug_assert!(!entry.occupied);
        let parked = entry.value.take();
        if parked.is_some() {
            self.stats.reuses += 1;
        } else {
            self.stats.allocations += 1;
        }
        entry.value = Some(init(parked));
        entry.occupied = true;
        self.len += 1;
        Some(Token::pack(index, entry.generation))
    }

    fn entry(&self, token: Token) -> Option<&Entry<T>> {
        self.entries
            .get(token.index() as usize)
            .filter(|e| e.occupied && e.generation == token.generation())
    }

    pub fn get(&self, token: Token) -> Option<&T> {
        self.entry(token).and_then(|e| e.value.as_ref())
    }

    pub fn get_mut(&mut self, token: Token) -> Option<&mut T> {
        let generation = token.generation();
        self.entries
            .get_mut(token.index() as usize)
            .filter(|e| e.occupied && e.generation == generation)
            .and_then(|e| e.value.as_mut())
    }

    pub fn contains(&self, token: Token) -> bool {
        self.entry(token).is_some()
    }

    /// Vacates `token`'s slot. The removed value goes through `reset`,
    /// which returns `Some(carcass)` to park it for reuse or `None` to
    /// drop it. Returns whether the token was live.
    pub fn remove_with(&mut self, token: Token, reset: impl FnOnce(T) -> Option<T>) -> bool {
        let generation = token.generation();
        let Some(entry) = self
            .entries
            .get_mut(token.index() as usize)
            .filter(|e| e.occupied && e.generation == generation)
        else {
            return false;
        };
        let value = entry.value.take().expect("occupied slot has a value");
        entry.value = reset(value);
        entry.occupied = false;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(token.index());
        self.len -= 1;
        true
    }

    /// Appends the token of every occupied slot to `out` (not cleared).
    pub fn collect_tokens(&self, out: &mut Vec<Token>) {
        for (index, entry) in self.entries.iter().enumerate() {
            if entry.occupied {
                out.push(Token::pack(index as u32, entry.generation));
            }
        }
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The capacity cap this slab was created with.
    pub fn max_slots(&self) -> usize {
        self.max_slots as usize
    }

    /// Slots still available before hitting the cap.
    pub fn open_slots(&self) -> usize {
        self.max_slots as usize - self.len
    }

    pub fn stats(&self) -> SlabStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab: Slab<String> = Slab::with_capacity(4);
        let t = slab.insert_with(|_| "hello".to_string()).unwrap();
        assert_eq!(slab.get(t).unwrap(), "hello");
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.open_slots(), 3);
        assert!(slab.remove_with(t, |_| None));
        assert!(slab.get(t).is_none());
        assert!(slab.is_empty());
        assert_eq!(slab.open_slots(), 4);
    }

    #[test]
    fn capacity_cap_is_enforced() {
        let mut slab: Slab<u32> = Slab::with_capacity(2);
        let a = slab.insert_with(|_| 1).unwrap();
        let _b = slab.insert_with(|_| 2).unwrap();
        assert!(slab.insert_with(|_| 3).is_none());
        slab.remove_with(a, |_| None);
        assert!(slab.insert_with(|_| 4).is_some());
    }

    #[test]
    fn stale_token_does_not_alias_reused_slot() {
        let mut slab: Slab<u32> = Slab::with_capacity(2);
        let old = slab.insert_with(|_| 10).unwrap();
        slab.remove_with(old, |_| None);
        let new = slab.insert_with(|_| 20).unwrap();
        // Same slot, different generation.
        assert_eq!(old.index(), new.index());
        assert_ne!(old.generation(), new.generation());
        assert!(slab.get(old).is_none());
        assert!(!slab.remove_with(old, |_| None));
        assert_eq!(*slab.get(new).unwrap(), 20);
    }

    #[test]
    fn parked_values_are_recycled_not_reallocated() {
        let mut slab: Slab<Vec<u8>> = Slab::with_capacity(4);
        let t = slab
            .insert_with(|parked| {
                assert!(parked.is_none());
                Vec::with_capacity(4096)
            })
            .unwrap();
        let cap = slab.get(t).unwrap().capacity();
        // Park the buffer (cleared, capacity kept) on removal.
        slab.remove_with(t, |mut v| {
            v.clear();
            Some(v)
        });
        let t2 = slab
            .insert_with(|parked| {
                let v = parked.expect("parked buffer available");
                assert!(v.is_empty());
                v
            })
            .unwrap();
        assert_eq!(slab.get(t2).unwrap().capacity(), cap);
        assert_eq!(
            slab.stats(),
            SlabStats {
                allocations: 1,
                reuses: 1
            }
        );
    }

    #[test]
    fn collect_tokens_walks_occupied_slots() {
        let mut slab: Slab<u32> = Slab::with_capacity(8);
        let a = slab.insert_with(|_| 1).unwrap();
        let b = slab.insert_with(|_| 2).unwrap();
        let c = slab.insert_with(|_| 3).unwrap();
        slab.remove_with(b, |_| None);
        let mut tokens = Vec::new();
        slab.collect_tokens(&mut tokens);
        tokens.sort();
        let mut expect = vec![a, c];
        expect.sort();
        assert_eq!(tokens, expect);
    }
}
