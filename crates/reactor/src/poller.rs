//! The readiness poller: edge-triggered `epoll` on Linux, `poll(2)`
//! everywhere (and on demand, for tests and exotic targets).
//!
//! The two backends deliberately expose one API with one contract the
//! caller can rely on for **both** semantics: after any event (or any
//! state change of its own making) the caller drains the fd until
//! `WouldBlock`. Under edge-triggered epoll that is required for
//! correctness; under level-triggered poll it is merely efficient. The
//! caller also keeps its registered interest precise (read only while
//! reading, write only while a write is actually blocked) — that is what
//! stops the level-triggered backend from spinning on always-writable
//! sockets, and under epoll the `MOD` re-arms edges across interest
//! changes.

use crate::sys;
use crate::token::Token;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What readiness to watch for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    pub const NONE: Interest = Interest(0);
    pub const READ: Interest = Interest(1);
    pub const WRITE: Interest = Interest(2);
    pub const READ_WRITE: Interest = Interest(3);

    pub fn readable(self) -> bool {
        self.0 & 1 != 0
    }
    pub fn writable(self) -> bool {
        self.0 & 2 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    /// Peer hangup / error: the fd needs attention even if no interest bit
    /// matched (epoll reports these unconditionally).
    pub hangup: bool,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
        buf: Vec<sys::epoll_event>,
    },
    Poll {
        /// Registered fds in insertion order; `wait` mirrors this into the
        /// reusable `pollfd` scratch.
        entries: Vec<(RawFd, Token, Interest)>,
        scratch: Vec<sys::pollfd>,
    },
}

/// The readiness poller. See the module docs for the drain-until-
/// `WouldBlock` contract callers must follow.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Platform-preferred backend: edge-triggered epoll on Linux, poll(2)
    /// elsewhere.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            // SAFETY: no pointers cross this call; the kernel returns a
            // fresh fd (or -1) which `cvt_retry` turns into a Result.
            let epfd = sys::cvt_retry(|| unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
            Ok(Self {
                backend: Backend::Epoll {
                    epfd,
                    // `wait` reserves its batch before every syscall, so
                    // the buffer can start empty.
                    buf: Vec::new(),
                },
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Self::with_poll_fallback()
        }
    }

    /// The portable level-triggered poll(2) backend, selectable explicitly
    /// so the fallback stays exercised on Linux CI.
    pub fn with_poll_fallback() -> io::Result<Self> {
        Ok(Self {
            backend: Backend::Poll {
                entries: Vec::new(),
                scratch: Vec::new(),
            },
        })
    }

    /// Whether events are edge reports (epoll) rather than level reports.
    pub fn is_edge_triggered(&self) -> bool {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => true,
            Backend::Poll { .. } => false,
        }
    }

    pub fn register(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, token, interest)
            }
            Backend::Poll { entries, .. } => {
                debug_assert!(entries.iter().all(|(f, ..)| *f != fd), "fd re-registered");
                entries.push((fd, token, interest));
                Ok(())
            }
        }
    }

    pub fn modify(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, .. } => {
                epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, token, interest)
            }
            Backend::Poll { entries, .. } => {
                let entry = entries
                    .iter_mut()
                    .find(|(f, ..)| *f == fd)
                    .ok_or_else(|| io::Error::other("modify of unregistered fd"))?;
                entry.1 = token;
                entry.2 = interest;
                Ok(())
            }
        }
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            // SAFETY: EPOLL_CTL_DEL ignores the event argument (null is
            // explicitly allowed since kernel 2.6.9); `epfd` is the live
            // epoll fd owned by this poller.
            Backend::Epoll { epfd, .. } => sys::cvt_retry(|| unsafe {
                sys::epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, std::ptr::null_mut())
            })
            .map(drop),
            Backend::Poll { entries, .. } => {
                entries.retain(|(f, ..)| *f != fd);
                Ok(())
            }
        }
    }

    /// Blocks until readiness or `timeout`, appending reports to `events`
    /// (which is cleared first). A `timeout` of `None` blocks indefinitely.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd, buf } => {
                // One syscall reports at most EVENT_BATCH events;
                // edge-triggered readiness for any remainder stays queued
                // in the kernel ready list and surfaces on the next wait.
                const EVENT_BATCH: usize = 1024;
                buf.clear();
                // Reserve *before* telling the kernel how much room there
                // is — the batch size passed to epoll_wait must never
                // exceed the spare capacity actually allocated behind
                // `buf.as_mut_ptr()`, or the kernel would write past the
                // buffer.
                buf.reserve(EVENT_BATCH);
                // SAFETY: `buf` is empty with at least EVENT_BATCH entries
                // of spare capacity (reserved above), and the kernel
                // writes at most EVENT_BATCH events starting at
                // `buf.as_mut_ptr()`; `epfd` is the live epoll fd owned by
                // this poller.
                let n = sys::cvt_retry(|| unsafe {
                    sys::epoll_wait(
                        *epfd,
                        buf.as_mut_ptr(),
                        EVENT_BATCH as i32,
                        sys::timeout_ms(timeout),
                    )
                })?;
                // SAFETY: the kernel initialized the first `n` entries,
                // and `n <= EVENT_BATCH <= buf.capacity()`.
                unsafe { buf.set_len(n as usize) };
                for ev in buf.iter() {
                    // Copy out of the (possibly packed) struct first.
                    let bits = ev.events;
                    let data = ev.data;
                    events.push(Event {
                        token: Token(data),
                        readable: bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                        writable: bits & sys::EPOLLOUT != 0,
                        hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                    });
                }
                Ok(())
            }
            Backend::Poll { entries, scratch } => {
                scratch.clear();
                scratch.extend(entries.iter().map(|&(fd, _, interest)| sys::pollfd {
                    fd,
                    events: (if interest.readable() { sys::POLLIN } else { 0 })
                        | (if interest.writable() { sys::POLLOUT } else { 0 }),
                    revents: 0,
                }));
                // SAFETY: `scratch` holds exactly `scratch.len()`
                // initialized pollfds; the kernel only rewrites their
                // `revents` fields in place.
                let n = sys::cvt_retry(|| unsafe {
                    sys::poll(
                        scratch.as_mut_ptr(),
                        scratch.len() as sys::nfds_t,
                        sys::timeout_ms(timeout),
                    )
                })?;
                if n > 0 {
                    for (pfd, &(_, token, _)) in scratch.iter().zip(entries.iter()) {
                        let r = pfd.revents;
                        if r != 0 {
                            events.push(Event {
                                token,
                                readable: r & sys::POLLIN != 0,
                                writable: r & sys::POLLOUT != 0,
                                hangup: r & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
                            });
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
    let mut ev = sys::epoll_event {
        events: (if interest.readable() { sys::EPOLLIN } else { 0 })
            | (if interest.writable() {
                sys::EPOLLOUT
            } else {
                0
            })
            | sys::EPOLLRDHUP
            | sys::EPOLLET,
        data: token.0,
    };
    // SAFETY: `ev` is a live, fully initialized epoll_event for the whole
    // call; the kernel copies it and does not retain the pointer.
    sys::cvt_retry(|| unsafe { sys::epoll_ctl(epfd, op, fd, &mut ev) }).map(drop)
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        if let Backend::Epoll { epfd, .. } = &self.backend {
            // SAFETY: `epfd` is owned by this poller and never used after
            // drop; close takes no pointers.
            unsafe { sys::close(*epfd) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pollers() -> Vec<Poller> {
        vec![
            Poller::new().unwrap(),
            Poller::with_poll_fallback().unwrap(),
        ]
    }

    /// A connected nonblocking loopback pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn read_readiness_fires_on_both_backends() {
        for mut poller in pollers() {
            let (mut a, mut b) = pair();
            poller
                .register(b.as_raw_fd(), Token(7), Interest::READ)
                .unwrap();
            let mut events = Vec::new();
            // Nothing to read yet.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.iter().all(|e| !e.readable));

            a.write_all(b"hi").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            let ev = events.iter().find(|e| e.token == Token(7)).unwrap();
            assert!(ev.readable);
            let mut buf = [0u8; 8];
            assert_eq!(b.read(&mut buf).unwrap(), 2);
            poller.deregister(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn write_interest_and_modify() {
        for mut poller in pollers() {
            let (a, _b) = pair();
            poller
                .register(a.as_raw_fd(), Token(1), Interest::NONE)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.iter().all(|e| !e.writable && !e.readable));

            // An empty socket buffer is writable the moment we ask.
            poller
                .modify(a.as_raw_fd(), Token(2), Interest::WRITE)
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            let ev = events.iter().find(|e| e.token == Token(2)).unwrap();
            assert!(ev.writable);
            poller.deregister(a.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn hangup_is_reported() {
        for mut poller in pollers() {
            let (a, b) = pair();
            poller
                .register(b.as_raw_fd(), Token(3), Interest::READ)
                .unwrap();
            drop(a);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            let ev = events.iter().find(|e| e.token == Token(3)).unwrap();
            // A clean close shows as readable (EOF) and usually as hangup.
            assert!(ev.readable || ev.hangup);
        }
    }

    /// Regression: `wait` once passed a batch size of `max(capacity, 64)`
    /// to the kernel while pointing at the Vec's (possibly smaller)
    /// allocation. The buffer now starts empty and `wait` reserves its
    /// batch before every syscall — so a fresh poller must deliver a pile
    /// of simultaneously-ready fds without losing (or corrupting) any.
    #[test]
    fn many_ready_fds_arrive_through_a_fresh_buffer() {
        use crate::wake::WakePipe;
        for mut poller in pollers() {
            let pipes: Vec<_> = (0..70).map(|_| WakePipe::new().unwrap()).collect();
            for (i, pipe) in pipes.iter().enumerate() {
                pipe.waker().wake();
                poller
                    .register(pipe.read_fd(), Token(i as u64), Interest::READ)
                    .unwrap();
            }
            let mut events = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..8 {
                poller
                    .wait(&mut events, Some(Duration::from_millis(500)))
                    .unwrap();
                for e in &events {
                    if e.readable {
                        seen.insert(e.token.0);
                    }
                }
                if seen.len() == pipes.len() {
                    break;
                }
            }
            assert_eq!(seen.len(), pipes.len());
            for pipe in &pipes {
                poller.deregister(pipe.read_fd()).unwrap();
            }
        }
    }

    #[test]
    fn timeout_expires_without_events() {
        for mut poller in pollers() {
            let (_a, b) = pair();
            poller
                .register(b.as_raw_fd(), Token(4), Interest::READ)
                .unwrap();
            let mut events = Vec::new();
            let t0 = std::time::Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert!(events.is_empty());
            assert!(t0.elapsed() >= Duration::from_millis(25));
        }
    }
}
