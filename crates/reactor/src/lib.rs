//! # recoil-reactor — the event-driven half of the transport
//!
//! A dependency-free readiness loop toolkit: everything `recoil-net`
//! needs to serve thousands of concurrent connections from one thread,
//! built directly on the platform's syscalls (no `mio`, no `tokio`).
//!
//! The crate provides four orthogonal pieces; the server loop composes
//! them:
//!
//! - [`poller::Poller`] — readiness notification. Edge-triggered `epoll`
//!   on Linux via a thin libc FFI ([`sys`]), with a portable
//!   level-triggered `poll(2)` fallback that is also constructible
//!   explicitly ([`poller::Poller::with_poll_fallback`]) so tests
//!   exercise both on Linux. One contract covers both backends: after an
//!   event, drain the fd until `WouldBlock`, and keep registered interest
//!   precise (read while reading, write only while a write is blocked).
//! - [`slab::Slab`] — pooled per-connection state. Dense slots addressed
//!   by generation-checked [`slab::Token`]s (stale readiness events can't
//!   alias a recycled slot), with slot *parking*: a removed connection's
//!   buffers stay in the vacant slot and are handed to the next insert,
//!   so accepting a connection on a warm slab allocates nothing.
//! - [`deadline::DeadlineQueue`] — reactor-managed timeouts. One live
//!   deadline per token, lazily-invalidated binary heap; the head bounds
//!   the poll timeout, expiry hands back tokens to evict.
//! - [`wake::WakePipe`] / [`wake::Waker`] — cross-thread wakeups via a
//!   nonblocking self-pipe, so CPU-bound work finished on a thread pool
//!   can interrupt a blocked `wait` and complete back into the loop.
//!
//! The intended shape of a loop built from these (this is what
//! `recoil-net`'s server does):
//!
//! ```text
//! register(listener, LISTENER_TOKEN, READ);
//! register(wake_pipe.read_fd(), WAKE_TOKEN, READ);
//! loop {
//!     poller.wait(&mut events, deadlines.next_deadline() - now);
//!     for event in &events {
//!         match event.token {
//!             LISTENER_TOKEN => accept until WouldBlock, slab.insert_with(..),
//!             WAKE_TOKEN     => wake_pipe.drain(); collect completions,
//!             token          => if let Some(conn) = slab.get_mut(token) {
//!                                  pump conn's state machine until WouldBlock
//!                              } // else: stale event for a closed slot — ignore
//!         }
//!     }
//!     deadlines.expired(now, &mut timed_out); // evict slow peers
//! }
//! ```
//!
//! Nothing in this crate knows about frames, rANS, or the content server;
//! it is plain readiness plumbing and is tested as such.

// Audited unsafe crate: every unsafe operation sits in an explicit block.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod deadline;
pub mod poller;
pub mod slab;
#[doc(hidden)]
pub mod sys;
pub mod token;
pub mod wake;

pub use deadline::DeadlineQueue;
pub use poller::{Event, Interest, Poller};
pub use slab::{Slab, SlabStats};
pub use token::Token;
pub use wake::{WakePipe, Waker};
