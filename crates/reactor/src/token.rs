//! The shared connection handle.
//!
//! One `u64` flows through the whole reactor: the slab packs
//! `generation << 32 | index` into it, the poller carries it opaquely in
//! kernel event data, and the deadline queue keys on it. Reserved values
//! (listener, wake pipe) live far above any slab index, e.g. `u64::MAX`.

use std::fmt;

/// Generation-checked handle to one slab slot: `generation << 32 | index`.
/// The poller and deadline queue treat it as an opaque 64-bit id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

impl Token {
    pub fn index(self) -> u32 {
        self.0 as u32
    }
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
    pub(crate) fn pack(index: u32, generation: u32) -> Token {
        Token(((generation as u64) << 32) | index as u64)
    }
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Token({}g{})", self.index(), self.generation())
    }
}
