//! Thin libc FFI for the poller backends.
//!
//! `std` already links the platform libc, so declaring the handful of
//! syscall wrappers we need keeps this crate dependency-free: `epoll` for
//! the edge-triggered Linux backend, `poll` for the portable fallback, and
//! `pipe2` for the cross-thread wake channel. Everything here is `unsafe`
//! raw-fd plumbing; the safe wrappers live in [`crate::poller`] and
//! [`crate::wake`].

#![allow(non_camel_case_types)]

use std::os::raw::{c_int, c_uint, c_ulong, c_void};

pub type nfds_t = c_ulong;

// --- epoll (Linux only) ----------------------------------------------------

#[cfg(target_os = "linux")]
pub const EPOLL_CLOEXEC: c_int = 0o2000000;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_MOD: c_int = 3;

#[cfg(target_os = "linux")]
pub const EPOLLIN: u32 = 0x001;
#[cfg(target_os = "linux")]
pub const EPOLLOUT: u32 = 0x004;
#[cfg(target_os = "linux")]
pub const EPOLLERR: u32 = 0x008;
#[cfg(target_os = "linux")]
pub const EPOLLHUP: u32 = 0x010;
#[cfg(target_os = "linux")]
pub const EPOLLRDHUP: u32 = 0x2000;
#[cfg(target_os = "linux")]
pub const EPOLLET: u32 = 1 << 31;

/// The kernel's `epoll_event`. On x86 the kernel declares it packed (the
/// 64-bit data field sits at offset 4); other architectures use natural
/// alignment.
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub data: u64,
}

#[cfg(target_os = "linux")]
extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
}

// --- poll(2), the portable fallback ----------------------------------------

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;
pub const POLLNVAL: i16 = 0x020;

#[repr(C)]
#[derive(Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

// --- pipes and fd bookkeeping ----------------------------------------------

/// `O_NONBLOCK` / `O_CLOEXEC` as on every architecture this workspace
/// targets (x86-64 and aarch64 agree).
pub const O_NONBLOCK: c_int = 0o4000;
pub const O_CLOEXEC: c_int = 0o2000000;

extern "C" {
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    pub fn close(fd: c_int) -> c_int;
}

/// Retries a syscall returning -1/EINTR.
pub fn cvt_retry(mut f: impl FnMut() -> c_int) -> std::io::Result<c_int> {
    loop {
        let r = f();
        if r >= 0 {
            return Ok(r);
        }
        let e = std::io::Error::last_os_error();
        if e.kind() != std::io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

/// Milliseconds for a poll/epoll timeout: `None` blocks forever, zero-ish
/// durations round **up** so a pending deadline is never spun on.
pub fn timeout_ms(timeout: Option<std::time::Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms.min(i32::MAX as u128) as c_int
            }
        }
    }
}

// Silence "unused" on non-Linux builds where only the poll backend exists.
#[allow(unused)]
pub const _UNUSED: c_uint = 0;
