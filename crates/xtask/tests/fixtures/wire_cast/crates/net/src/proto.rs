pub fn parse(len: u32) -> u16 {
    len as u16
}
