pub fn parse(len: u32) -> u16 {
    // xtask: allow(wire-cast): fixture proving the suppression plumbing records a reason.
    len as u16
}
