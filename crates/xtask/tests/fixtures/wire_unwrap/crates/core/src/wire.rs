pub fn parse(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap()
}
