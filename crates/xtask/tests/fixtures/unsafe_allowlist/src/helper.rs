pub fn read(xs: &[u32]) -> u32 {
    // SAFETY: the slice is non-empty by the caller's contract.
    unsafe { *xs.as_ptr() }
}
