pub fn alloc(len: usize) -> Vec<u8> {
    Vec::with_capacity(len)
}
