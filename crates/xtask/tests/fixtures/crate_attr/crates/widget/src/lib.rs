//! A safe crate that forgot to pin its unsafe posture.

pub fn answer() -> u32 {
    42
}
