pub fn double(v: u16) -> u16 {
    v * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn casts_and_indexing_are_fine_in_tests() {
        let v = 300u32;
        assert_eq!(v as u16, 300);
        let xs = [1u8];
        assert_eq!(xs[0], 1);
        assert_eq!(xs.first().copied().unwrap(), 1);
    }
}
