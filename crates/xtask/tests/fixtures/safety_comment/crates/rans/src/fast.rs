pub fn read(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}
