//! An audited unsafe crate missing `#![deny(unsafe_op_in_unsafe_fn)]`.

pub fn answer() -> u32 {
    42
}
