//! Negative fixture suite for the lint engine.
//!
//! Each lint rule has a tiny bad-source tree under `tests/fixtures/` that
//! must produce *exactly* the expected finding — file, 1-based line, and
//! rule ID — and nothing else. A final test runs the engine over the real
//! workspace and requires a clean report, which is the same gate CI
//! enforces via `cargo xtask check`.
//!
//! The engine's directory walker skips any directory named `fixtures`, so
//! these deliberately bad sources never pollute a real-tree run.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use xtask::report::Report;
use xtask::run_check;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_fixture(name: &str) -> Report {
    run_check(&fixture_root(name)).expect("fixture tree must scan")
}

/// Asserts the fixture yields exactly one finding with the given shape.
fn assert_single_finding(name: &str, file: &str, line: usize, rule: &str) {
    let report = check_fixture(name);
    let got: Vec<(&str, usize, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect();
    assert_eq!(
        got,
        vec![(file, line, rule)],
        "fixture `{name}` produced the wrong findings"
    );
}

#[test]
fn missing_safety_comment_is_flagged_at_the_unsafe_line() {
    // The file sits at an allowlisted path, so only the proof is missing.
    assert_single_finding(
        "safety_comment",
        "crates/rans/src/fast.rs",
        2,
        "safety-comment",
    );
}

#[test]
fn unsafe_outside_the_allowlist_is_flagged_even_when_justified() {
    assert_single_finding("unsafe_allowlist", "src/helper.rs", 3, "unsafe-allowlist");
}

#[test]
fn safe_crate_without_forbid_attr_is_flagged() {
    assert_single_finding("crate_attr", "crates/widget/src/lib.rs", 1, "crate-attr");
}

#[test]
fn unsafe_crate_without_deny_attr_is_flagged() {
    assert_single_finding(
        "crate_attr_unsafe",
        "crates/rans/src/lib.rs",
        1,
        "crate-attr",
    );
}

#[test]
fn narrowing_cast_in_wire_code_is_flagged() {
    assert_single_finding("wire_cast", "crates/net/src/proto.rs", 2, "wire-cast");
}

#[test]
fn slice_indexing_in_wire_code_is_flagged() {
    assert_single_finding("wire_index", "crates/net/src/frame.rs", 2, "wire-index");
}

#[test]
fn unwrap_in_wire_code_is_flagged() {
    assert_single_finding("wire_unwrap", "crates/core/src/wire.rs", 2, "wire-unwrap");
}

#[test]
fn length_driven_with_capacity_in_wire_code_is_flagged() {
    assert_single_finding(
        "wire_capacity",
        "crates/core/src/file.rs",
        2,
        "wire-capacity",
    );
}

#[test]
fn allow_marker_suppresses_and_records_the_reason() {
    let report = check_fixture("suppression");
    assert!(
        report.findings.is_empty(),
        "marker failed to suppress: {:?}",
        report.findings
    );
    let sup: Vec<(&str, usize, &str, &str)> = report
        .suppressed
        .iter()
        .map(|s| (s.file.as_str(), s.line, s.rule, s.reason.as_str()))
        .collect();
    assert_eq!(
        sup,
        vec![(
            "crates/net/src/proto.rs",
            3,
            "wire-cast",
            "fixture proving the suppression plumbing records a reason."
        )]
    );
}

#[test]
fn cfg_test_regions_are_exempt_from_wire_rules() {
    let report = check_fixture("test_region");
    assert!(
        report.findings.is_empty(),
        "test-only code must not trip wire rules: {:?}",
        report.findings
    );
    assert!(report.suppressed.is_empty());
}

#[test]
fn the_real_workspace_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run_check(&root).expect("workspace must scan");
    assert!(
        report.findings.is_empty(),
        "the tree must pass its own lint gate:\n{}",
        report.render_text()
    );
    // Sanity: the walk actually covered the workspace, not an empty dir.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}
