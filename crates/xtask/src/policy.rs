//! The workspace safety policy, as data.
//!
//! Everything the lint engine enforces is declared here so a policy change
//! is a one-line diff with a reviewable blame trail. Paths are relative to
//! the workspace root with `/` separators.

/// Files allowed to contain the `unsafe` keyword. Every entry is an
/// audited hot path whose invariants are documented in-file; adding a new
/// entry requires writing the `// SAFETY:` proofs the [`SAFETY_COMMENT`]
/// rule demands and extending the Miri/sanitizer CI coverage.
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/parallel/src/pool.rs",
    "crates/rans/src/fast.rs",
    "crates/rans/src/fast_encode.rs",
    "crates/reactor/src/poller.rs",
    "crates/reactor/src/sys.rs",
    "crates/reactor/src/wake.rs",
    "crates/simd/src/avx2.rs",
    "crates/simd/src/avx512.rs",
    "crates/simd/src/driver.rs",
    "crates/simd/src/scalar.rs",
];

/// Crates (by directory name under `crates/`) that contain `unsafe` and
/// therefore carry `#![deny(unsafe_op_in_unsafe_fn)]` instead of
/// `#![forbid(unsafe_code)]`.
pub const UNSAFE_CRATES: &[&str] = &["parallel", "rans", "reactor", "simd"];

/// Wire-facing parsing files: code here faces bytes from the network or
/// disk, so panics and silent truncation are protocol bugs. The
/// `wire-*` rules ban `unwrap`/`expect`, narrowing `as` casts, raw slice
/// indexing, and length-driven `with_capacity` outside `#[cfg(test)]`.
pub const WIRE_FILES: &[&str] = &[
    "crates/core/src/file.rs",
    "crates/core/src/wire.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/proto.rs",
];

/// Cast targets banned in wire files: on a 64-bit host each of these can
/// silently truncate a length or offset parsed from the wire. Widening
/// casts (`as u64`, `as i64`, `as u128`, `as f64`) remain legal.
pub const NARROWING_CASTS: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

/// Rule identifiers, as they appear in diagnostics and allow markers.
pub const SAFETY_COMMENT: &str = "safety-comment";
pub const UNSAFE_ALLOWLIST_RULE: &str = "unsafe-allowlist";
pub const CRATE_ATTR: &str = "crate-attr";
pub const WIRE_CAST: &str = "wire-cast";
pub const WIRE_INDEX: &str = "wire-index";
pub const WIRE_UNWRAP: &str = "wire-unwrap";
pub const WIRE_CAPACITY: &str = "wire-capacity";

/// Directory names skipped during the walk. `fixtures` holds the lint
/// engine's own deliberately-bad test inputs.
pub const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];
