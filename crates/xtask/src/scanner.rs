//! A minimal, dependency-free Rust source scanner.
//!
//! The lint rules in [`crate::lints`] are textual, so they must never look
//! inside comments, string literals, or char literals — `// use unsafe
//! here` in prose must not trip the allowlist rule, and `".unwrap("`
//! inside a diagnostic string must not trip the wire rules. This module
//! produces a *masked* view of a source file: byte-for-line identical to
//! the original, but with comment bodies and literal contents replaced by
//! spaces. Newlines are preserved so line numbers survive masking.
//!
//! The scanner understands:
//!
//! * line comments (`//`, `///`, `//!`),
//! * nested block comments (`/* /* */ */`),
//! * string literals with escapes (`"a\"b"`), byte strings (`b"..."`),
//! * raw strings with hash fences (`r"..."`, `r#"..."#`, `br#"..."#`),
//! * char and byte-char literals (`'a'`, `'\''`, `b'\n'`) — distinguished
//!   from lifetimes (`'a`, `'_`) by the closing-quote lookahead.
//!
//! It also marks the line span of every `#[cfg(test)] mod … { … }` block
//! (by brace matching on the masked text) so the wire-hardening rules can
//! exempt test code, which legitimately uses `unwrap` and indexing.

/// One scanned source file: raw lines for comment-directed rules
/// (`// SAFETY:`, allow markers), masked lines for token rules, and a
/// per-line "inside `#[cfg(test)]` mod" flag.
pub struct SourceFile {
    pub raw: Vec<String>,
    pub masked: Vec<String>,
    pub in_test: Vec<bool>,
}

impl SourceFile {
    pub fn parse(src: &str) -> SourceFile {
        let masked_text = mask(src);
        let raw: Vec<String> = src.lines().map(str::to_string).collect();
        let masked: Vec<String> = masked_text.lines().map(str::to_string).collect();
        debug_assert_eq!(raw.len(), masked.len());
        let in_test = mark_test_regions(&masked);
        SourceFile {
            raw,
            masked,
            in_test,
        }
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Replaces comment bodies and literal contents with spaces, preserving
/// newlines and the delimiters themselves (so `"..."` stays visibly a
/// string and columns stay roughly aligned for diagnostics).
fn mask(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    // The character preceding position `i` outside any skipped region;
    // used to tell a raw-string prefix `r"` from an identifier ending in
    // `r`, and a char literal from a lifetime after `<` or `&`.
    let mut prev = '\0';
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < chars.len() {
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(blank(chars[i]));
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push('"');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        // Line-continuation escapes (`\` before a newline)
                        // must keep the newline so line numbers survive.
                        out.push(' ');
                        out.push(blank(chars[i + 1]));
                        i += 2;
                    } else if chars[i] == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(chars[i]));
                        i += 1;
                    }
                }
            }
            'r' | 'b' if !is_ident(prev) && starts_raw_string(&chars, i) => {
                // Skip the prefix letters (`r`, `b`, or `br`).
                while chars[i] != '#' && chars[i] != '"' {
                    out.push(chars[i]);
                    i += 1;
                }
                let mut hashes = 0;
                while chars.get(i) == Some(&'#') {
                    out.push('#');
                    hashes += 1;
                    i += 1;
                }
                out.push('"');
                i += 1;
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
            '\'' => {
                if chars.get(i + 1) == Some(&'\\') {
                    // Escaped char literal: consume through the closing quote.
                    out.push('\'');
                    i += 1;
                    while i < chars.len() && chars[i] != '\'' {
                        out.push(blank(chars[i]));
                        i += 1;
                    }
                    if i < chars.len() {
                        out.push('\'');
                        i += 1;
                    }
                } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                    // One char between two quotes: a char literal.
                    out.push('\'');
                    out.push(' ');
                    out.push('\'');
                    i += 3;
                } else {
                    // A lifetime (`'a`, `'static`, `'_`): keep as-is.
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
        prev = c;
    }
    out
}

/// Does `chars[at..]` start a raw/byte string prefix (`r"`, `r#`, `b"`,
/// `br"`, `br#`)? Plain `b'x'` byte-char literals are left to the char
/// branch.
fn starts_raw_string(chars: &[char], at: usize) -> bool {
    let mut j = at;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
        return chars.get(j) == Some(&'"');
    }
    // `b"..."` byte string: masked like a normal string but we must not
    // treat the `b` as an identifier character before the quote.
    j == at + 1 && chars.get(j) == Some(&'"')
}

/// Marks every line inside a `#[cfg(test)] mod … { … }` block (inclusive
/// of the attribute and braces) by brace-matching on the masked text.
fn mark_test_regions(masked: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked.len()];
    for (li, line) in masked.iter().enumerate() {
        if !line.contains("#[cfg(test)]") {
            continue;
        }
        // Find the `{` that opens the annotated item (skipping further
        // attribute lines), then match braces to its close.
        let mut depth = 0usize;
        let mut opened = false;
        'scan: for (lj, l) in masked.iter().enumerate().skip(li) {
            for c in l.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                    }
                    ';' if !opened && depth == 0 => break 'scan, // `mod x;`
                    _ => {}
                }
            }
            if opened {
                for flag in in_test.iter_mut().take(lj + 1).skip(li) {
                    *flag = true;
                }
            }
            if opened && depth == 0 {
                break 'scan;
            }
        }
    }
    in_test
}

/// Yields the byte column of every whole-word occurrence of `word` in
/// `line` (word characters: `[A-Za-z0-9_]`).
pub fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut found = Vec::new();
    let mut start = 0;
    while let Some(off) = line[start..].find(word) {
        let at = start + off;
        let before_ok = at == 0 || !is_ident(bytes[at - 1] as char);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end] as char);
        if before_ok && after_ok {
            found.push(at);
        }
        start = at + word.len().max(1);
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let sf = SourceFile::parse(
            "let x = \"unsafe\"; // unsafe in prose\nlet y = 'u'; /* unsafe */ call();\n",
        );
        assert!(!sf.masked[0].contains("unsafe"));
        assert!(!sf.masked[1].contains("unsafe"));
        assert!(sf.masked[1].contains("call()"));
        assert!(sf.raw[0].contains("unsafe in prose"));
    }

    #[test]
    fn raw_strings_do_not_escape() {
        let sf = SourceFile::parse("let p = r#\"a \\\" unsafe \"#; done();\n");
        assert!(!sf.masked[0].contains("unsafe"));
        assert!(sf.masked[0].contains("done()"));
    }

    #[test]
    fn lifetimes_survive_char_literals_masked() {
        let sf = SourceFile::parse("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(sf.masked[0].contains("<'a>"));
        assert!(!sf.masked[0].contains("'x'"));
    }

    #[test]
    fn string_line_continuations_keep_line_count() {
        let sf = SourceFile::parse("let s = \"a \\\n   b\";\nnext();\n");
        assert_eq!(sf.raw.len(), 3);
        assert_eq!(sf.masked.len(), 3);
        assert!(sf.masked[2].contains("next()"));
    }

    #[test]
    fn escaped_char_literals() {
        let sf = SourceFile::parse("let q = '\\''; let n = b'\\n'; f();\n");
        assert!(sf.masked[0].contains("f();"));
    }

    #[test]
    fn nested_block_comments() {
        let sf = SourceFile::parse("/* outer /* unsafe */ still */ code();\n");
        assert!(!sf.masked[0].contains("unsafe"));
        assert!(sf.masked[0].contains("code()"));
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let sf = SourceFile::parse(src);
        assert_eq!(sf.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn whole_words_only() {
        assert_eq!(word_positions("unsafe_op unsafe x", "unsafe"), vec![10]);
        assert!(word_positions("deny(unsafe_op_in_unsafe_fn)", "unsafe").is_empty());
    }
}
