//! CLI entry point: `cargo xtask check [--root DIR] [--report FILE]`.
//!
//! Exits 0 on a clean tree, 1 with one diagnostic per line on findings,
//! 2 on usage errors. `--report` additionally writes the JSON report for
//! the CI artifact.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask check [--root DIR] [--report FILE]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {}
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => Ok(PathBuf::from(v)),
            None => {
                eprintln!("{flag} needs a value\n{USAGE}");
                Err(())
            }
        };
        match flag.as_str() {
            "--root" => match value("--root") {
                Ok(v) => root = v,
                Err(()) => return ExitCode::from(2),
            },
            "--report" => match value("--report") {
                Ok(v) => report_path = Some(v),
                Err(()) => return ExitCode::from(2),
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match xtask::run_check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask check: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_text());
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("xtask check: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
