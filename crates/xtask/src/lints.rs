//! The lint rules. Each rule walks the masked view from
//! [`crate::scanner`] and reports [`Finding`]s; the raw view is consulted
//! only for comment-directed checks (`// SAFETY:` proofs and
//! `// xtask: allow(...)` suppression markers).

use crate::policy;
use crate::report::{Finding, Report, Suppressed};
use crate::scanner::{word_positions, SourceFile};

/// Keywords that legitimately precede `[` without it being an index
/// expression (`&mut [u8]`, `for w in [..]`, `return [..]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "return", "const", "static", "ref", "else",
];

/// Runs every applicable rule over one file. `rel` is the
/// workspace-relative path with `/` separators.
pub fn check_file(rel: &str, sf: &SourceFile, report: &mut Report) {
    check_unsafe(rel, sf, report);
    check_crate_attr(rel, sf, report);
    if policy::WIRE_FILES.contains(&rel) {
        check_wire(rel, sf, report);
    }
}

/// `safety-comment` + `unsafe-allowlist`: every `unsafe` keyword must be
/// justified in place and must live in an audited file.
fn check_unsafe(rel: &str, sf: &SourceFile, report: &mut Report) {
    let allowlisted = policy::UNSAFE_ALLOWLIST.contains(&rel);
    for li in 0..sf.masked.len() {
        for col in word_positions(&sf.masked[li], "unsafe") {
            if !allowlisted {
                push(
                    report,
                    sf,
                    rel,
                    li,
                    policy::UNSAFE_ALLOWLIST_RULE,
                    "`unsafe` outside the audited allowlist; move the code into an \
                     allowlisted module or extend crates/xtask/src/policy.rs with a \
                     safety review"
                        .to_string(),
                );
            }
            let fn_form = matches!(
                next_token(sf, li, col + "unsafe".len()).as_deref(),
                Some("fn") | Some("extern")
            );
            if !has_safety_proof(sf, li, fn_form) {
                let message = if fn_form {
                    "`unsafe fn` without a `# Safety` doc section or `// SAFETY:` \
                     comment stating the caller contract"
                } else {
                    "`unsafe` without an immediately preceding `// SAFETY:` comment \
                     stating the invariant that makes it sound"
                };
                push(
                    report,
                    sf,
                    rel,
                    li,
                    policy::SAFETY_COMMENT,
                    message.to_string(),
                );
            }
        }
    }
}

/// Is the `unsafe` on line `li` covered by a proof comment? Accepts a
/// trailing `// SAFETY:` on the same line or a contiguous run of comment
/// and attribute lines immediately above; `unsafe fn` declarations may
/// instead document the contract in a `/// # Safety` doc section.
fn has_safety_proof(sf: &SourceFile, li: usize, fn_form: bool) -> bool {
    let hit = |lj: usize, needle: &str| {
        // Present in raw but not masked == inside a comment.
        sf.raw[lj].contains(needle) && !sf.masked[lj].contains(needle)
    };
    if hit(li, "SAFETY:") {
        return true;
    }
    for lj in (0..li).rev() {
        let trimmed = sf.raw[lj].trim_start();
        let comment = trimmed.starts_with("//");
        let attr = trimmed.starts_with("#[") || trimmed.starts_with("#!");
        if !comment && !attr {
            return false;
        }
        if comment && (hit(lj, "SAFETY:") || (fn_form && hit(lj, "# Safety"))) {
            return true;
        }
    }
    false
}

/// The next word or symbol in the masked text after `(li, col)`, looking
/// across at most a few following lines.
fn next_token(sf: &SourceFile, li: usize, col: usize) -> Option<String> {
    let mut line = li;
    let mut at = col;
    loop {
        let chars: Vec<char> = sf.masked.get(line)?.chars().collect();
        while at < chars.len() && chars[at].is_whitespace() {
            at += 1;
        }
        if at >= chars.len() {
            line += 1;
            at = 0;
            if line > li + 4 {
                return None;
            }
            continue;
        }
        let c = chars[at];
        if !c.is_ascii_alphanumeric() && c != '_' {
            return Some(c.to_string());
        }
        let mut word = String::new();
        while at < chars.len() && (chars[at].is_ascii_alphanumeric() || chars[at] == '_') {
            word.push(chars[at]);
            at += 1;
        }
        return Some(word);
    }
}

/// `crate-attr`: every crate's `lib.rs` must pin its unsafe posture —
/// `#![forbid(unsafe_code)]` for safe crates, `#![deny(unsafe_op_in_unsafe_fn)]`
/// for the audited unsafe ones.
fn check_crate_attr(rel: &str, sf: &SourceFile, report: &mut Report) {
    let Some(stripped) = rel.strip_suffix("/src/lib.rs") else {
        return;
    };
    let Some(name) = stripped.rsplit('/').next() else {
        return;
    };
    let unsafe_crate = policy::UNSAFE_CRATES.contains(&name);
    let want = if unsafe_crate {
        "#![deny(unsafe_op_in_unsafe_fn)]"
    } else {
        "#![forbid(unsafe_code)]"
    };
    let present = sf.masked.iter().any(|l| l.replace(' ', "").contains(want));
    if !present {
        let why = if unsafe_crate {
            "audited unsafe crate: all unsafe operations must sit in explicit blocks"
        } else {
            "safe crate: unsafe may only enter via the audited allowlist crates"
        };
        push(
            report,
            sf,
            rel,
            0,
            policy::CRATE_ATTR,
            format!("crate `{name}` must declare `{want}` ({why})"),
        );
    }
}

/// The `wire-*` family: hostile-input hygiene for parsing code, skipping
/// `#[cfg(test)]` regions.
fn check_wire(rel: &str, sf: &SourceFile, report: &mut Report) {
    for li in 0..sf.masked.len() {
        if sf.in_test[li] {
            continue;
        }
        let line = sf.masked[li].clone();
        wire_unwrap(rel, sf, li, &line, report);
        wire_cast(rel, sf, li, &line, report);
        wire_index(rel, sf, li, &line, report);
        wire_capacity(rel, sf, li, &line, report);
    }
}

fn wire_unwrap(rel: &str, sf: &SourceFile, li: usize, line: &str, report: &mut Report) {
    for pat in [".unwrap", ".expect"] {
        let mut start = 0;
        while let Some(off) = line[start..].find(pat) {
            let at = start + off;
            start = at + pat.len();
            let rest = &line[at + pat.len()..];
            // `.unwrap_or(...)` and friends are fine: they do not panic.
            if rest.starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_') {
                continue;
            }
            if rest.trim_start().starts_with('(') {
                push(
                    report,
                    sf,
                    rel,
                    li,
                    policy::WIRE_UNWRAP,
                    format!(
                        "`{pat}(` in wire-facing code: parse errors must become typed \
                         `RecoilError`s, not panics"
                    ),
                );
            }
        }
    }
}

fn wire_cast(rel: &str, sf: &SourceFile, li: usize, line: &str, report: &mut Report) {
    for col in word_positions(line, "as") {
        let Some(target) = next_token(sf, li, col + 2) else {
            continue;
        };
        if policy::NARROWING_CASTS.contains(&target.as_str()) {
            push(
                report,
                sf,
                rel,
                li,
                policy::WIRE_CAST,
                format!(
                    "`as {target}` can silently truncate wire-derived values; use \
                     `{target}::try_from` (or `usize::from`) with a typed error"
                ),
            );
        }
    }
}

fn wire_index(rel: &str, sf: &SourceFile, li: usize, line: &str, report: &mut Report) {
    let bytes = line.as_bytes();
    for (ci, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let Some(pj) = (0..ci).rev().find(|&j| bytes[j] != b' ') else {
            continue;
        };
        let prev = bytes[pj] as char;
        let indexing = if prev == ']' || prev == ')' {
            true
        } else if prev.is_ascii_alphanumeric() || prev == '_' {
            let mut s = pj;
            while s > 0 && ((bytes[s - 1] as char).is_ascii_alphanumeric() || bytes[s - 1] == b'_')
            {
                s -= 1;
            }
            // `'a [u8]` is a lifetime in a slice type, not an index
            // expression; `let [a, b] = ..` is a destructuring pattern.
            let lifetime = s > 0 && bytes[s - 1] == b'\'';
            !lifetime && !NON_INDEX_KEYWORDS.contains(&&line[s..=pj])
        } else {
            false
        };
        if indexing {
            push(
                report,
                sf,
                rel,
                li,
                policy::WIRE_INDEX,
                "slice indexing in wire-facing code can panic on truncated input; \
                 use `get`/`get_mut`/`split_at_checked`-style accessors with a typed \
                 error"
                    .to_string(),
            );
        }
    }
}

fn wire_capacity(rel: &str, sf: &SourceFile, li: usize, line: &str, report: &mut Report) {
    for col in word_positions(line, "with_capacity") {
        // `fn with_capacity` is a definition, not a length-driven call.
        let before = line[..col].trim_end();
        if before.ends_with("fn") {
            continue;
        }
        push(
            report,
            sf,
            rel,
            li,
            policy::WIRE_CAPACITY,
            "`with_capacity` in wire-facing code lets a hostile length pre-allocate \
             unbounded memory; allocate empty and grow, or bound the length against \
             the remaining input first"
                .to_string(),
        );
    }
}

/// Records a finding, honoring `// xtask: allow(rule): reason` markers on
/// the finding line or the line above. A marker with an empty reason does
/// not suppress: the reason is the audit trail.
fn push(
    report: &mut Report,
    sf: &SourceFile,
    rel: &str,
    line0: usize,
    rule: &'static str,
    message: String,
) {
    for lj in [line0.checked_sub(1), Some(line0)].into_iter().flatten() {
        if let Some(reason) = marker_reason(sf, lj, rule) {
            report.suppressed.push(Suppressed {
                file: rel.to_string(),
                line: line0 + 1,
                rule,
                reason,
            });
            return;
        }
    }
    report.findings.push(Finding {
        file: rel.to_string(),
        line: line0 + 1,
        rule,
        message,
    });
}

/// Parses `xtask: allow(<rule>): <reason>` out of a comment on line `lj`.
fn marker_reason(sf: &SourceFile, lj: usize, rule: &str) -> Option<String> {
    let raw = sf.raw.get(lj)?;
    let at = raw.find("xtask: allow(")?;
    // Must be inside a comment: masked text blanks comments.
    if sf.masked.get(lj)?.contains("xtask: allow(") {
        return None;
    }
    let rest = &raw[at + "xtask: allow(".len()..];
    let close = rest.find(')')?;
    if &rest[..close] != rule {
        return None;
    }
    let reason = rest[close + 1..].strip_prefix(':')?.trim();
    if reason.is_empty() {
        return None;
    }
    Some(reason.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Report {
        let sf = SourceFile::parse(src);
        let mut report = Report::default();
        check_file(rel, &sf, &mut report);
        report.sort();
        report
    }

    #[test]
    fn annotated_unsafe_in_allowlisted_file_is_clean() {
        let r = run(
            "crates/rans/src/fast.rs",
            "fn f(w: &[u16]) -> u16 {\n    // SAFETY: p < w.len() by the entry assert.\n    unsafe { *w.get_unchecked(0) }\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn missing_safety_comment_fires() {
        let r = run(
            "crates/rans/src/fast.rs",
            "fn f(w: &[u16]) -> u16 {\n    unsafe { *w.get_unchecked(0) }\n}\n",
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, policy::SAFETY_COMMENT);
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc_section() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller must pass avx2.\n#[target_feature(enable = \"avx2\")]\npub unsafe fn g() {}\n";
        let r = run("crates/simd/src/avx2.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn unsafe_outside_allowlist_fires() {
        let r = run(
            "crates/bitio/src/bits.rs",
            "fn f() {\n    // SAFETY: justified but misplaced.\n    unsafe { core::hint::unreachable_unchecked() }\n}\n",
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, policy::UNSAFE_ALLOWLIST_RULE);
    }

    #[test]
    fn unsafe_in_prose_or_strings_is_ignored() {
        let r = run(
            "crates/bitio/src/bits.rs",
            "// unsafe is discussed here\nfn f() -> &'static str {\n    \"unsafe\"\n}\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn crate_attr_required_per_posture() {
        let r = run("crates/bitio/src/lib.rs", "//! Docs.\npub mod bits {}\n");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, policy::CRATE_ATTR);
        assert!(r.findings[0].message.contains("forbid(unsafe_code)"));
        let r = run("crates/rans/src/lib.rs", "#![forbid(unsafe_code)]\n");
        assert!(r
            .findings
            .iter()
            .any(|f| f.message.contains("unsafe_op_in_unsafe_fn")));
        let r = run(
            "crates/bitio/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub mod bits {}\n",
        );
        assert!(r.findings.is_empty());
    }

    #[test]
    fn wire_rules_fire_and_skip_tests() {
        let src = "fn parse(b: &[u8]) -> u8 {\n    let n = b.len() as u32;\n    let v = Vec::<u8>::with_capacity(n as usize);\n    let x = b[0];\n    let y = b.first().unwrap();\n    drop(v);\n    x + y\n}\n#[cfg(test)]\nmod tests {\n    fn t(b: &[u8]) -> u8 {\n        b[0] + (b.len() as u8) + Vec::with_capacity(1).pop().unwrap()\n    }\n}\n";
        let r = run("crates/net/src/frame.rs", src);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            vec![
                policy::WIRE_CAST,     // line 2: `b.len() as u32`
                policy::WIRE_CAPACITY, // line 3 sorts capacity before cast
                policy::WIRE_CAST,     // line 3: `n as usize`
                policy::WIRE_INDEX,    // line 4: `b[0]`
                policy::WIRE_UNWRAP    // line 5: `.unwrap()`
            ],
            "{:?}",
            r.findings
        );
        // Same body in a non-wire file: clean.
        assert!(run("crates/server/src/cache.rs", src).findings.is_empty());
    }

    #[test]
    fn unwrap_or_and_type_slices_are_not_flagged() {
        let src = "fn f(b: &[u8], o: Option<u8>) -> u8 {\n    let v: &mut [u8] = &mut [];\n    drop(v);\n    o.unwrap_or(0)\n}\n";
        let r = run("crates/net/src/frame.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn allow_marker_suppresses_with_reason_only() {
        let src = "fn f(v: &[u8]) -> u32 {\n    // xtask: allow(wire-cast): len bounded by MAX_FRAME above.\n    v.len() as u32\n}\n";
        let r = run("crates/net/src/frame.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].rule, policy::WIRE_CAST);
        // No reason, no suppression.
        let src =
            "fn f(v: &[u8]) -> u32 {\n    // xtask: allow(wire-cast):\n    v.len() as u32\n}\n";
        let r = run("crates/net/src/frame.rs", src);
        assert_eq!(r.findings.len(), 1);
    }
}
