//! Diagnostics and the machine-readable lint report.
//!
//! Findings are sorted by `(file, line, rule)` so output is stable across
//! filesystem iteration order, and the JSON rendering is hand-rolled (no
//! serde in a registry-less build) for the CI artifact upload.

use std::fmt::Write as _;

/// One policy violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier from [`crate::policy`].
    pub rule: &'static str,
    pub message: String,
}

/// A violation silenced by an in-source `// xtask: allow(rule): reason`
/// marker. Reported (not hidden) so suppressions stay auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub reason: String,
}

#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
    pub files_scanned: usize,
}

impl Report {
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Human-readable summary, one `file:line: [rule] message` per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            out,
            "xtask check: {} finding(s), {} suppression(s), {} file(s) scanned",
            self.findings.len(),
            self.suppressed.len(),
            self.files_scanned
        );
        for s in &self.suppressed {
            let _ = writeln!(
                out,
                "  suppressed {}:{}: [{}] {}",
                s.file, s.line, s.rule, s.reason
            );
        }
        out
    }

    /// JSON for the CI artifact: findings, suppressions, scan size.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            );
        }
        out.push_str("\n  ],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
                json_str(&s.file),
                s.line,
                json_str(s.rule),
                json_str(&s.reason)
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"files_scanned\": {}\n}}\n",
            self.files_scanned
        );
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let mut r = Report {
            findings: vec![Finding {
                file: "a\\b.rs".into(),
                line: 3,
                rule: "wire-cast",
                message: "say \"no\"".into(),
            }],
            ..Report::default()
        };
        r.files_scanned = 1;
        let j = r.render_json();
        assert!(j.contains("\"a\\\\b.rs\""));
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"files_scanned\": 1"));
    }

    #[test]
    fn sort_is_stable_by_file_line_rule() {
        let f = |file: &str, line| Finding {
            file: file.into(),
            line,
            rule: "wire-cast",
            message: String::new(),
        };
        let mut r = Report {
            findings: vec![f("b.rs", 1), f("a.rs", 9), f("a.rs", 2)],
            ..Report::default()
        };
        r.sort();
        let order: Vec<_> = r
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
