//! Workspace safety-audit lint engine — `cargo xtask check`.
//!
//! PR 5's branchless fast loop and PR 6's reactor bought their throughput
//! with `unsafe`: `get_unchecked` word reads justified by the
//! one-renorm-word-per-symbol budget (the paper's b ≥ n invariant), raw
//! `epoll`/pipe syscalls, and a thread-pool lifetime transmute. Those
//! justifications are *proofs about invariants*, and nothing in plain
//! `cargo test` notices when a new PR adds an unchecked read with no
//! stated invariant. This crate is the machine check:
//!
//! * [`scanner`] — a dependency-free, comment/string/char-literal-aware
//!   source scanner (no `syn`; the build environment has no registry
//!   access, the same discipline as `crates/compat`).
//! * [`policy`] — the safety policy as data: which files may say
//!   `unsafe`, which crates are wire-facing, which casts are narrowing.
//! * [`lints`] — the rules:
//!   * `safety-comment`: every `unsafe` block/impl carries an immediately
//!     preceding `// SAFETY:` comment; every `unsafe fn` documents its
//!     caller contract (`# Safety` doc section or `// SAFETY:`).
//!   * `unsafe-allowlist`: `unsafe` may appear only in the audited files
//!     listed in [`policy::UNSAFE_ALLOWLIST`].
//!   * `crate-attr`: safe crates pin `#![forbid(unsafe_code)]`; unsafe
//!     crates pin `#![deny(unsafe_op_in_unsafe_fn)]`.
//!   * `wire-cast` / `wire-index` / `wire-unwrap` / `wire-capacity`:
//!     wire-facing parsing code ([`policy::WIRE_FILES`]) may not use
//!     narrowing `as` casts, panicking slice indexing, `unwrap`/`expect`,
//!     or length-driven preallocation outside `#[cfg(test)]` — typed
//!     errors and `try_from` only. This is the hostile-frame hardening
//!     from PRs 3–4 made permanent.
//! * [`report`] — stable-sorted diagnostics plus a hand-rolled JSON
//!   rendering for the CI artifact.
//!
//! Escape hatch: a finding can be suppressed by a comment marker on the
//! same or preceding line — `// xtask: allow(<rule>): <reason>` — and the
//! reason is mandatory. Suppressions are counted and printed, never
//! silent.
//!
//! Run `cargo xtask check` (alias for `cargo run -p xtask -- check`) at
//! the workspace root; CI runs it as a tier-1 gate and uploads
//! `lint-report.json`. The negative fixtures proving each rule fires live
//! in `tests/fixtures/` and are asserted by `tests/lint_policy.rs`.

#![forbid(unsafe_code)]

pub mod lints;
pub mod policy;
pub mod report;
pub mod scanner;

use report::Report;
use std::io;
use std::path::{Path, PathBuf};

/// Scans every `.rs` file under `root` (skipping [`policy::SKIP_DIRS`])
/// and returns the sorted report.
pub fn run_check(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    walk(root, Path::new(""), &mut files)?;
    files.sort();
    let mut report = Report::default();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let sf = scanner::SourceFile::parse(&src);
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        lints::check_file(&rel_str, &sf, &mut report);
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

fn walk(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(root.join(rel))?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name_str = name.to_string_lossy();
        let child = rel.join(&name);
        if entry.file_type()?.is_dir() {
            if policy::SKIP_DIRS.contains(&name_str.as_ref()) || name_str.starts_with('.') {
                continue;
            }
            walk(root, &child, out)?;
        } else if name_str.ends_with(".rs") {
            out.push(child);
        }
    }
    Ok(())
}
