//! The lock-free ring-buffer event trace.
//!
//! A [`TraceRing`] keeps the last N pipeline events in fixed storage:
//! writers claim a monotonically increasing ticket with one `fetch_add`
//! and stamp the slot the ticket maps to under a per-slot seqlock
//! (odd sequence = write in progress). [`TraceRing::drain`] walks the
//! slots, discards anything torn or checksum-inconsistent, and returns
//! the surviving events in ticket order — so after a stall or an eviction
//! the last N reactor/decode events are inspectable without ever having
//! blocked the hot path.
//!
//! The trace is deliberately *lossy* under pathological contention: if two
//! writers race cap tickets apart onto the same slot, the checksum catches
//! the mix with overwhelming probability and the slot is dropped. Metrics
//! that must be exact belong in [`crate::Counter`]s, not the trace.

use std::sync::atomic::{AtomicU64, Ordering};

/// Pipeline stages a [`TraceEvent`] can tag. One byte on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// A complete frame was parsed off a connection (detail: frame type byte).
    FrameRead = 1,
    /// A request was served inline on the reactor loop (detail: serve ns;
    /// sampled 1-in-32 at `Counters`, every frame at `Trace`).
    InlineServe = 2,
    /// A job was queued for the dispatch pool (detail: queue depth after push).
    DispatchQueue = 3,
    /// A dispatch worker picked a job up (detail: queue wait in ns).
    DispatchRun = 4,
    /// A publish encode finished on a worker (detail: encode ns).
    Encode = 5,
    /// A tier-combine finished on a worker (detail: combine ns).
    Combine = 6,
    /// One fast-loop/careful-tail decode span completed (detail: symbols).
    DecodeSpan = 7,
    /// A request hit the shrunk-metadata tier cache (detail: tier segments).
    CacheHit = 8,
    /// A request missed the tier cache (detail: tier segments).
    CacheMiss = 9,
    /// A connection's pending write burst fully flushed (detail: ns from
    /// entering the write phase to the last byte leaving the socket).
    WriteFlush = 10,
    /// A connection was evicted for missing a progress deadline.
    Evict = 11,
    /// A streaming fetch decoded its first segment (detail: ns since request).
    StreamFirstSegment = 12,
}

impl Stage {
    /// Parses a wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => Self::FrameRead,
            2 => Self::InlineServe,
            3 => Self::DispatchQueue,
            4 => Self::DispatchRun,
            5 => Self::Encode,
            6 => Self::Combine,
            7 => Self::DecodeSpan,
            8 => Self::CacheHit,
            9 => Self::CacheMiss,
            10 => Self::WriteFlush,
            11 => Self::Evict,
            12 => Self::StreamFirstSegment,
            _ => return None,
        })
    }

    /// Stable lowercase name for the text exposition.
    pub fn name(self) -> &'static str {
        match self {
            Self::FrameRead => "frame_read",
            Self::InlineServe => "inline_serve",
            Self::DispatchQueue => "dispatch_queue",
            Self::DispatchRun => "dispatch_run",
            Self::Encode => "encode",
            Self::Combine => "combine",
            Self::DecodeSpan => "decode_span",
            Self::CacheHit => "cache_hit",
            Self::CacheMiss => "cache_miss",
            Self::WriteFlush => "write_flush",
            Self::Evict => "evict",
            Self::StreamFirstSegment => "stream_first_segment",
        }
    }
}

/// One traced pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The connection's generation-checked slab token (0 when the event is
    /// not tied to a connection, e.g. decode spans on a client).
    pub conn_gen: u64,
    /// Which pipeline stage fired.
    pub stage: Stage,
    /// Nanoseconds since the owning [`crate::Telemetry`] was created.
    pub t_ns: u64,
    /// Stage-specific payload (see each [`Stage`] variant).
    pub detail: u64,
}

/// One ring slot: a seqlock word plus the event fields and a checksum.
#[derive(Debug, Default)]
struct Slot {
    /// 0 = empty; odd = write in progress; even `2t + 2` = ticket `t`
    /// published.
    seq: AtomicU64,
    t_ns: AtomicU64,
    conn_gen: AtomicU64,
    stage: AtomicU64,
    detail: AtomicU64,
    /// XOR of the published seq and every field — catches the mixed-fields
    /// case two colliding writers can leave behind.
    check: AtomicU64,
}

fn checksum(seq: u64, t_ns: u64, conn_gen: u64, stage: u64, detail: u64) -> u64 {
    seq ^ t_ns.rotate_left(1)
        ^ conn_gen.rotate_left(2)
        ^ stage.rotate_left(3)
        ^ detail.rotate_left(4)
}

/// Fixed-capacity multi-writer event ring. All methods take `&self`.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Slot>,
    /// Next ticket to claim; `ticket & mask` is the owning slot.
    cursor: AtomicU64,
    mask: u64,
}

impl TraceRing {
    /// A ring holding the last `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        Self {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            cursor: AtomicU64::new(0),
            mask: cap as u64 - 1,
        }
    }

    /// Events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (tickets issued).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records one event: claim a ticket, stamp the slot. Never blocks;
    /// overwrites the event `capacity` tickets older.
    pub fn record(&self, ev: TraceEvent) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        let published = ticket.wrapping_mul(2).wrapping_add(2);
        // Seqlock write: go odd, stamp fields, publish even. Release on the
        // final store orders the field writes before the new seq for any
        // Acquire reader.
        slot.seq.store(published.wrapping_sub(1), Ordering::Release);
        slot.t_ns.store(ev.t_ns, Ordering::Relaxed);
        slot.conn_gen.store(ev.conn_gen, Ordering::Relaxed);
        slot.stage.store(ev.stage as u8 as u64, Ordering::Relaxed);
        slot.detail.store(ev.detail, Ordering::Relaxed);
        slot.check.store(
            checksum(
                published,
                ev.t_ns,
                ev.conn_gen,
                ev.stage as u8 as u64,
                ev.detail,
            ),
            Ordering::Relaxed,
        );
        slot.seq.store(published, Ordering::Release);
    }

    /// Drains every readable event in ticket order (oldest first), marking
    /// drained slots empty. Slots mid-write, torn, or checksum-mismatched
    /// are skipped — the trace is lossy by design, never blocking.
    ///
    /// Returns `(ticket, event)` pairs; gaps in the tickets show exactly
    /// how many events were overwritten or dropped.
    pub fn drain(&self) -> Vec<(u64, TraceEvent)> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 || seq % 2 == 1 {
                continue; // empty or mid-write
            }
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let conn_gen = slot.conn_gen.load(Ordering::Relaxed);
            let stage = slot.stage.load(Ordering::Relaxed);
            let detail = slot.detail.load(Ordering::Relaxed);
            let check = slot.check.load(Ordering::Relaxed);
            // Re-read under Acquire: a writer that intervened bumped seq.
            if slot.seq.load(Ordering::Acquire) != seq {
                continue;
            }
            if checksum(seq, t_ns, conn_gen, stage, detail) != check {
                continue;
            }
            let Ok(stage_byte) = u8::try_from(stage) else {
                continue;
            };
            let Some(stage) = Stage::from_u8(stage_byte) else {
                continue;
            };
            // Consume: only if no writer raced past in the meantime.
            if slot
                .seq
                .compare_exchange(seq, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let ticket = seq / 2 - 1;
                out.push((
                    ticket,
                    TraceEvent {
                        conn_gen,
                        stage,
                        t_ns,
                        detail,
                    },
                ));
            }
        }
        out.sort_unstable_by_key(|(ticket, _)| *ticket);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            conn_gen: i * 31,
            stage: Stage::from_u8((i % 12 + 1) as u8).unwrap(),
            t_ns: i * 1000,
            detail: i,
        }
    }

    #[test]
    fn wraparound_keeps_the_newest_events_in_order() {
        let ring = TraceRing::with_capacity(8);
        assert_eq!(ring.capacity(), 8);
        for i in 0..20u64 {
            ring.record(ev(i));
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 8, "only the last capacity events survive");
        let tickets: Vec<u64> = drained.iter().map(|(t, _)| *t).collect();
        assert_eq!(tickets, (12..20).collect::<Vec<u64>>());
        for (ticket, event) in drained {
            assert_eq!(event, ev(ticket), "slot content matches its ticket");
        }
        assert!(ring.drain().is_empty(), "drain consumes");
        assert_eq!(ring.recorded(), 20);
    }

    #[test]
    fn non_power_of_two_capacity_rounds_up() {
        let ring = TraceRing::with_capacity(100);
        assert_eq!(ring.capacity(), 128);
        let ring = TraceRing::with_capacity(0);
        assert_eq!(ring.capacity(), 2);
    }

    #[test]
    fn concurrent_writers_then_drain_sees_every_event_intact() {
        // No wraparound (4 * 64 = 256 <= 512), so no slot collisions: the
        // drain must see all events, each internally consistent.
        let ring = TraceRing::with_capacity(512);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..64u64 {
                        let id = t * 64 + i;
                        ring.record(TraceEvent {
                            conn_gen: id,
                            stage: Stage::DecodeSpan,
                            t_ns: id.wrapping_mul(7),
                            detail: id.wrapping_mul(13),
                        });
                    }
                });
            }
        });
        let drained = ring.drain();
        assert_eq!(drained.len(), 256);
        let mut seen = vec![false; 256];
        for (_, event) in drained {
            let id = event.conn_gen as usize;
            assert!(!seen[id], "event {id} drained twice");
            seen[id] = true;
            assert_eq!(event.t_ns, event.conn_gen.wrapping_mul(7), "torn t_ns");
            assert_eq!(event.detail, event.conn_gen.wrapping_mul(13), "torn detail");
        }
        assert!(seen.iter().all(|&s| s), "every event must survive");
    }

    #[test]
    fn drain_while_writers_race_returns_only_consistent_events() {
        // Writers hammer a tiny ring while a reader drains concurrently:
        // whatever comes out must be internally consistent (the seqlock +
        // checksum reject torn slots); losses are fine.
        let ring = TraceRing::with_capacity(8);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let id = t * 10_000 + i;
                        ring.record(TraceEvent {
                            conn_gen: id,
                            stage: Stage::FrameRead,
                            t_ns: id.wrapping_mul(3),
                            detail: id.wrapping_mul(5),
                        });
                    }
                });
            }
            let ring = &ring;
            s.spawn(move || {
                for _ in 0..200 {
                    for (_, event) in ring.drain() {
                        assert_eq!(event.t_ns, event.conn_gen.wrapping_mul(3));
                        assert_eq!(event.detail, event.conn_gen.wrapping_mul(5));
                    }
                }
            });
        });
    }

    #[test]
    fn stage_bytes_round_trip() {
        for b in 1..=12u8 {
            let stage = Stage::from_u8(b).unwrap();
            assert_eq!(stage as u8, b);
            assert!(!stage.name().is_empty());
        }
        assert_eq!(Stage::from_u8(0), None);
        assert_eq!(Stage::from_u8(13), None);
    }
}
