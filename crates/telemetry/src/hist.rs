//! Fixed-size log2-bucketed latency histograms.
//!
//! [`Histogram::record`] is the hot-path entry: one leading-zeros
//! instruction to find the bucket, then four relaxed atomic adds (bucket,
//! count, sum, max). No allocation, no lock, mergeable across threads by
//! summing bucket arrays. Percentiles come out of the cumulative bucket
//! walk with log2 resolution — exactly enough to tell a 100 µs tail from a
//! 10 ms one, which is what per-stage latency monitoring needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket 0 holds the value zero, bucket `b >= 1` holds
/// values in `[2^(b-1), 2^b - 1]`, and the last bucket saturates (it also
/// absorbs everything from `2^62` up).
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: its bit length, clamped into the table.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The largest value bucket `b` can hold (used as the percentile
/// representative, so reported quantiles are conservative upper bounds).
pub fn bucket_upper_bound(b: usize) -> u64 {
    match b {
        0 => 0,
        _ if b >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

/// Concurrent log2 histogram. All methods take `&self`; share it behind an
/// `Arc` or a `&'static` and record from any thread.
///
/// The total count is not stored separately — it is the sum of the bucket
/// array, computed at snapshot time — so `record` costs two atomic adds
/// plus (rarely, once the running max stabilises) a max update.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (nanoseconds by convention, but any u64
    /// works — the tier histograms record segment counts).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        // `fetch_max` is a CAS loop on x86; the plain load in front makes
        // the common no-update case branch-and-skip. Racy reads are fine:
        // the max only ever grows, so a stale read just retries the CAS.
        if v > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy (each field individually exact; the set is
    /// consistent once writers quiesce).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state — what snapshots,
/// the TELEMETRY wire frame, and the text exposition work on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self` — the cross-thread merge: bucket-wise sum,
    /// summed count/sum, max of maxes.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst = dst.wrapping_add(*src);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`, clamped to
    /// the recorded max. Returns 0 when nothing was recorded.
    ///
    /// Upper bounds make the estimate conservative (never under-reports a
    /// tail), and clamping to `max` keeps `p99 <= max` exact even when the
    /// max sits mid-bucket. Monotone in `q` by construction.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_land_where_documented() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for b in 2..BUCKETS - 1 {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            assert_eq!(bucket_index(lo), b, "2^{} low edge", b - 1);
            assert_eq!(bucket_index(hi), b, "2^{b}-1 high edge");
            assert_eq!(bucket_index(hi + 1), b + 1, "2^{b} rolls over");
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(5), 31);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn saturation_at_the_max_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 62);
        h.record(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(
            s.buckets[BUCKETS - 1],
            3,
            "all huge values share the top bucket"
        );
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded_by_max() {
        // Deterministic skewed sample: mostly small with a long tail.
        let h = Histogram::new();
        let mut x = 0x9E37_79B9u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % 1000 + if x.is_multiple_of(50) { 1_000_000 } else { 0 };
            h.record(v);
        }
        let s = h.snapshot();
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        let mut last = 0;
        for q in qs {
            let v = s.percentile(q);
            assert!(v >= last, "percentile({q}) = {v} < {last}");
            assert!(v <= s.max, "percentile({q}) = {v} above max {}", s.max);
            last = v;
        }
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
        assert!(s.p99() >= 1_000_000 / 2, "the tail must show in p99");
    }

    #[test]
    fn merge_equals_recording_everything_in_one_histogram() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for i in 0..5_000u64 {
            let v = i * i % 77_777;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(merged.percentile(q), all.snapshot().percentile(q));
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 100);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 40_000);
    }
}
