//! Sharded relaxed-atomic counters and plain gauges.
//!
//! A [`Counter`] spreads its increments over a small set of cache-line-
//! padded shards indexed by a per-thread ticket, so concurrent bumps from
//! the reactor loop, the dispatch workers, and decode threads do not
//! bounce one cache line between cores. Reads sum the shards — counters
//! are write-hot and read-cold (a read happens once per STATS/TELEMETRY
//! snapshot).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shard count. Eight padded lines cover the thread counts this workspace
/// runs (one reactor loop + a handful of dispatch/decode workers) without
/// bloating every counter to a page.
const SHARDS: usize = 8;

/// One cache line per shard so two shards never share a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard(AtomicU64);

/// Monotone counter: relaxed sharded `add`, summed on read.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

/// Threads take a ticket once and keep hitting the same shard.
static NEXT_TICKET: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_INDEX: usize = NEXT_TICKET.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

impl Counter {
    pub const fn new() -> Self {
        Self {
            shards: [const { Shard(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Adds `n` on this thread's shard (relaxed; never a read-modify-write
    /// on a contended line from more threads than collide on one shard).
    #[inline]
    pub fn add(&self, n: u64) {
        let idx = SHARD_INDEX.with(|s| *s);
        self.shards[idx].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn bump(&self) {
        self.add(1);
    }

    /// Sum of every shard. Each shard is exact and monotone; the sum is a
    /// point-in-time snapshot, exact once writers quiesce.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

/// A value that goes up *and* down, written by one publisher at a
/// consistent point (the reactor loop) and read by snapshots.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        c.add(2);
        assert_eq!(c.get(), 40_002);
    }

    #[test]
    fn gauge_goes_both_ways() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }
}
