//! # recoil-telemetry — lock-free metrics and stage tracing
//!
//! Observability substrate for the recoil serve/decode pipeline. Everything
//! here is dependency-free, allocation-free on the record path, and safe
//! code (`#![forbid(unsafe_code)]`): the primitives sit inside the reactor
//! loop and the rANS decode hot loop, where a mutex or a malloc would show
//! up directly in the latency distributions they exist to measure.
//!
//! Three primitives, one handle:
//!
//! - [`Counter`] / [`Gauge`] — sharded relaxed-atomic counters (write-hot,
//!   read-cold) and single-publisher gauges.
//! - [`Histogram`] — fixed-size log2-bucketed latency histogram; `record(ns)`
//!   is a leading-zeros plus two relaxed adds (and, rarely, a max update),
//!   snapshots merge across threads and expose `p50/p90/p99/max`.
//! - [`TraceRing`] — a lock-free ring of [`TraceEvent`]s (per-connection
//!   generation, [`Stage`], timestamp, detail word) with a consuming
//!   [`TraceRing::drain`], so the last N pipeline events are inspectable
//!   after a stall or an eviction.
//!
//! The [`Telemetry`] handle bundles the pipeline's named instruments behind
//! a [`TelemetryLevel`]:
//!
//! - `Off` — every record call is a single branch on a `Copy` enum; no
//!   atomics are touched.
//! - `Counters` — counters, gauges, and histograms record; the trace ring
//!   stays silent.
//! - `Trace` — everything, including the event ring.
//!
//! Snapshots ([`Telemetry::snapshot`]) carry stable-ordered name/value
//! lists and render to a Prometheus-style text exposition via
//! [`TelemetrySnapshot::render_text`] — the same data the TELEMETRY wire
//! frame ships, so a client-side dump and a server-side dump line up.
//!
//! Decode-engine metrics (fast-loop groups vs careful-tail symbols, words
//! consumed) are process-global by necessity — the rANS kernels know
//! nothing about servers — and live in [`decode_metrics`]; constructing any
//! `Telemetry` handle at `Counters` or above arms them, and snapshots fold
//! them in under `decode_*` names.

#![forbid(unsafe_code)]

mod counter;
mod hist;
mod trace;

pub use counter::{Counter, Gauge};
pub use hist::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use trace::{Stage, TraceEvent, TraceRing};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// How much the pipeline records. Ordered: each level includes the ones
/// below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TelemetryLevel {
    /// Nothing is recorded; every instrument call is one branch.
    #[default]
    Off,
    /// Counters, gauges, and histograms record.
    Counters,
    /// Everything, including the event trace ring.
    Trace,
}

impl TelemetryLevel {
    /// Wire byte for the TELEMETRY reply.
    pub fn byte(self) -> u8 {
        match self {
            Self::Off => 0,
            Self::Counters => 1,
            Self::Trace => 2,
        }
    }

    /// Parses a wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => Self::Off,
            1 => Self::Counters,
            2 => Self::Trace,
            _ => return None,
        })
    }

    /// Stable lowercase name for expositions and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Counters => "counters",
            Self::Trace => "trace",
        }
    }
}

/// Event-count instruments, one per pipeline stage worth counting.
#[derive(Debug, Default)]
pub struct PipelineCounters {
    /// Complete frames parsed off connections by the reactor.
    pub frames_read: Counter,
    /// Payload + header bytes taken off the wire.
    pub bytes_read: Counter,
    /// Requests answered on the reactor thread without dispatch.
    pub inline_serves: Counter,
    /// Jobs handed to the dispatch pool.
    pub dispatched_jobs: Counter,
    /// Times a connection's pending write buffer fully drained.
    pub write_flushes: Counter,
    /// Bytes pushed onto sockets.
    pub bytes_written: Counter,
    /// Connections evicted for missing a progress deadline.
    pub evictions: Counter,
    /// Requests shed with a typed busy error (connection cap or a full
    /// dispatch queue) instead of being served.
    pub busy_rejections: Counter,
    /// Client/router side: fetches re-issued to a replica after the
    /// serving node died mid-stream.
    pub failovers: Counter,
    /// Client side: operation retries after a transport failure or a
    /// typed busy error (the first attempt is not a retry).
    pub retries: Counter,
    /// Router side: content names promoted onto additional replicas by
    /// hot-key tracking.
    pub replica_promotions: Counter,
}

/// Point-in-time values published from one place in the reactor loop.
#[derive(Debug, Default)]
pub struct PipelineGauges {
    /// Jobs waiting in the dispatch queue, sampled once per loop iteration.
    pub queue_depth: Gauge,
    /// Free connection slots, sampled at the same point.
    pub open_slots: Gauge,
    /// Router side: fabric nodes currently considered healthy (equals the
    /// node count when no failures have been observed).
    pub healthy_nodes: Gauge,
}

/// Latency / size distributions, one per measured stage.
#[derive(Debug, Default)]
pub struct PipelineHistograms {
    /// ns to serve a request inline on the reactor thread (sampled 1-in-32
    /// at [`TelemetryLevel::Counters`]; every request at `Trace`).
    pub inline_serve_ns: Histogram,
    /// ns a job waited in the dispatch queue before a worker picked it up.
    pub dispatch_wait_ns: Histogram,
    /// ns a successful publish encode took (recorded by the content
    /// server's publish path, whichever transport drove it).
    pub encode_ns: Histogram,
    /// ns a tier combine took on a dispatch worker.
    pub combine_ns: Histogram,
    /// ns from a write becoming pending to the buffer fully flushing.
    pub write_flush_ns: Histogram,
    /// Segment count of requests that hit the tier cache (sampled 1-in-32
    /// at [`TelemetryLevel::Counters`]; every hit at `Trace` — exact hit
    /// counts always live in the server's own stats).
    pub tier_hit_segments: Histogram,
    /// Segment count of requests that missed and forced a combine.
    pub tier_miss_segments: Histogram,
    /// Client streaming: ns from request to first decoded segment.
    pub stream_first_segment_ns: Histogram,
    /// Client streaming: ns spent receiving/decoding the chunk stream.
    pub stream_transfer_ns: Histogram,
    /// Client streaming: ns for the whole fetch.
    pub stream_total_ns: Histogram,
}

/// Process-global decode-engine counters. The rANS kernels are leaf code
/// with no handle to thread through, so these are armed once (by the first
/// `Telemetry::new` at `Counters` or above) and folded into every snapshot.
#[derive(Debug, Default)]
pub struct DecodeMetrics {
    enabled: AtomicBool,
    /// Spans decoded (one per `decode_span` call).
    pub spans: Counter,
    /// Full GROUP-sized fast-loop iterations.
    pub fast_groups: Counter,
    /// Symbols decoded by the branchless fast loop.
    pub fast_symbols: Counter,
    /// Symbols decoded by the careful bounds-checked tail.
    pub careful_symbols: Counter,
    /// Compressed u32 words consumed across all spans.
    pub words_consumed: Counter,
}

impl DecodeMetrics {
    /// Cheap hot-path gate: one relaxed load.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Arms recording process-wide (never disarmed: spans from overlapping
    /// servers must not silently stop counting).
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }
}

/// The process-global [`DecodeMetrics`] instance.
pub fn decode_metrics() -> &'static DecodeMetrics {
    static METRICS: OnceLock<DecodeMetrics> = OnceLock::new();
    METRICS.get_or_init(DecodeMetrics::default)
}

/// Default trace-ring capacity: big enough to hold the full event history
/// of a burst, small enough to bound the TELEMETRY reply payload.
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// The handle a server, client, or bench threads through its pipeline.
/// Construction fixes the level; instruments no-op below their level.
#[derive(Debug)]
pub struct Telemetry {
    level: TelemetryLevel,
    start: Instant,
    pub counters: PipelineCounters,
    pub gauges: PipelineGauges,
    pub hists: PipelineHistograms,
    trace: TraceRing,
}

impl Telemetry {
    pub fn new(level: TelemetryLevel) -> Self {
        if level >= TelemetryLevel::Counters {
            decode_metrics().enable();
        }
        Self {
            level,
            start: Instant::now(),
            counters: PipelineCounters::default(),
            gauges: PipelineGauges::default(),
            hists: PipelineHistograms::default(),
            trace: TraceRing::with_capacity(DEFAULT_TRACE_CAPACITY),
        }
    }

    /// A disabled handle — what `NetConfig::default()` threads through.
    pub fn off() -> Self {
        Self::new(TelemetryLevel::Off)
    }

    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Whether counters/gauges/histograms record. Call sites gate `Instant`
    /// reads on this so `Off` costs one branch, not a clock read.
    #[inline]
    pub fn counters_enabled(&self) -> bool {
        self.level >= TelemetryLevel::Counters
    }

    /// Whether [`Telemetry::trace`] records.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.level >= TelemetryLevel::Trace
    }

    /// Nanoseconds since this handle was created — the trace timebase.
    /// Saturates at `u64::MAX` (584 years of uptime).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records a trace event if the level allows it. The timestamp is taken
    /// here so disabled tracing never reads the clock.
    #[inline]
    pub fn trace(&self, stage: Stage, conn_gen: u64, detail: u64) {
        if self.trace_enabled() {
            self.trace.record(TraceEvent {
                conn_gen,
                stage,
                t_ns: self.now_ns(),
                detail,
            });
        }
    }

    /// Consumes and returns the buffered trace events in ticket order.
    pub fn drain_trace(&self) -> Vec<(u64, TraceEvent)> {
        self.trace.drain()
    }

    /// Total trace events ever recorded (including overwritten ones).
    pub fn trace_recorded(&self) -> u64 {
        self.trace.recorded()
    }

    /// Snapshots every instrument (plus the global decode metrics) into
    /// stable-ordered name/value lists.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let c = &self.counters;
        let d = decode_metrics();
        let counters = vec![
            ("frames_read", c.frames_read.get()),
            ("bytes_read", c.bytes_read.get()),
            ("inline_serves", c.inline_serves.get()),
            ("dispatched_jobs", c.dispatched_jobs.get()),
            ("write_flushes", c.write_flushes.get()),
            ("bytes_written", c.bytes_written.get()),
            ("evictions", c.evictions.get()),
            ("busy_rejections", c.busy_rejections.get()),
            ("failovers", c.failovers.get()),
            ("retries", c.retries.get()),
            ("replica_promotions", c.replica_promotions.get()),
            ("decode_spans", d.spans.get()),
            ("decode_fast_groups", d.fast_groups.get()),
            ("decode_fast_symbols", d.fast_symbols.get()),
            ("decode_careful_symbols", d.careful_symbols.get()),
            ("decode_words_consumed", d.words_consumed.get()),
        ]
        .into_iter()
        .map(|(name, v)| (name.to_string(), v))
        .collect();
        let gauges = vec![
            ("queue_depth".to_string(), self.gauges.queue_depth.get()),
            ("open_slots".to_string(), self.gauges.open_slots.get()),
            ("healthy_nodes".to_string(), self.gauges.healthy_nodes.get()),
        ];
        let h = &self.hists;
        let hists = vec![
            ("inline_serve_ns", h.inline_serve_ns.snapshot()),
            ("dispatch_wait_ns", h.dispatch_wait_ns.snapshot()),
            ("encode_ns", h.encode_ns.snapshot()),
            ("combine_ns", h.combine_ns.snapshot()),
            ("write_flush_ns", h.write_flush_ns.snapshot()),
            ("tier_hit_segments", h.tier_hit_segments.snapshot()),
            ("tier_miss_segments", h.tier_miss_segments.snapshot()),
            (
                "stream_first_segment_ns",
                h.stream_first_segment_ns.snapshot(),
            ),
            ("stream_transfer_ns", h.stream_transfer_ns.snapshot()),
            ("stream_total_ns", h.stream_total_ns.snapshot()),
        ]
        .into_iter()
        .map(|(name, s)| (name.to_string(), s))
        .collect();
        TelemetrySnapshot {
            level: self.level,
            counters,
            gauges,
            hists,
        }
    }
}

/// Owned snapshot of a [`Telemetry`] handle — what the TELEMETRY wire frame
/// carries and what [`TelemetrySnapshot::render_text`] renders. Names are
/// part of the wire payload, so new instruments can appear without a frame
/// version bump.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    pub level: TelemetryLevel,
    /// `(name, value)` in stable order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` in stable order.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` in stable order.
    pub hists: Vec<(String, HistogramSnapshot)>,
}

impl TelemetrySnapshot {
    /// Looks a counter up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks a gauge up by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks a histogram up by name.
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Renders a Prometheus-style text exposition: counters and gauges as
    /// single samples, histograms as cumulative `_bucket{le="..."}` series
    /// (non-empty buckets only, plus `+Inf`) with `_sum`/`_count` and a
    /// `p50/p90/p99/max` comment line per histogram.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# recoil telemetry (level={})", self.level.name());
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE recoil_{name} counter");
            let _ = writeln!(out, "recoil_{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE recoil_{name} gauge");
            let _ = writeln!(out, "recoil_{name} {v}");
        }
        for (name, h) in &self.hists {
            let _ = writeln!(out, "# TYPE recoil_{name} histogram");
            let _ = writeln!(
                out,
                "# recoil_{name}: p50={} p90={} p99={} max={}",
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            );
            let mut cumulative = 0u64;
            for (b, &n) in h.buckets.iter().enumerate() {
                cumulative = cumulative.wrapping_add(n);
                if n != 0 && b < BUCKETS - 1 {
                    let _ = writeln!(
                        out,
                        "recoil_{name}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_upper_bound(b)
                    );
                }
            }
            let _ = writeln!(out, "recoil_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "recoil_{name}_sum {}", h.sum);
            let _ = writeln!(out, "recoil_{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_round_trip() {
        assert!(TelemetryLevel::Off < TelemetryLevel::Counters);
        assert!(TelemetryLevel::Counters < TelemetryLevel::Trace);
        for level in [
            TelemetryLevel::Off,
            TelemetryLevel::Counters,
            TelemetryLevel::Trace,
        ] {
            assert_eq!(TelemetryLevel::from_u8(level.byte()), Some(level));
        }
        assert_eq!(TelemetryLevel::from_u8(3), None);
        assert_eq!(TelemetryLevel::default(), TelemetryLevel::Off);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // Instant::now is unsupported under isolation
    fn off_handle_records_nothing_through_trace() {
        let t = Telemetry::off();
        assert!(!t.counters_enabled());
        assert!(!t.trace_enabled());
        t.trace(Stage::FrameRead, 1, 2);
        assert!(t.drain_trace().is_empty());
        assert_eq!(t.trace_recorded(), 0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // Instant::now is unsupported under isolation
    fn trace_handle_records_and_drains_in_order() {
        let t = Telemetry::new(TelemetryLevel::Trace);
        assert!(t.counters_enabled() && t.trace_enabled());
        t.trace(Stage::FrameRead, 7, 100);
        t.trace(Stage::InlineServe, 7, 200);
        let events = t.drain_trace();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].1.stage, Stage::FrameRead);
        assert_eq!(events[1].1.stage, Stage::InlineServe);
        assert!(events[0].1.t_ns <= events[1].1.t_ns);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // Instant::now is unsupported under isolation
    fn snapshot_names_are_stable_and_lookups_work() {
        let t = Telemetry::new(TelemetryLevel::Counters);
        t.counters.frames_read.add(5);
        t.gauges.queue_depth.set(3);
        t.hists.inline_serve_ns.record(1500);
        let s = t.snapshot();
        assert_eq!(s.counter("frames_read"), Some(5));
        assert_eq!(s.gauge("queue_depth"), Some(3));
        assert_eq!(s.gauge("healthy_nodes"), Some(0));
        assert_eq!(s.hist("inline_serve_ns").unwrap().count, 1);
        assert_eq!(s.counter("no_such_counter"), None);
        // Every name a downstream consumer keys on must be present.
        for name in [
            "frames_read",
            "bytes_read",
            "inline_serves",
            "dispatched_jobs",
            "write_flushes",
            "bytes_written",
            "evictions",
            "busy_rejections",
            "failovers",
            "retries",
            "replica_promotions",
            "decode_spans",
            "decode_fast_groups",
            "decode_fast_symbols",
            "decode_careful_symbols",
            "decode_words_consumed",
        ] {
            assert!(s.counter(name).is_some(), "missing counter {name}");
        }
        for name in [
            "inline_serve_ns",
            "dispatch_wait_ns",
            "encode_ns",
            "combine_ns",
            "write_flush_ns",
            "tier_hit_segments",
            "tier_miss_segments",
            "stream_first_segment_ns",
            "stream_transfer_ns",
            "stream_total_ns",
        ] {
            assert!(s.hist(name).is_some(), "missing histogram {name}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)] // Instant::now is unsupported under isolation
    fn render_text_exposes_buckets_and_percentiles() {
        let t = Telemetry::new(TelemetryLevel::Counters);
        t.counters.inline_serves.add(2);
        t.hists.inline_serve_ns.record(1000);
        t.hists.inline_serve_ns.record(2000);
        let text = t.snapshot().render_text();
        assert!(text.contains("# TYPE recoil_inline_serves counter"));
        assert!(text.contains("recoil_inline_serves 2"));
        assert!(text.contains("# TYPE recoil_inline_serve_ns histogram"));
        assert!(text.contains("recoil_inline_serve_ns_count 2"));
        assert!(text.contains("recoil_inline_serve_ns_sum 3000"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("p50="));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // Instant::now is unsupported under isolation
    fn counters_level_arms_global_decode_metrics() {
        let _t = Telemetry::new(TelemetryLevel::Counters);
        assert!(decode_metrics().enabled());
        decode_metrics().spans.bump();
        let s = _t.snapshot();
        assert!(s.counter("decode_spans").unwrap() >= 1);
    }
}
