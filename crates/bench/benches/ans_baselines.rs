//! Criterion microbenchmarks of the ANS baselines: single rANS vs
//! interleaved rANS (the ILP win of §2.2) and tANS/multians.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recoil::prelude::*;
use recoil::rans::{decode_single, SingleEncoder};

fn bench_baselines(c: &mut Criterion) {
    let data = recoil::data::text_like_bytes(1_000_000, 5.1, 7);
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));

    let mut single = SingleEncoder::new(&model);
    single.encode_all(&data, &mut NullSink);
    let single_stream = single.finish();

    let mut inter = InterleavedEncoder::new(&model, 32);
    inter.encode_all(&data, &mut NullSink);
    let inter_stream = inter.finish();

    let table = TansTable::from_cdf(&CdfTable::of_bytes(&data, 11));
    let tans_stream = encode_tans(&data, &table);
    let pool = ThreadPool::with_default_parallelism();

    let mut group = c.benchmark_group("ans_baselines");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("rans_single_state", |b| {
        b.iter(|| std::hint::black_box(decode_single::<u8, _>(&single_stream, &model).unwrap()));
    });
    group.bench_function("rans_interleaved_32", |b| {
        b.iter(|| {
            std::hint::black_box(decode_interleaved::<u8, _>(&inter_stream, &model).unwrap())
        });
    });
    group.bench_function("tans_serial", |b| {
        b.iter(|| std::hint::black_box(decode_tans_serial::<u8>(&tans_stream, &table).unwrap()));
    });
    group.bench_function("multians_parallel_256", |b| {
        b.iter(|| {
            std::hint::black_box(
                decode_multians::<u8>(&tans_stream, &table, 256, Some(&pool)).unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
