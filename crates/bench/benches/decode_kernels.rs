//! Criterion microbenchmarks: single-thread decode kernels
//! (scalar vs AVX2 vs AVX-512, packed vs wide LUT layouts), plus the
//! scalar fast-loop engine against the retained careful reference loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use recoil::prelude::*;
use recoil::rans::fast::{decode_span, decode_span_careful};

/// The scalar fast loop vs the careful `LaneDecoder::step` reference on
/// the same whole stream — the microbenchmark behind the
/// `fast_over_careful` column of `BENCH_decode.json`.
fn bench_fast_vs_reference(c: &mut Criterion) {
    let data = recoil::data::text_like_bytes(2_000_000, 5.1, 99);
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
    let mut enc = InterleavedEncoder::new(&model, 32);
    enc.encode_all(&data, &mut NullSink);
    let stream = enc.finish();
    let next = stream.end_cursor();

    let mut group = c.benchmark_group("scalar_fast_vs_reference");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    group.bench_function("fast", |b| {
        let mut out = vec![0u8; data.len()];
        b.iter(|| {
            let mut states = stream.final_states.clone();
            decode_span(&model, &stream.words, next, &mut states, 0, &mut out).unwrap();
            std::hint::black_box(&out);
        });
    });
    group.bench_function("careful_reference", |b| {
        let mut out = vec![0u8; data.len()];
        b.iter(|| {
            let mut states = stream.final_states.clone();
            decode_span_careful(&model, &stream.words, next, &mut states, 0, &mut out).unwrap();
            std::hint::black_box(&out);
        });
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let data = recoil::data::text_like_bytes(2_000_000, 5.1, 99);
    for n in [11u32, 16] {
        let model = StaticModelProvider::new(CdfTable::of_bytes(&data, n));
        let mut enc = InterleavedEncoder::new(&model, 32);
        enc.encode_all(&data, &mut NullSink);
        let stream = enc.finish();
        let simd_model = SimdModel::from_provider(&model);

        let mut group = c.benchmark_group(format!("single_thread_decode_n{n}"));
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.sample_size(10);
        for kernel in Kernel::all_available() {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{kernel:?}")),
                &kernel,
                |b, &kernel| {
                    let mut out = vec![0u8; data.len()];
                    b.iter(|| {
                        decode_interleaved_simd(kernel, &stream, &simd_model, &mut out).unwrap();
                        std::hint::black_box(&out);
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_kernels, bench_fast_vs_reference);
criterion_main!(benches);
