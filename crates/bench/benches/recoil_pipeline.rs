//! Criterion microbenchmarks of the Recoil pipeline pieces: encode+plan,
//! metadata wire codec, split combining, and parallel decode vs the
//! conventional baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recoil::conventional::encode_conventional;
use recoil::core::codec::decode_pooled;
use recoil::prelude::*;

fn bench_pipeline(c: &mut Criterion) {
    let data = recoil::data::exponential_bytes(2_000_000, 100.0, 42);
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, 11));
    let codec = Codec::builder().max_segments(256).build().unwrap();
    let container = codec.encode_with_provider(&data, &model).unwrap();
    let conv = encode_conventional(&data, &model, 32, 256);
    let meta_bytes = metadata_to_bytes(&container.metadata);
    let pool = ThreadPool::with_default_parallelism();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(data.len() as u64));

    group.bench_function("encode_with_split_planning", |b| {
        b.iter(|| std::hint::black_box(codec.encode_with_provider(&data, &model).unwrap()));
    });
    group.bench_function("encode_plain_interleaved", |b| {
        b.iter(|| {
            let mut enc = InterleavedEncoder::new(&model, 32);
            enc.encode_all(&data, &mut NullSink);
            std::hint::black_box(enc.finish())
        });
    });
    group.bench_function("decode_recoil_parallel", |b| {
        let mut out = vec![0u8; data.len()];
        b.iter(|| {
            decode_pooled(
                &container.stream,
                &container.metadata,
                &model,
                Some(&pool),
                &mut out,
            )
            .unwrap();
            std::hint::black_box(&out);
        });
    });
    group.bench_function("decode_conventional_parallel", |b| {
        let mut out = vec![0u8; data.len()];
        b.iter(|| {
            recoil::conventional::decode_conventional_into(&conv, &model, Some(&pool), &mut out)
                .unwrap();
            std::hint::black_box(&out);
        });
    });
    group.finish();

    let mut group = c.benchmark_group("metadata");
    group.bench_function("serialize_256_splits", |b| {
        b.iter(|| std::hint::black_box(metadata_to_bytes(&container.metadata)));
    });
    group.bench_function("parse_256_splits", |b| {
        b.iter(|| std::hint::black_box(metadata_from_bytes(&meta_bytes).unwrap()));
    });
    group.bench_function("combine_256_to_16", |b| {
        b.iter(|| std::hint::black_box(combine_splits(&container.metadata, 16)));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
