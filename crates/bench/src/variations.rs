//! The six bitstream variations of §5.2, built once per dataset/n:
//!
//! * (a) standard rANS bitstream (Single-Thread baseline, Table 4 sizes)
//! * (b) Conventional Large — 2176 partitions (massively parallel GPU)
//! * (c) Recoil Large — 2176 splits (same bitstream as (a) + metadata)
//! * (d) Conventional Small — 16 partitions (parallel CPU), re-encoded
//! * (e) Recoil Small — converted from (c) by combining splits
//! * (f) tANS bitstream for multians
//!
//! Recoil's bitstream **is** the baseline bitstream — variation (c) costs
//! exactly the metadata bytes, and (e) is derived without re-encoding.

use recoil::conventional::{encode_conventional, ConventionalContainer};
use recoil::prelude::*;

/// Partition/split counts of the paper's Large and Small variations.
pub const LARGE: usize = 2176;
pub const SMALL: usize = 16;

/// All variations for one byte dataset at one quantization level.
pub struct ByteVariations {
    /// Static model shared by (a)–(e).
    pub model: StaticModelProvider,
    /// (c) Recoil Large; `recoil_large.stream` is also variation (a).
    pub recoil_large: RecoilContainer,
    /// (e) Recoil Small metadata (combined from (c), no re-encode).
    pub recoil_small: RecoilMetadata,
    /// (b) Conventional Large.
    pub conv_large: ConventionalContainer,
    /// (d) Conventional Small.
    pub conv_small: ConventionalContainer,
    /// (f) tANS stream + its tables.
    pub tans: (recoil::tans::TansStream, TansTable),
}

impl ByteVariations {
    /// Builds every variation for `data` at level `n`.
    pub fn build(data: &[u8], n: u32) -> Self {
        let model = StaticModelProvider::new(CdfTable::of_bytes(data, n));
        let codec = Codec::builder()
            .ways(32)
            .max_segments(LARGE as u64)
            .quant_bits(n)
            .build()
            .expect("static variation config is valid");
        let recoil_large = codec
            .encode_with_provider(data, &model)
            .expect("matching model");
        let recoil_small = combine_splits(&recoil_large.metadata, SMALL as u64);
        let conv_large = encode_conventional(data, &model, 32, LARGE);
        let conv_small = encode_conventional(data, &model, 32, SMALL);
        let table = TansTable::from_cdf(&CdfTable::of_bytes(data, n));
        let tans_stream = encode_tans(data, &table);
        Self {
            model,
            recoil_large,
            recoil_small,
            conv_large,
            conv_small,
            tans: (tans_stream, table),
        }
    }

    /// Variation (a) baseline payload bytes.
    pub fn baseline_bytes(&self) -> u64 {
        self.recoil_large.stream_bytes()
    }

    /// `(label, total_bytes)` for variations (b)–(f), paper order.
    pub fn sizes(&self) -> [(&'static str, u64); 5] {
        let a = self.baseline_bytes();
        [
            ("(b) Conventional Large", self.conv_large.payload_bytes()),
            ("(c) Recoil Large", a + self.recoil_large.metadata_bytes()),
            ("(d) Conventional Small", self.conv_small.payload_bytes()),
            (
                "(e) Recoil Small",
                a + metadata_to_bytes(&self.recoil_small).len() as u64,
            ),
            ("(f) multians", self.tans.0.payload_bytes(&self.tans.1)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recoil::core::codec::decode_pooled;

    #[test]
    fn variations_have_paper_size_ordering() {
        let data = recoil::data::exponential_bytes(2_000_000, 200.0, 1);
        let v = ByteVariations::build(&data, 11);
        let a = v.baseline_bytes();
        let s = v.sizes();
        let (b, c, d, e) = (s[0].1, s[1].1, s[2].1, s[3].1);
        // Large variations cost more than Small; Recoil beats Conventional
        // at both sizes; everything exceeds the baseline.
        assert!(b > c && c > d.max(e), "b={b} c={c} d={d} e={e}");
        assert!(d > e);
        assert!(e > a);
    }

    #[test]
    fn all_variations_decode_to_the_input() {
        let data = recoil::data::text_like_bytes(500_000, 5.0, 2);
        let v = ByteVariations::build(&data, 11);
        let pool = ThreadPool::new(3);
        let a: Vec<u8> = decode_interleaved(&v.recoil_large.stream, &v.model).unwrap();
        let b: Vec<u8> = decode_conventional(&v.conv_large, &v.model, Some(&pool)).unwrap();
        let c: Vec<u8> = {
            let mut out = vec![0u8; data.len()];
            decode_pooled(
                &v.recoil_large.stream,
                &v.recoil_large.metadata,
                &v.model,
                Some(&pool),
                &mut out,
            )
            .unwrap();
            out
        };
        let d: Vec<u8> = decode_conventional(&v.conv_small, &v.model, Some(&pool)).unwrap();
        let e: Vec<u8> = {
            let mut out = vec![0u8; data.len()];
            decode_pooled(
                &v.recoil_large.stream,
                &v.recoil_small,
                &v.model,
                Some(&pool),
                &mut out,
            )
            .unwrap();
            out
        };
        let (f, _) = decode_multians::<u8>(&v.tans.0, &v.tans.1, LARGE, Some(&pool)).unwrap();
        for (label, got) in [("a", a), ("b", b), ("c", c), ("d", d), ("e", e), ("f", f)] {
            assert_eq!(got, data, "variation ({label})");
        }
    }
}
