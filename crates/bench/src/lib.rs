//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§5). The binaries in `src/bin/` each reproduce one artifact:
//!
//! | binary | artifact |
//! |---|---|
//! | `fig3` | Figure 3 — file size vs. partition count (conventional) |
//! | `tables` | Tables 4, 5, 6 — baseline sizes and per-variation deltas |
//! | `fig7` | Figure 7 — decode throughput, CPU kernels + GPU-sim |
//! | `ablation` | our extra studies: heuristic quality, metadata scaling |
//!
//! Results are printed as aligned tables with the paper's reference values
//! side by side and also appended as JSON under `results/`.

// Safe crate: `unsafe` lives only in the audited allowlist (cargo xtask check).
#![forbid(unsafe_code)]

pub mod report;
pub mod variations;

use recoil::data::Dataset;
use std::time::Instant;

/// Harness configuration shared by the binaries.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Use the paper's full dataset sizes (1 GB enwik9!) instead of the
    /// scaled defaults.
    pub full: bool,
    /// Decode threads for CPU experiments (paper: 16-core Xeon W-3245).
    pub threads: usize,
    /// Throughput runs to average (paper: 10).
    pub runs: usize,
}

impl BenchConfig {
    /// Parses `--full`, `--threads N`, `--runs N` from argv.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut cfg = Self {
            full: false,
            threads: 16,
            runs: 5,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => cfg.full = true,
                "--threads" => {
                    i += 1;
                    cfg.threads = args[i].parse().expect("--threads N");
                }
                "--runs" => {
                    i += 1;
                    cfg.runs = args[i].parse().expect("--runs N");
                }
                _ => {}
            }
            i += 1;
        }
        cfg
    }

    /// Bytes to generate for `d`: the paper's full size, or a scaled default
    /// that keeps the whole suite laptop-friendly (enwik8 → 50 MB, enwik9 →
    /// 100 MB; everything else is already ≤ 41 MB and runs at full size).
    pub fn dataset_bytes(&self, d: &Dataset) -> usize {
        let full = d.full_bytes();
        if self.full {
            return full;
        }
        match d.name {
            "enwik8" => full.min(50_000_000),
            "enwik9" => full.min(100_000_000),
            _ => full,
        }
    }
}

/// Mean throughput in GB/s of `f` over `runs` runs processing `bytes`
/// (uncompressed bytes, matching the paper's definition).
pub fn measure_gbps<F: FnMut()>(runs: usize, bytes: usize, mut f: F) -> f64 {
    // One warm-up run (page faults, pool spin-up).
    f();
    let mut total = 0.0;
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        f();
        total += t0.elapsed().as_secs_f64();
    }
    bytes as f64 / (total / runs.max(1) as f64) / 1e9
}
