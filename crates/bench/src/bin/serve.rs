//! Content-delivery serving throughput: the ROADMAP's "heavy traffic"
//! driver for the sharded, tier-caching [`ContentServer`].
//!
//! Publishes a handful of items once (encode-once, §3.3), then hammers the
//! server from N concurrent client threads with a zipf-skewed capacity mix
//! (device classes cluster in practice), plus one big `request_batch` pass
//! over the server's persistent pool. Reports requests/sec and tier-cache
//! behaviour to stdout and as JSON to `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p recoil-bench --bin serve
//! cargo run --release -p recoil-bench --bin serve -- --smoke        # CI
//! cargo run --release -p recoil-bench --bin serve -- --clients 16 --requests 5000
//! ```

use recoil::prelude::*;
use recoil::server::{Client, ContentServer, ServerConfig};
use recoil::telemetry::{Histogram, HistogramSnapshot, Telemetry, TelemetryLevel};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Capacity mix, most popular first; the last entry exceeds every item's
/// encoded maximum, so it exercises post-clamp tier sharing.
const TIERS: [u64; 10] = [16, 4, 64, 1, 8, 32, 128, 2, 256, 100_000];

struct Args {
    clients: usize,
    requests: usize,
    items: usize,
    bytes: usize,
    max_segments: u64,
    smoke: bool,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let mut a = Self {
            clients: 8,
            requests: 2000,
            items: 4,
            bytes: 2_000_000,
            max_segments: 256,
            smoke: false,
        };
        let mut i = 1;
        while i < argv.len() {
            let next = |i: &mut usize| {
                *i += 1;
                argv[*i].parse().expect("numeric argument")
            };
            match argv[i].as_str() {
                "--clients" => a.clients = next(&mut i),
                "--requests" => a.requests = next(&mut i),
                "--items" => a.items = next(&mut i),
                "--bytes" => a.bytes = next(&mut i),
                "--max-segments" => a.max_segments = next(&mut i) as u64,
                "--smoke" => a.smoke = true,
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        if a.smoke {
            a.clients = a.clients.min(4);
            a.requests = a.requests.min(250);
            a.items = a.items.min(2);
            a.bytes = a.bytes.min(300_000);
        }
        a
    }
}

/// SplitMix-style deterministic generator (no `rand` dependency needed).
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Cumulative 1000 × harmonic weights over [`TIERS`], built at compile time
/// so the timed request loops pay nothing for the draw.
const CUMULATIVE: [u64; TIERS.len()] = {
    let mut c = [0u64; TIERS.len()];
    let mut total = 0u64;
    let mut rank = 0;
    while rank < TIERS.len() {
        total += 1000 / (rank as u64 + 1);
        c[rank] = total;
        rank += 1;
    }
    c
};

/// Draws a tier with probability ∝ 1/(rank+1) — a zipf-ish skew over the
/// device-class popularity order of [`TIERS`].
fn pick_tier(state: &mut u64) -> u64 {
    let draw = next_u64(state) % CUMULATIVE[TIERS.len() - 1];
    let rank = CUMULATIVE.iter().position(|&c| draw < c).unwrap();
    TIERS[rank]
}

fn item_name(i: usize) -> String {
    format!("item{i}")
}

fn main() {
    let args = Args::parse();
    println!(
        "serve bench: {} clients × {} requests over {} items ({} B each, \
         max_segments {}){}",
        args.clients,
        args.requests,
        args.items,
        args.bytes,
        args.max_segments,
        if args.smoke { " [smoke]" } else { "" },
    );

    let server = ContentServer::with_config(ServerConfig {
        shards: 16,
        // Enough for every distinct post-clamp tier of the mix: steady
        // state is eviction-free, misses are compulsory only.
        tier_cache_capacity: TIERS.len() + 2,
        ..ServerConfig::default()
    });
    // The server feeds its tier-cache and combine instruments into this
    // handle; the JSON's stage columns come from the snapshot below.
    let telemetry = Arc::new(Telemetry::new(TelemetryLevel::Counters));
    server.attach_telemetry(Arc::clone(&telemetry));
    let config = EncoderConfig {
        max_segments: args.max_segments,
        ..EncoderConfig::default()
    };
    let t0 = Instant::now();
    let datasets: Vec<Vec<u8>> = (0..args.items)
        .map(|i| recoil::data::exponential_bytes(args.bytes, 80.0 + 60.0 * i as f64, i as u64))
        .collect();
    for (i, data) in datasets.iter().enumerate() {
        server.publish(&item_name(i), data, &config).unwrap();
    }
    println!(
        "published {} items in {:.2?} (encode-once)",
        args.items,
        t0.elapsed()
    );

    // Correctness spot check outside the timed loop: every capacity class
    // decodes the shared bitstream bit-exactly. Clients are built once and
    // reused — their decode pools persist across requests.
    let verifier = Client::new(4);
    let mut verified = 0u64;
    for (i, data) in datasets.iter().enumerate() {
        let name = item_name(i);
        for tier in [1u64, 16, 100_000] {
            // `fetch` resolves name → (transmission, content) atomically.
            let (t, item) = server.fetch(&name, tier).unwrap();
            assert_eq!(
                &verifier.decode(&item.stream, &t, &item.model).unwrap(),
                data
            );
            verified += 1;
        }
    }

    // --- Phase 1: concurrent single requests (the serving hot path). ---
    // Each client thread records its request latencies into a lock-free
    // telemetry histogram; the merged snapshot yields the percentile
    // columns in BENCH_serve.json.
    let ok = AtomicU64::new(0);
    let mut request_hist = HistogramSnapshot::default();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let server = &server;
                let ok = &ok;
                s.spawn(move || {
                    let hist = Histogram::new();
                    let mut rng = 0x5eed ^ ((c as u64) << 32);
                    for _ in 0..args.requests {
                        let name = item_name(next_u64(&mut rng) as usize % args.items);
                        let t = Instant::now();
                        let tx = server.request(&name, pick_tier(&mut rng)).unwrap();
                        hist.record(t.elapsed().as_nanos() as u64);
                        std::hint::black_box(tx.total_bytes());
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    hist.snapshot()
                })
            })
            .collect();
        for h in handles {
            request_hist.merge(&h.join().unwrap());
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let total = ok.load(Ordering::Relaxed);
    let rps = total as f64 / wall;

    // --- Phase 2: one bulk request_batch over the server's own pool. ---
    let mut rng = 0xba7c_u64;
    let batch: Vec<(String, u64)> = (0..(args.clients * args.requests).min(8192))
        .map(|_| {
            (
                item_name(next_u64(&mut rng) as usize % args.items),
                pick_tier(&mut rng),
            )
        })
        .collect();
    let t0 = Instant::now();
    let results = server.request_batch(&batch);
    let batch_wall = t0.elapsed().as_secs_f64();
    assert!(results.iter().all(|r| r.is_ok()));
    let batch_rps = batch.len() as f64 / batch_wall;

    let stats = server.stats();
    let tel = telemetry.snapshot();
    let us = |ns: u64| ns as f64 / 1_000.0;
    let combine_p99_us = tel.hist("combine_ns").map_or(0.0, |h| us(h.p99()));
    println!(
        "phase 1: {total} requests on {} threads in {wall:.3}s => {rps:.0} req/s",
        args.clients
    );
    println!(
        "phase 1 latency: p50 {:.1}us  p90 {:.1}us  p99 {:.1}us  max {:.1}us \
         (telemetry histogram, {} samples); combine p99 {combine_p99_us:.1}us",
        us(request_hist.p50()),
        us(request_hist.p90()),
        us(request_hist.p99()),
        us(request_hist.max),
        request_hist.count,
    );
    println!(
        "phase 2: batch of {} over {} pool threads in {batch_wall:.3}s => {batch_rps:.0} req/s",
        batch.len(),
        server.batch_threads()
    );
    println!(
        "cache: {} hits / {} misses (hit rate {:.4}), {} evictions",
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate(),
        stats.cache_evictions
    );

    let json = format!(
        "{{\n  \"experiment\": \"serve\",\n  \"smoke\": {},\n  \"clients\": {},\n  \
         \"requests_per_client\": {},\n  \"items\": {},\n  \"bytes_per_item\": {},\n  \
         \"max_segments\": {},\n  \"total_requests\": {},\n  \"wall_seconds\": {:.6},\n  \
         \"requests_per_sec\": {:.1},\n  \"batch_size\": {},\n  \
         \"batch_requests_per_sec\": {:.1},\n  \"request_us_p50\": {:.3},\n  \
         \"request_us_p90\": {:.3},\n  \"request_us_p99\": {:.3},\n  \"request_us_max\": {:.3},\n  \
         \"combine_us_p99\": {:.3},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"cache_evictions\": {},\n  \"cache_hit_rate\": {:.6},\n  \"verified_decodes\": {}\n}}\n",
        args.smoke,
        args.clients,
        args.requests,
        args.items,
        args.bytes,
        args.max_segments,
        total,
        wall,
        rps,
        batch.len(),
        batch_rps,
        us(request_hist.p50()),
        us(request_hist.p90()),
        us(request_hist.p99()),
        us(request_hist.max),
        combine_p99_us,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.hit_rate(),
        verified,
    );
    let path = "BENCH_serve.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
    println!("[results written to {path}]");
}
