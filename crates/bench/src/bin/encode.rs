//! Encode throughput: the branchless fast-loop engine vs the retained
//! careful reference, the codec end-to-end path, the plan (scan) pass, and
//! segment-parallel pooled encode.
//!
//! The encode column of the perf trajectory, sibling of `BENCH_decode.json`.
//! Reports MB/s to stdout and as JSON to `BENCH_encode.json`; the headline
//! number is `fast_over_careful` — the speedup of
//! `recoil_rans::fast_encode::encode_span` over `encode_span_careful` on
//! the same input, same thread, same machine. Every timed encode is also
//! checked byte-identical to the careful reference.
//!
//! ```sh
//! cargo run --release -p recoil-bench --bin encode
//! cargo run --release -p recoil-bench --bin encode -- --smoke       # CI
//! cargo run --release -p recoil-bench --bin encode -- --bytes 64000000 --iters 9
//! ```

use recoil::prelude::*;
use recoil::rans::params::INITIAL_STATE;
use recoil::rans::{encode_span, encode_span_careful, scan_span, NullSink};
use std::io::Write;
use std::time::Instant;

struct Args {
    bytes: usize,
    iters: usize,
    max_segments: u64,
    threads: usize,
    smoke: bool,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let mut a = Self {
            bytes: 32_000_000,
            iters: 7,
            max_segments: 64,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            smoke: false,
        };
        let mut i = 1;
        while i < argv.len() {
            let next = |i: &mut usize| {
                *i += 1;
                argv[*i].parse().expect("numeric argument")
            };
            match argv[i].as_str() {
                "--bytes" => a.bytes = next(&mut i),
                "--iters" => a.iters = next(&mut i),
                "--max-segments" => a.max_segments = next(&mut i) as u64,
                "--threads" => a.threads = next(&mut i),
                "--smoke" => a.smoke = true,
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        if a.smoke {
            a.bytes = a.bytes.min(4_000_000);
            a.iters = a.iters.min(3);
        }
        a
    }
}

/// Best-of-`iters` wall time for `run`, after one warmup; the minimum is
/// the stable estimator on shared machines.
fn measure(iters: usize, mut run: impl FnMut()) -> f64 {
    run();
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = Args::parse();
    let quant_bits = 11u32;
    let ways = 32u32;
    println!(
        "encode bench: {} bytes, best of {} iters{}",
        args.bytes,
        args.iters,
        if args.smoke { " (smoke)" } else { "" }
    );

    let data = recoil::data::text_like_bytes(args.bytes, 5.1, 99);
    let codec = Codec::builder()
        .max_segments(args.max_segments)
        .quant_bits(quant_bits)
        .build()
        .unwrap();
    let model = StaticModelProvider::new(CdfTable::of_bytes(&data, quant_bits));

    let mbps = |secs: f64| data.len() as f64 / secs / 1e6;
    let mut results: Vec<(String, f64)> = Vec::new();

    // The raw engines: whole-input single-thread encode into a reused
    // buffer, no planner — the purest fast-vs-careful comparison.
    let mut reference: Vec<u16> = Vec::new();
    let careful = measure(args.iters, || {
        let mut states = vec![INITIAL_STATE; ways as usize];
        reference.clear();
        encode_span_careful(
            &model,
            &data,
            0,
            &mut states,
            &mut reference,
            0,
            &mut NullSink,
        )
        .unwrap();
        std::hint::black_box(&reference);
    });
    results.push(("careful_reference".into(), mbps(careful)));
    println!(
        "payload: {} symbols -> {} words",
        data.len(),
        reference.len()
    );

    let mut words: Vec<u16> = Vec::new();
    let fast = measure(args.iters, || {
        let mut states = vec![INITIAL_STATE; ways as usize];
        words.clear();
        encode_span(&model, &data, 0, &mut states, &mut words, 0, &mut NullSink).unwrap();
        std::hint::black_box(&words);
    });
    assert_eq!(words, reference, "fast engine diverged from careful");
    results.push(("fast_scalar".into(), mbps(fast)));
    let speedup = careful / fast;

    // The plan pass alone: state evolution + word counting, no word
    // traffic. This is the serial prefix the pooled encode pays.
    let scan = measure(args.iters, || {
        let mut states = vec![INITIAL_STATE; ways as usize];
        let n = scan_span(&model, &data, 0, &mut states, 0, &mut NullSink).unwrap();
        std::hint::black_box(n);
    });
    results.push(("scan_pass".into(), mbps(scan)));

    // Codec end-to-end: model reuse via the provider path, planner
    // listening, container assembly — what a publish actually runs.
    let serial = codec.encode_with_provider(&data, &model).unwrap();
    assert_eq!(serial.stream.words, reference);
    let secs = measure(args.iters, || {
        let c = codec.encode_with_provider(&data, &model).unwrap();
        std::hint::black_box(&c);
    });
    results.push(("codec_serial".into(), mbps(secs)));

    // Segment-parallel pooled encode (two-pass: serial scan + parallel
    // encode); byte-identical to the serial container by construction.
    let pool = ThreadPool::new(args.threads.saturating_sub(1));
    let pooled = codec
        .encode_with_provider_pooled(&data, &model, &pool)
        .unwrap();
    assert_eq!(pooled.stream, serial.stream, "pooled encode diverged");
    assert_eq!(pooled.metadata, serial.metadata, "pooled metadata diverged");
    let pooled_name = format!("pooled_{}t_segments", args.threads);
    let secs = measure(args.iters, || {
        let c = codec
            .encode_with_provider_pooled(&data, &model, &pool)
            .unwrap();
        std::hint::black_box(&c);
    });
    results.push((pooled_name, mbps(secs)));

    println!("\n{:<24} {:>10}", "config", "MB/s");
    for (name, v) in &results {
        println!("{name:<24} {v:>10.1}");
    }
    println!("fast over careful reference: {speedup:.2}x");
    if speedup < 1.3 {
        eprintln!("WARNING: fast loop under the 1.3x target on this run");
    }

    let mut rows = String::new();
    for (i, (name, v)) in results.iter().enumerate() {
        rows.push_str(&format!(
            "    {{\"config\": \"{name}\", \"mb_per_s\": {v:.1}}}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"encode\",\n  \"smoke\": {},\n  \
         \"payload_bytes\": {},\n  \"stream_words\": {},\n  \
         \"quant_bits\": {quant_bits},\n  \"ways\": {ways},\n  \
         \"segments\": {},\n  \"iters\": {},\n  \"threads\": {},\n  \
         \"fast_over_careful\": {speedup:.3},\n  \"results\": [\n{rows}  ]\n}}\n",
        args.smoke,
        data.len(),
        reference.len(),
        serial.metadata.num_segments(),
        args.iters,
        args.threads,
    );
    let path = "BENCH_encode.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
    println!("[results written to {path}]");
}
