//! Loopback load generator for the framed TCP transport: requests/sec,
//! latency percentiles, and bytes served through a real socket.
//!
//! Publishes items over the wire, then hammers the [`NetServer`] from N
//! concurrent [`NetClient`]s with a skewed capacity mix. Each timed request
//! is a full `REQUEST` → `TRANSMIT` + chunks exchange including the
//! client-side CRC and structural validation (decode is verified once
//! outside the timed loop). Reports to stdout and `BENCH_net.json`.
//!
//! With `--streaming`, the timed loop additionally drives
//! [`NetClient::fetch_and_decode_streaming`] — the pipelined path that
//! decodes segments while later chunks are still on the wire — and records
//! **time-to-first-segment** beside total latency, plus a buffered
//! comparison column, all written into `BENCH_net.json`.
//!
//! ```sh
//! cargo run --release -p recoil-bench --bin net
//! cargo run --release -p recoil-bench --bin net -- --smoke          # CI
//! cargo run --release -p recoil-bench --bin net -- --smoke --streaming
//! cargo run --release -p recoil-bench --bin net -- --clients 16 --requests 2000
//! ```

use recoil::net::{NetClient, NetConfig, NetServer};
use recoil::prelude::*;
use recoil::server::ContentServer;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Capacity mix, most popular first (same device-class skew as the serve
/// bench); the last tier exceeds every item's maximum.
const TIERS: [u64; 8] = [16, 4, 64, 1, 8, 32, 256, 100_000];

struct Args {
    clients: usize,
    requests: usize,
    items: usize,
    bytes: usize,
    max_segments: u64,
    smoke: bool,
    streaming: bool,
}

impl Args {
    fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let mut a = Self {
            clients: 8,
            requests: 400,
            items: 3,
            bytes: 1_000_000,
            max_segments: 256,
            smoke: false,
            streaming: false,
        };
        let mut i = 1;
        while i < argv.len() {
            let next = |i: &mut usize| {
                *i += 1;
                argv[*i].parse().expect("numeric argument")
            };
            match argv[i].as_str() {
                "--clients" => a.clients = next(&mut i),
                "--requests" => a.requests = next(&mut i),
                "--items" => a.items = next(&mut i),
                "--bytes" => a.bytes = next(&mut i),
                "--max-segments" => a.max_segments = next(&mut i) as u64,
                "--smoke" => a.smoke = true,
                "--streaming" => a.streaming = true,
                other => panic!("unknown argument {other}"),
            }
            i += 1;
        }
        if a.smoke {
            a.clients = a.clients.min(4);
            a.requests = a.requests.min(60);
            a.items = a.items.min(2);
            a.bytes = a.bytes.min(200_000);
        }
        a
    }
}

/// SplitMix-style deterministic generator.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Cumulative 1000 × harmonic weights over [`TIERS`].
const CUMULATIVE: [u64; TIERS.len()] = {
    let mut c = [0u64; TIERS.len()];
    let mut total = 0u64;
    let mut rank = 0;
    while rank < TIERS.len() {
        total += 1000 / (rank as u64 + 1);
        c[rank] = total;
        rank += 1;
    }
    c
};

fn pick_tier(state: &mut u64) -> u64 {
    let draw = next_u64(state) % CUMULATIVE[TIERS.len() - 1];
    let rank = CUMULATIVE.iter().position(|&c| draw < c).unwrap();
    TIERS[rank]
}

fn item_name(i: usize) -> String {
    format!("item{i}")
}

fn percentile(sorted_nanos: &[u64], p: f64) -> u64 {
    if sorted_nanos.is_empty() {
        return 0;
    }
    let idx = ((sorted_nanos.len() - 1) as f64 * p).round() as usize;
    sorted_nanos[idx]
}

fn main() {
    let args = Args::parse();
    println!(
        "net bench: {} clients × {} requests over {} items ({} B each, \
         max_segments {}){}",
        args.clients,
        args.requests,
        args.items,
        args.bytes,
        args.max_segments,
        match (args.smoke, args.streaming) {
            (true, true) => " [smoke, streaming]",
            (true, false) => " [smoke]",
            (false, true) => " [streaming]",
            (false, false) => "",
        },
    );

    // Every client (plus the publisher) keeps one connection open, and a
    // connection pins a worker for its lifetime. This server keeps the
    // default chunk size so the headline buffered metrics stay comparable
    // across runs; the streaming phase gets its own server below.
    let server = NetServer::bind(
        Arc::new(ContentServer::new()),
        "127.0.0.1:0",
        NetConfig {
            workers: args.clients + 2,
            max_connections: args.clients + 8,
            read_timeout: Duration::from_millis(100),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let config = EncoderConfig {
        max_segments: args.max_segments,
        ..EncoderConfig::default()
    };
    let publisher = NetClient::connect(addr).unwrap();
    let datasets: Vec<Vec<u8>> = (0..args.items)
        .map(|i| recoil::data::exponential_bytes(args.bytes, 80.0 + 60.0 * i as f64, i as u64))
        .collect();
    let t0 = Instant::now();
    for (i, data) in datasets.iter().enumerate() {
        // Published over the wire: the server encodes once per item.
        publisher.publish(&item_name(i), data, &config).unwrap();
    }
    println!(
        "published {} items over TCP in {:.2?} (encode-once)",
        args.items,
        t0.elapsed()
    );

    // Correctness outside the timed loop: remote fetch-and-decode is
    // byte-identical at several capacities.
    let mut verified = 0u64;
    for (i, data) in datasets.iter().enumerate() {
        for tier in [1u64, 16, 100_000] {
            assert_eq!(
                &publisher.fetch_and_decode(&item_name(i), tier).unwrap(),
                data
            );
            verified += 1;
        }
    }

    // Timed phase: every request is a full framed transfer + integrity
    // check; per-request latency recorded client-side.
    let t0 = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(args.clients * args.requests);
    let mut bytes_transferred = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                s.spawn(move || {
                    let client = NetClient::connect(addr).unwrap();
                    let mut rng = 0x5eed ^ ((c as u64) << 32);
                    let mut latencies = Vec::with_capacity(args.requests);
                    let mut bytes = 0u64;
                    for _ in 0..args.requests {
                        let name = item_name(next_u64(&mut rng) as usize % args.items);
                        let tier = pick_tier(&mut rng);
                        let t = Instant::now();
                        let content = client.request(&name, tier).unwrap();
                        latencies.push(t.elapsed().as_nanos() as u64);
                        bytes += content.total_bytes();
                    }
                    (latencies, bytes)
                })
            })
            .collect();
        for h in handles {
            let (latencies, bytes) = h.join().unwrap();
            all_latencies.extend(latencies);
            bytes_transferred += bytes;
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let total = all_latencies.len();
    let rps = total as f64 / wall;
    all_latencies.sort_unstable();
    let p50 = percentile(&all_latencies, 0.50);
    let p99 = percentile(&all_latencies, 0.99);

    // The main-loop counters are snapshotted *before* the streaming phase
    // so every headline JSON column describes the same workload.
    let stats = publisher.stats().unwrap();

    // Streaming phase: its own server (so the small split-aligned chunks
    // it needs never skew the headline metrics above), alternating
    // pipelined and buffered fetches of the same items at a segment-rich
    // tier, recording time-to-first-segment and total latency for the
    // pipeline beside the buffered transfer time.
    let mut stream_first: Vec<u64> = Vec::new();
    let mut stream_total: Vec<u64> = Vec::new();
    let mut buffered_transfer: Vec<u64> = Vec::new();
    let mut buffered_total: Vec<u64> = Vec::new();
    let mut stream_chunks = 0u64;
    // Kept separate from `verified`, so the headline `verified_decodes`
    // column is identical with and without --streaming.
    let mut streaming_verified = 0u64;
    let mut stream_server = None;
    if args.streaming {
        let rounds = (args.clients * args.requests).clamp(20, 200);
        let tier = args.max_segments.min(64);
        // Many split-aligned chunks per transfer — that is what the
        // pipeline overlaps.
        let srv = NetServer::bind(
            Arc::new(ContentServer::new()),
            "127.0.0.1:0",
            NetConfig {
                workers: 3,
                read_timeout: Duration::from_millis(100),
                chunk_bytes: (args.bytes / 64).max(2 * 1024),
                ..NetConfig::default()
            },
        )
        .unwrap();
        // A tight in-flight budget keeps the pipeline responsive even on a
        // single core: the receive loop hands off to the decoder every
        // couple of chunks instead of buffering a long backlog first.
        let client = NetClient::connect_with(
            srv.addr(),
            recoil::net::NetClientConfig {
                streaming_inflight_chunks: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Byte-identity outside the timed loop.
        for (i, data) in datasets.iter().enumerate() {
            client.publish(&item_name(i), data, &config).unwrap();
            let streamed = client
                .fetch_and_decode_streaming(&item_name(i), tier)
                .unwrap();
            assert_eq!(&streamed.data, data, "streaming decode must be identical");
            streaming_verified += 1;
        }
        for r in 0..rounds {
            let name = item_name(r % args.items);
            let streamed = client.fetch_and_decode_streaming(&name, tier).unwrap();
            stream_first.push(streamed.first_segment_nanos);
            stream_total.push(streamed.total_nanos);
            stream_chunks += streamed.chunk_count as u64;

            let t = Instant::now();
            let content = client.request(&name, tier).unwrap();
            buffered_transfer.push(t.elapsed().as_nanos() as u64);
            let decoded = content.decode_with(client.backend()).unwrap();
            buffered_total.push(t.elapsed().as_nanos() as u64);
            assert_eq!(decoded.len(), streamed.data.len());
        }
        stream_server = Some(srv);
        stream_first.sort_unstable();
        stream_total.sort_unstable();
        buffered_transfer.sort_unstable();
        buffered_total.sort_unstable();
        let first_p50 = percentile(&stream_first, 0.50);
        let transfer_p50 = percentile(&buffered_transfer, 0.50);
        println!(
            "streaming: time-to-first-segment p50 {:.3} ms, total p50 {:.3} ms \
             ({:.1} chunks/transfer)",
            first_p50 as f64 / 1e6,
            percentile(&stream_total, 0.50) as f64 / 1e6,
            stream_chunks as f64 / rounds as f64
        );
        println!(
            "buffered:  transfer p50 {:.3} ms, transfer+decode p50 {:.3} ms",
            transfer_p50 as f64 / 1e6,
            percentile(&buffered_total, 0.50) as f64 / 1e6
        );
        assert!(
            first_p50 < transfer_p50,
            "pipelining regressed: first segment at {first_p50} ns, \
             buffered transfer alone takes {transfer_p50} ns"
        );
    }

    println!(
        "{total} requests on {} client threads in {wall:.3}s => {rps:.0} req/s",
        args.clients
    );
    println!(
        "latency p50 {:.3} ms, p99 {:.3} ms; {:.1} MiB transferred",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        bytes_transferred as f64 / (1 << 20) as f64
    );
    println!(
        "server: {} B served, cache {} hits / {} misses (hit rate {:.4}), \
         {} active connections at snapshot",
        stats.stats.bytes_served,
        stats.stats.cache_hits,
        stats.stats.cache_misses,
        stats.stats.hit_rate(),
        stats.stats.active_connections
    );

    let streaming_json = if args.streaming {
        format!(
            ",\n  \"streaming\": true,\n  \
             \"time_to_first_segment_us_p50\": {:.1},\n  \
             \"time_to_first_segment_us_p99\": {:.1},\n  \
             \"streaming_total_us_p50\": {:.1},\n  \
             \"streaming_total_us_p99\": {:.1},\n  \
             \"buffered_transfer_us_p50\": {:.1},\n  \
             \"buffered_total_us_p50\": {:.1},\n  \
             \"streaming_chunks_per_transfer\": {:.1},\n  \
             \"streaming_verified_decodes\": {}",
            percentile(&stream_first, 0.50) as f64 / 1e3,
            percentile(&stream_first, 0.99) as f64 / 1e3,
            percentile(&stream_total, 0.50) as f64 / 1e3,
            percentile(&stream_total, 0.99) as f64 / 1e3,
            percentile(&buffered_transfer, 0.50) as f64 / 1e3,
            percentile(&buffered_total, 0.50) as f64 / 1e3,
            stream_chunks as f64 / stream_first.len().max(1) as f64,
            streaming_verified,
        )
    } else {
        ",\n  \"streaming\": false".to_string()
    };
    let json = format!(
        "{{\n  \"experiment\": \"net\",\n  \"smoke\": {},\n  \"clients\": {},\n  \
         \"requests_per_client\": {},\n  \"items\": {},\n  \"bytes_per_item\": {},\n  \
         \"max_segments\": {},\n  \"total_requests\": {},\n  \"wall_seconds\": {:.6},\n  \
         \"requests_per_sec\": {:.1},\n  \"latency_p50_us\": {:.1},\n  \
         \"latency_p99_us\": {:.1},\n  \"bytes_transferred\": {},\n  \
         \"server_bytes_served\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
         \"cache_hit_rate\": {:.6},\n  \"verified_decodes\": {}{}\n}}\n",
        args.smoke,
        args.clients,
        args.requests,
        args.items,
        args.bytes,
        args.max_segments,
        total,
        wall,
        rps,
        p50 as f64 / 1e3,
        p99 as f64 / 1e3,
        bytes_transferred,
        stats.stats.bytes_served,
        stats.stats.cache_hits,
        stats.stats.cache_misses,
        stats.stats.hit_rate(),
        verified,
        streaming_json,
    );
    let path = "BENCH_net.json";
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
    println!("[results written to {path}]");

    if let Some(srv) = stream_server {
        srv.shutdown();
    }
    server.shutdown();
}
